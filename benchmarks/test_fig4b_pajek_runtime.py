"""Figure 4b — average decomposition run time on Pajek-style random graphs.

Paper: more than 60 random graphs of 10-40 nodes, average run times growing
with size, the largest under 3 minutes (Matlab + C++ VF2).  Shape criterion:
the averaged run time grows from the small sizes to the large ones and every
graph stays within the per-graph budget.

As for Figure 4a, the sweep doubles as the hot-path perf guard for the
matching cache and transposition table on the larger (30-40 node) random
graphs: VF2-enumerated matchings must stay at least 2x below the recorded
seed baseline, with the cache counters printed for inspection.
"""

from __future__ import annotations

from statistics import mean

import pytest

from repro.experiments.reporting import format_series
from repro.experiments.runtime_sweep import run_pajek_runtime_sweep

PAJEK_SIZES = (10, 15, 20, 25, 30, 35, 40)
INSTANCES_PER_SIZE = 2

# Seed-implementation total of branch candidates from fresh VF2 queries over
# this exact sweep (sizes, instances, density, seed), measured without the
# matching cache and transposition table (there, every enumerated matching
# was a branch candidate).  The cached search must keep `matchings_tried` at
# least 2x below it, and its total VF2 enumeration including overscan
# (`matchings_enumerated`) must not exceed it.
SEED_MATCHINGS_TRIED = 19465


@pytest.mark.smoke
def test_fig4b_pajek_runtime_series(benchmark):
    """Regenerate the Figure-4b series: nodes vs. average decomposition time."""
    result = benchmark.pedantic(
        lambda: run_pajek_runtime_sweep(
            sizes=PAJEK_SIZES, instances_per_size=INSTANCES_PER_SIZE
        ),
        rounds=1,
        iterations=1,
    )
    series = result.average_runtime_by_size()
    print()
    print(format_series(series, x_label="nodes", y_label="avg_runtime_s"))
    print(f"cache summary: {result.cache_summary()}")

    assert len(result.points) == len(PAJEK_SIZES) * INSTANCES_PER_SIZE
    assert result.max_runtime() < 60.0

    # shape: the large half of the size range is on average slower than the
    # small half (individual instances are noisy, the trend must hold)
    runtimes = dict(series)
    small = mean(runtimes[size] for size in PAJEK_SIZES[:3])
    large = mean(runtimes[size] for size in PAJEK_SIZES[-3:])
    assert large >= small

    # every decomposition is a valid cover with meaningful coverage
    assert all(point.covered_fraction >= 0.3 for point in result.points)

    # hot path: the matching cache must absorb most candidate enumeration on
    # the 30+-node random graphs that dominate this sweep's wall-clock, and
    # the cache-feeding overscan must not cost more total VF2 work than the
    # seed implementation spent
    summary = result.cache_summary()
    assert summary["matchings_tried"] * 2 <= SEED_MATCHINGS_TRIED
    assert summary["matchings_enumerated"] <= SEED_MATCHINGS_TRIED
    assert summary["matching_cache_hits"] > summary["matching_cache_misses"]
