"""Figure 4b — average decomposition run time on Pajek-style random graphs.

Paper: more than 60 random graphs of 10-40 nodes, average run times growing
with size, the largest under 3 minutes (Matlab + C++ VF2).  Shape criterion:
the averaged run time grows from the small sizes to the large ones and every
graph stays within the per-graph budget.
"""

from __future__ import annotations

from statistics import mean

from repro.experiments.reporting import format_series
from repro.experiments.runtime_sweep import run_pajek_runtime_sweep

PAJEK_SIZES = (10, 15, 20, 25, 30, 35, 40)
INSTANCES_PER_SIZE = 2


def test_fig4b_pajek_runtime_series(benchmark):
    """Regenerate the Figure-4b series: nodes vs. average decomposition time."""
    result = benchmark.pedantic(
        lambda: run_pajek_runtime_sweep(
            sizes=PAJEK_SIZES, instances_per_size=INSTANCES_PER_SIZE
        ),
        rounds=1,
        iterations=1,
    )
    series = result.average_runtime_by_size()
    print()
    print(format_series(series, x_label="nodes", y_label="avg_runtime_s"))

    assert len(result.points) == len(PAJEK_SIZES) * INSTANCES_PER_SIZE
    assert result.max_runtime() < 60.0

    # shape: the large half of the size range is on average slower than the
    # small half (individual instances are noisy, the trend must hold)
    runtimes = dict(series)
    small = mean(runtimes[size] for size in PAJEK_SIZES[:3])
    large = mean(runtimes[size] for size in PAJEK_SIZES[-3:])
    assert large >= small

    # every decomposition is a valid cover with meaningful coverage
    assert all(point.covered_fraction >= 0.3 for point in result.points)
