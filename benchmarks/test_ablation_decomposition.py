"""Ablation benches for the design choices called out in DESIGN.md.

Not a paper table — these quantify (a) what the branch-and-bound search buys
over a greedy first-fit cover and (b) how sensitive the result is to the
library content, on the AES ACG, the Figure-5 example and a random ACG.
"""

from __future__ import annotations

from repro.experiments.ablation import run_library_ablation, run_strategy_ablation


def test_ablation_search_strategy(benchmark):
    result = benchmark.pedantic(
        lambda: run_strategy_ablation(timeout_seconds=30.0), rounds=1, iterations=1
    )
    print()
    print(result.describe("Branch-and-bound vs. greedy first-fit"))

    for row in result.rows:
        assert row.covered_fraction > 0.0
    # the branch-and-bound result is never worse than greedy on the same ACG
    acg_names = {row.acg_name for row in result.rows}
    for name in acg_names:
        bnb = result.cost_of(name, "branch_and_bound")
        greedy = result.cost_of(name, "greedy")
        assert bnb <= greedy + 1e-9


def test_ablation_library_content(benchmark):
    result = benchmark.pedantic(
        lambda: run_library_ablation(timeout_seconds=10.0), rounds=1, iterations=1
    )
    print()
    print(result.describe("Library-content sensitivity"))

    acg_names = {row.acg_name for row in result.rows}
    for name in acg_names:
        minimal = result.cost_of(name, "minimal_library")
        default = result.cost_of(name, "default_library")
        # a richer library never produces a more expensive cover
        assert default <= minimal + 1e-9
