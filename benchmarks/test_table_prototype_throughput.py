"""Section 5.2 prototype table — throughput (cycles/block and Mbps).

Paper (128-bit blocks at 100 MHz):

    mesh:   271 cycles/block  ->  47.2 Mbps
    custom: 199 cycles/block  ->  64.3 Mbps   (+36% throughput)

Shape criterion: the customized architecture needs fewer cycles per block and
delivers 15-90% higher throughput; the simulated mesh operating point lands
within +/-50% of the paper's 271 cycles/block.
"""

from __future__ import annotations

from repro.experiments.comparison import PAPER_RESULTS, run_prototype_comparison
from repro.experiments.reporting import format_table


def test_table_throughput(benchmark, aes_synthesis_session):
    comparison = benchmark.pedantic(
        lambda: run_prototype_comparison(blocks=1, synthesis=aes_synthesis_session),
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "architecture": metrics.name,
            "cycles_per_block": metrics.cycles_per_block,
            "throughput_mbps": metrics.throughput_mbps,
            "paper_cycles": PAPER_RESULTS[key]["cycles_per_block"],
            "paper_mbps": PAPER_RESULTS[key]["throughput_mbps"],
        }
        for key, metrics in (("mesh", comparison.mesh), ("custom", comparison.custom))
    ]
    print()
    print(format_table(rows, title="Section 5.2 — throughput (simulated vs. paper)"))
    print(f"throughput increase: {comparison.throughput_increase_percent:+.1f}% (paper: +36%)")

    assert comparison.custom.cycles_per_block < comparison.mesh.cycles_per_block
    assert comparison.custom.throughput_mbps > comparison.mesh.throughput_mbps
    assert 15.0 <= comparison.throughput_increase_percent <= 90.0
    paper_mesh_cycles = PAPER_RESULTS["mesh"]["cycles_per_block"]
    assert 0.5 * paper_mesh_cycles <= comparison.mesh.cycles_per_block <= 1.5 * paper_mesh_cycles
