"""Section 5.2 prototype table — throughput (cycles/block and Mbps).

Paper (128-bit blocks at 100 MHz):

    mesh:   271 cycles/block  ->  47.2 Mbps
    custom: 199 cycles/block  ->  64.3 Mbps   (+36% throughput)

Shape criterion: the customized architecture needs fewer cycles per block and
delivers 15-90% higher throughput; the simulated mesh operating point lands
within +/-50% of the paper's 271 cycles/block.
"""

from __future__ import annotations

import pytest

from repro.experiments.comparison import (
    PAPER_RESULTS,
    default_simulator_config,
    run_prototype_comparison,
)
from repro.experiments.reporting import format_table
from repro.noc.simulator import ENGINE_REFERENCE
from repro.noc.traffic import InjectionSchedule, acg_messages


def test_table_throughput(benchmark, aes_synthesis_session):
    comparison = benchmark.pedantic(
        lambda: run_prototype_comparison(blocks=1, synthesis=aes_synthesis_session),
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "architecture": metrics.name,
            "cycles_per_block": metrics.cycles_per_block,
            "throughput_mbps": metrics.throughput_mbps,
            "paper_cycles": PAPER_RESULTS[key]["cycles_per_block"],
            "paper_mbps": PAPER_RESULTS[key]["throughput_mbps"],
        }
        for key, metrics in (("mesh", comparison.mesh), ("custom", comparison.custom))
    ]
    print()
    print(format_table(rows, title="Section 5.2 — throughput (simulated vs. paper)"))
    print(f"throughput increase: {comparison.throughput_increase_percent:+.1f}% (paper: +36%)")

    assert comparison.custom.cycles_per_block < comparison.mesh.cycles_per_block
    assert comparison.custom.throughput_mbps > comparison.mesh.throughput_mbps
    assert 15.0 <= comparison.throughput_increase_percent <= 90.0
    paper_mesh_cycles = PAPER_RESULTS["mesh"]["cycles_per_block"]
    assert 0.5 * paper_mesh_cycles <= comparison.mesh.cycles_per_block <= 1.5 * paper_mesh_cycles


@pytest.mark.smoke
def test_throughput_open_loop_engine_speedup(engine_duel, aes_synthesis_session):
    """Event-driven vs reference engine on the throughput characterization.

    Open-loop ACG traffic at a sustained injection rate — the workload of a
    throughput sweep towards saturation.  The event engine must produce a
    bit-identical report while skipping the inter-injection dead time:
    >=3x wall-clock or >=5x fewer stepped cycles (measured: both).
    """
    messages = acg_messages(aes_synthesis_session.acg, packet_size_bits=32) * 4
    schedule = InjectionSchedule.periodic(messages, period_cycles=16, seed=2, jitter=2)
    for fabric in ("mesh", "custom"):
        duel = engine_duel(fabric, schedule.schedule_onto)
        duel.assert_identical_reports()
        print()
        print("open-loop throughput:", duel.describe())
        assert duel.wall_speedup >= 3.0 or duel.stepped_ratio >= 5.0, duel.describe()


@pytest.mark.smoke
def test_prototype_operating_point_engine_equivalence(aes_synthesis_session):
    """At the paper's AES operating point the traffic is dense single-flit
    bursts — little dead time to skip — so the contract here is exactness:
    identical tables from both engines, with the idle/serialization gaps
    that do exist (computation allowances, drain tails) skipped."""
    results = {}
    for engine in ("event", ENGINE_REFERENCE):
        config = default_simulator_config()
        config.engine = engine
        results[engine] = run_prototype_comparison(
            blocks=1, synthesis=aes_synthesis_session, simulator_config=config
        )
    event, reference = results["event"], results[ENGINE_REFERENCE]
    for side in ("mesh", "custom"):
        event_metrics = getattr(event, side)
        reference_metrics = getattr(reference, side)
        for field in (
            "total_cycles",
            "cycles_per_block",
            "throughput_mbps",
            "average_latency_cycles",
            "average_hops",
            "average_power_mw",
            "energy_per_block_uj",
            "max_channel_utilization",
        ):
            assert getattr(event_metrics, field) == getattr(reference_metrics, field), (
                side,
                field,
            )
        stepped_ratio = reference_metrics.cycles_stepped / event_metrics.cycles_stepped
        print(f"{side}: operating-point stepped-cycle reduction {stepped_ratio:.2f}x")
        assert stepped_ratio >= 1.3
