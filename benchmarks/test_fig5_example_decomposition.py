"""Figure 5 / Section 5.1 example — decomposition of a random 8-node ACG.

Paper: the ACG decomposes in under 0.1 s into one MGG4, three one-to-three
broadcasts and one one-to-four broadcast with no remaining graph.  The
benchmark regenerates that listing and checks the primitive multiset and the
empty remainder.
"""

from __future__ import annotations

from repro.experiments.example_decomposition import (
    EXPECTED_PRIMITIVE_COUNTS,
    run_figure5_example,
)


def test_fig5_example_decomposition(benchmark):
    result = benchmark(run_figure5_example)
    print()
    print(result.decomposition.describe())
    print(f"primitive counts: {result.primitive_counts}")

    assert result.matches_paper_listing
    assert result.primitive_counts == EXPECTED_PRIMITIVE_COUNTS
    assert result.decomposition.remainder.is_empty
    # the paper reports < 0.1 s on its setup; allow a generous budget here
    assert result.runtime_seconds < 5.0
