"""Section 5.2 prototype table — average packet latency.

Paper: 11.5 cycles on the mesh vs. 9.6 cycles on the customized architecture
(a 17% reduction).  Shape criterion: the customized architecture reduces the
average packet latency by 5-40%, and its traffic-weighted average hop count
is strictly lower (the structural mechanism behind the latency win).
"""

from __future__ import annotations

import pytest

from repro.experiments.comparison import PAPER_RESULTS
from repro.experiments.reporting import format_table
from repro.noc.traffic import InjectionSchedule, acg_messages


def test_table_latency(benchmark, prototype_comparison):
    comparison = prototype_comparison
    benchmark.pedantic(lambda: comparison.latency_reduction_percent, rounds=1, iterations=1)

    rows = [
        {
            "architecture": metrics.name,
            "avg_latency_cycles": metrics.average_latency_cycles,
            "avg_hops": metrics.average_hops,
            "paper_latency": PAPER_RESULTS[key]["average_latency_cycles"],
        }
        for key, metrics in (("mesh", comparison.mesh), ("custom", comparison.custom))
    ]
    print()
    print(format_table(rows, title="Section 5.2 — average latency (simulated vs. paper)"))
    print(f"latency reduction: {comparison.latency_reduction_percent:.1f}% (paper: 17%)")

    assert comparison.custom.average_latency_cycles < comparison.mesh.average_latency_cycles
    assert 5.0 <= comparison.latency_reduction_percent <= 40.0
    assert comparison.custom.average_hops < comparison.mesh.average_hops


@pytest.mark.smoke
def test_latency_probe_engine_speedup(engine_duel, aes_synthesis_session):
    """Event-driven vs reference engine on the latency characterization.

    Zero-load latency probing injects lone packets far apart so nothing
    queues — almost every cycle is dead time between a launch and the next
    arrival.  The event engine must report identical latencies while
    skipping it all: >=3x wall-clock or >=5x fewer stepped cycles
    (measured: ~15x fewer stepped cycles on both fabrics).
    """
    probes = acg_messages(aes_synthesis_session.acg, packet_size_bits=32)
    schedule = InjectionSchedule.periodic(probes, period_cycles=40, seed=2)
    for fabric in ("mesh", "custom"):
        duel = engine_duel(fabric, schedule.schedule_onto)
        duel.assert_identical_reports()
        print()
        print("zero-load latency probes:", duel.describe())
        # >=5x fewer stepped cycles implies the >=3x-wall-or->=5x-stepped
        # criterion, machine-independently (measured ~15x on both fabrics)
        assert duel.stepped_ratio >= 5.0, duel.describe()
