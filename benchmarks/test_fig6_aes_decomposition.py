"""Figure 6 + Section 5.2 decomposition listing — distributed AES.

Paper (COST: 28):

    1: MGG4,  Mapping: (1 1), (2 5), (3 9), (4 13)      <- column 1
    1: MGG4,  Mapping: (1 2), (2 6), (3 10), (4 14)     <- column 2
    1: MGG4,  Mapping: (1 3), (2 7), (3 11), (4 15)     <- column 3
    1: MGG4,  Mapping: (1 4), (2 8), (3 12), (4 16)     <- column 4
    2: L4     second row
    2: L4     fourth row
    0: Remaining Graph                                  <- third row

found in 0.58 s; the synthesized customized architecture is Figure 6b.
The benchmark regenerates the decomposition + synthesis and checks every
structural property of that listing.
"""

from __future__ import annotations

from repro.aes.distributed import column_nodes, row_nodes
from repro.experiments.aes_experiment import (
    PAPER_AES_COST,
    PAPER_AES_PRIMITIVES,
    run_aes_synthesis,
)


def test_fig6_aes_decomposition_and_synthesis(benchmark):
    result = benchmark.pedantic(run_aes_synthesis, rounds=1, iterations=1)
    print()
    print(result.decomposition.describe())
    print(f"decomposition runtime: {result.runtime_seconds:.3f} s (paper: 0.58 s)")

    # decomposition listing
    assert result.decomposition.total_cost == PAPER_AES_COST
    assert result.primitive_counts == PAPER_AES_PRIMITIVES
    assert result.columns_mapped_to_gossip
    assert result.shift_rows_mapped_to_loops
    assert result.decomposition.remainder.num_edges == 4
    remainder_nodes = {
        node for edge in result.decomposition.remainder.edges() for node in edge
    }
    assert remainder_nodes == set(row_nodes(2))  # the paper's "third row"
    assert result.matches_paper

    # Figure 6b: the synthesized architecture
    topology = result.architecture.topology
    assert topology.num_routers == 16
    for column in range(4):
        ring_links = {
            frozenset((a, b))
            for a in column_nodes(column)
            for b in column_nodes(column)
            if a != b and topology.has_channel(a, b)
        }
        assert len(ring_links) == 4  # each column implemented as an MGG-4 ring
    assert result.architecture.is_feasible


def test_fig6_decomposition_runtime(benchmark, aes_synthesis_session):
    """Benchmark only the decomposition search (the paper's 0.58 s figure)."""
    from repro.core.cost import LinkCountCostModel
    from repro.core.decomposition import DecompositionConfig, decompose
    from repro.core.library import aes_library

    acg = aes_synthesis_session.acg
    library = aes_library()
    config = DecompositionConfig(max_matchings_per_primitive=4, total_timeout_seconds=60.0)

    result = benchmark(
        lambda: decompose(acg, library, cost_model=LinkCountCostModel(), config=config)
    )
    assert result.total_cost == PAPER_AES_COST
