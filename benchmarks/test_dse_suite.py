"""DSE suite benchmark: mesh vs. custom over the embedded benchmarks.

Regenerates the paper's Section-5.2 *shape* at sweep scale: across the
embedded-benchmark suite the synthesized architecture must Pareto-dominate
the standard mesh on the AES scenario (win on energy, latency and
throughput simultaneously), and the on-disk cache must make a re-run free.
"""

from __future__ import annotations

import pytest

from repro.dse.analysis import custom_dominates_mesh, pareto_front, pareto_report
from repro.dse.cache import ResultCache
from repro.dse.runner import run_sweep
from repro.dse.scenarios import get_suite


@pytest.fixture(scope="module")
def embedded_sweep(tmp_path_factory):
    spec = get_suite("embedded")
    cache = ResultCache(tmp_path_factory.mktemp("dse") / "results.jsonl")
    result = run_sweep(
        spec.build(), base=spec.base_settings, axes=spec.default_axes, cache=cache
    )
    return spec, cache, result


@pytest.mark.smoke
def test_embedded_suite_custom_pareto_dominates_mesh_on_aes(embedded_sweep):
    _, _, result = embedded_sweep
    assert result.num_cells >= 10
    assert not result.failed(), [record.error for record in result.failed()]
    # the paper's prototype claim, reproduced on the shared pipeline: the
    # customized architecture wins every figure of merit on AES
    assert custom_dominates_mesh(result.records, "aes")
    front = pareto_front([r for r in result.records if r.scenario == "aes"])
    assert all(record.architecture == "custom" for record in front)
    print()
    print(pareto_report(result.records))


@pytest.mark.smoke
def test_second_invocation_is_pure_cache_hits(embedded_sweep):
    spec, cache, first = embedded_sweep
    rerun = run_sweep(
        spec.build(),
        base=spec.base_settings,
        axes=spec.default_axes,
        cache=ResultCache(cache.path),
    )
    assert rerun.cache_misses == 0
    assert rerun.cache_hit_fraction == 1.0
    assert [record.cache_key for record in rerun.records] == [
        record.cache_key for record in first.records
    ]
