"""DSE suite benchmark: mesh vs. custom over the embedded benchmarks.

Regenerates the paper's Section-5.2 *shape* at sweep scale: across the
embedded-benchmark suite the synthesized architecture must Pareto-dominate
the standard mesh on the AES scenario (win on energy, latency and
throughput simultaneously), and the on-disk cache must make a re-run free.

The stage-granular benchmark then pins the tentpole speed-up: a sweep over
simulator-only axes must run the decomposition search exactly once per
scenario (asserted on the stage-reuse counters) and beat the cell-granular
baseline on wall clock.
"""

from __future__ import annotations

import time

import pytest

from repro.dse.analysis import custom_dominates_mesh, pareto_front, pareto_report
from repro.dse.cache import ResultCache
from repro.dse.pipeline import evaluate
from repro.dse.runner import plan_sweep, run_sweep
from repro.dse.scenarios import erdos_renyi_scenario, get_suite, planted_scenario


@pytest.fixture(scope="module")
def embedded_sweep(tmp_path_factory):
    spec = get_suite("embedded")
    cache = ResultCache(tmp_path_factory.mktemp("dse") / "results.jsonl")
    result = run_sweep(
        spec.build(), base=spec.base_settings, axes=spec.default_axes, cache=cache
    )
    return spec, cache, result


@pytest.mark.smoke
def test_embedded_suite_custom_pareto_dominates_mesh_on_aes(embedded_sweep):
    _, _, result = embedded_sweep
    assert result.num_cells >= 10
    assert not result.failed(), [record.error for record in result.failed()]
    # the paper's prototype claim, reproduced on the shared pipeline: the
    # customized architecture wins every figure of merit on AES
    assert custom_dominates_mesh(result.records, "aes")
    front = pareto_front([r for r in result.records if r.scenario == "aes"])
    assert all(record.architecture == "custom" for record in front)
    print()
    print(pareto_report(result.records))


@pytest.mark.smoke
def test_second_invocation_is_pure_cache_hits(embedded_sweep):
    spec, cache, first = embedded_sweep
    rerun = run_sweep(
        spec.build(),
        base=spec.base_settings,
        axes=spec.default_axes,
        cache=ResultCache(cache.path),
    )
    assert rerun.cache_misses == 0
    assert rerun.cache_hit_fraction == 1.0
    assert [record.cache_key for record in rerun.records] == [
        record.cache_key for record in first.records
    ]


@pytest.mark.smoke
def test_simulator_axis_sweep_decomposes_once_per_scenario(tmp_path):
    """The tentpole claim: stage-granular caching makes simulator-axis sweeps
    pay for one decomposition per scenario, with measurable wall-clock savings
    over the cell-granular baseline that re-searched every grid point."""
    # a search-dominated operating point: the node budget caps the search at a
    # deterministic ~0.3s, far above this workload's simulation time
    scenarios = [
        erdos_renyi_scenario(num_nodes=14, edge_probability=0.15, seed=9),
        planted_scenario(num_nodes=16, seed=11),
    ]
    axes = {
        "architecture": ("custom",),
        "max_nodes_expanded": (2000,),
        "buffer_capacity_packets": (2, 4, 8),  # simulator-only axis, 3 values
    }

    # cell-granular baseline: what the runner did before stage sharing —
    # every cell evaluated in isolation, one search per grid point
    cells = plan_sweep(scenarios, axes=axes)
    baseline_start = time.perf_counter()
    baseline_records = [
        evaluate(cell.scenario, cell.settings, cache_key=cell.key, axes=cell.axes)
        for cell in cells
    ]
    baseline_elapsed = time.perf_counter() - baseline_start
    assert all(record.succeeded for record in baseline_records)

    cache = ResultCache(tmp_path / "results.jsonl")
    staged_start = time.perf_counter()
    result = run_sweep(
        scenarios, axes=axes, cache=cache, artifacts=tmp_path / "stage_artifacts"
    )
    staged_elapsed = time.perf_counter() - staged_start

    # exactly one search per scenario; every other cell reused it
    assert result.decomposition_searches == len(scenarios)
    assert result.decomposition_reuses == result.num_evaluations - len(scenarios)
    per_scenario = {}
    for record in result.records:
        per_scenario.setdefault(record.scenario, []).append(
            record.stage_reuse["decompose"]
        )
    for provenances in per_scenario.values():
        assert provenances.count("computed") == 1
        assert set(provenances) <= {"computed", "memory"}

    # the shared search must buy real wall clock against the baseline; the
    # exact ratio (locally ~0.35) is machine-dependent, so the bound is
    # deliberately loose — the stage-reuse counters above pin the invariant
    print(f"\ncell-granular {baseline_elapsed:.2f}s vs stage-granular {staged_elapsed:.2f}s")
    assert staged_elapsed < 0.85 * baseline_elapsed, (
        f"stage-granular sweep ({staged_elapsed:.2f}s) should clearly beat the "
        f"cell-granular baseline ({baseline_elapsed:.2f}s)"
    )

    # identical measurements, cell for cell
    assert [r.cache_key for r in result.records] == [
        r.cache_key for r in baseline_records
    ]
    for staged, isolated in zip(result.records, baseline_records):
        assert staged.metrics["total_cycles"] == isolated.metrics["total_cycles"]
        assert staged.metrics["decomposition_cost"] == isolated.metrics["decomposition_cost"]

    # a re-run stays a pure cache hit under the current PIPELINE_VERSION, and
    # a fresh result cache re-materializes the sweep from stage artifacts
    # without a single new search
    rerun = run_sweep(
        scenarios,
        axes=axes,
        cache=ResultCache(cache.path),
        artifacts=tmp_path / "stage_artifacts",
    )
    assert rerun.cache_misses == 0 and rerun.cache_hit_fraction == 1.0
    cold_results = run_sweep(
        scenarios,
        axes=axes,
        cache=ResultCache(tmp_path / "fresh.jsonl"),
        artifacts=tmp_path / "stage_artifacts",
    )
    assert cold_results.decomposition_searches == 0
    assert cold_results.decomposition_reuses == cold_results.num_evaluations
