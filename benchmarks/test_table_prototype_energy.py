"""Section 5.2 prototype table — average power and energy per block.

Paper: 33% lower average power and 5.1 uJ vs. 2.5 uJ per 128-bit block (-51%)
in favour of the customized architecture, measured with XPower on the FPGA
prototypes.

Our measurement substrate is the cycle simulator plus the analytic bit-energy
model, and it conserves energy strictly (every router/link traversal is
charged identically on both architectures), so the reproduced deltas are
smaller than the FPGA measurement: the energy-per-block reduction comes from
fewer volume-weighted hops plus less static energy over the shorter runtime,
while the *average power* of the customized design is not lower (the same
work happens in less time).  Shape criterion: the customized architecture
uses 10-70% less energy per block; the power deviation is documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.comparison import PAPER_RESULTS
from repro.experiments.reporting import format_table
from repro.noc.traffic import InjectionSchedule, acg_messages


def test_table_power_and_energy(benchmark, prototype_comparison):
    comparison = prototype_comparison
    benchmark.pedantic(lambda: comparison.energy_reduction_percent, rounds=1, iterations=1)

    rows = [
        {
            "architecture": metrics.name,
            "avg_power_mw": metrics.average_power_mw,
            "energy_per_block_uj": metrics.energy_per_block_uj,
            "paper_energy_uj": PAPER_RESULTS[key]["energy_per_block_uj"],
        }
        for key, metrics in (("mesh", comparison.mesh), ("custom", comparison.custom))
    ]
    print()
    print(format_table(rows, title="Section 5.2 — power / energy (simulated vs. paper)"))
    print(f"energy/block reduction: {comparison.energy_reduction_percent:.1f}% (paper: 51%)")
    print(f"avg power change: {-comparison.power_reduction_percent:+.1f}% (paper: -33%)")

    # energy: direction and rough factor must hold
    assert comparison.custom.energy_per_block_uj < comparison.mesh.energy_per_block_uj
    assert 10.0 <= comparison.energy_reduction_percent <= 70.0
    # both designs burn nonzero dynamic energy
    assert comparison.mesh.average_power_mw > 0
    assert comparison.custom.average_power_mw > 0


@pytest.mark.smoke
def test_energy_multiflit_engine_speedup(engine_duel, aes_synthesis_session):
    """Event-driven vs reference engine on the energy characterization.

    Large packets (512 bits = 16 flits) hold every traversed channel for
    their full serialization time, so the network spends most cycles just
    shifting flits — pure dead time for the scheduler, while the batched
    energy counters must still land on bit-identical totals: >=3x
    wall-clock or >=5x fewer stepped cycles (measured: both, ~8x/15x).
    """
    messages = acg_messages(aes_synthesis_session.acg, packet_size_bits=512) * 4
    schedule = InjectionSchedule.periodic(messages, period_cycles=20, seed=2, jitter=2)
    for fabric in ("mesh", "custom"):
        duel = engine_duel(fabric, schedule.schedule_onto)
        duel.assert_identical_reports()
        print()
        print("multi-flit energy workload:", duel.describe())
        assert duel.wall_speedup >= 3.0 or duel.stepped_ratio >= 5.0, duel.describe()
        total_pj = duel.event.energy.total_energy_pj
        assert total_pj == duel.reference.energy.total_energy_pj
        assert total_pj > 0
