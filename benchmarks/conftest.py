"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
numbers).  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated rows/series printed by each benchmark.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.aes_experiment import run_aes_synthesis  # noqa: E402
from repro.experiments.comparison import run_prototype_comparison  # noqa: E402


@pytest.fixture(scope="session")
def aes_synthesis_session():
    """The AES decomposition + synthesized architecture, shared by benches."""
    return run_aes_synthesis()


@pytest.fixture(scope="session")
def prototype_comparison(aes_synthesis_session):
    """The mesh-vs-custom simulation used by the Section 5.2 table benches."""
    return run_prototype_comparison(blocks=2, synthesis=aes_synthesis_session)
