"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
numbers).  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated rows/series printed by each benchmark.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import time  # noqa: E402
from dataclasses import dataclass  # noqa: E402

from repro.arch.mesh import build_mesh  # noqa: E402
from repro.experiments.aes_experiment import run_aes_synthesis  # noqa: E402
from repro.experiments.comparison import run_prototype_comparison  # noqa: E402
from repro.noc.simulator import (  # noqa: E402
    ENGINE_EVENT,
    ENGINE_REFERENCE,
    NoCSimulator,
    SimulatorConfig,
)
from repro.routing.xy import xy_routing_function  # noqa: E402


@pytest.fixture(scope="session")
def aes_synthesis_session():
    """The AES decomposition + synthesized architecture, shared by benches."""
    return run_aes_synthesis()


@pytest.fixture(scope="session")
def prototype_comparison(aes_synthesis_session):
    """The mesh-vs-custom simulation used by the Section 5.2 table benches."""
    return run_prototype_comparison(blocks=2, synthesis=aes_synthesis_session)


# ----------------------------------------------------------------------
# engine comparison harness (event-driven vs reference simulator)
# ----------------------------------------------------------------------
@dataclass
class EngineDuel:
    """One workload run on both simulator engines over one architecture."""

    fabric: str
    event: NoCSimulator
    reference: NoCSimulator
    event_wall_seconds: float
    reference_wall_seconds: float

    @property
    def wall_speedup(self) -> float:
        return self.reference_wall_seconds / max(self.event_wall_seconds, 1e-9)

    @property
    def stepped_ratio(self) -> float:
        return self.reference.cycles_stepped / max(self.event.cycles_stepped, 1)

    def assert_identical_reports(self) -> None:
        assert self.event.report() == self.reference.report(), self.fabric
        assert (
            self.event.statistics.delivery_cycles()
            == self.reference.statistics.delivery_cycles()
        ), self.fabric

    def describe(self) -> str:
        return (
            f"{self.fabric}: wall {self.wall_speedup:.1f}x "
            f"(event {self.event_wall_seconds * 1000:.1f}ms / "
            f"reference {self.reference_wall_seconds * 1000:.1f}ms), "
            f"stepped cycles {self.reference.cycles_stepped}/"
            f"{self.event.cycles_stepped} = {self.stepped_ratio:.1f}x "
            f"over {self.event.current_cycle} simulated cycles"
        )


@pytest.fixture(scope="session")
def engine_duel(aes_synthesis_session):
    """Run a traffic builder on both engines over the mesh or custom fabric.

    Returns ``run(fabric, schedule) -> EngineDuel`` where ``schedule(sim)``
    loads the traffic; both engines then drain the identical workload and the
    duel carries reports, per-engine wall-clock and stepped-cycle counts.
    """

    def fabric_parts(fabric):
        if fabric == "mesh":
            mesh = build_mesh(4, 4)
            return mesh, xy_routing_function(mesh)
        architecture = aes_synthesis_session.architecture
        return architecture.topology, architecture.routing_table.frozen_next_hop()

    def run(fabric, schedule, pipeline_delay_cycles=2):
        runs = {}
        for engine in (ENGINE_EVENT, ENGINE_REFERENCE):
            topology, routing = fabric_parts(fabric)
            simulator = NoCSimulator(
                topology,
                routing,
                config=SimulatorConfig(
                    engine=engine, router_pipeline_delay_cycles=pipeline_delay_cycles
                ),
            )
            schedule(simulator)
            start = time.perf_counter()
            simulator.run_until_drained()
            runs[engine] = (simulator, time.perf_counter() - start)
        return EngineDuel(
            fabric=fabric,
            event=runs[ENGINE_EVENT][0],
            reference=runs[ENGINE_REFERENCE][0],
            event_wall_seconds=runs[ENGINE_EVENT][1],
            reference_wall_seconds=runs[ENGINE_REFERENCE][1],
        )

    return run
