"""Figure 4a — decomposition run time on TGFF-style task graphs.

Paper: run times up to 0.3 s, the largest case being an 18-node automotive
benchmark.  Shape criterion: all TGFF-style graphs decompose in well under a
few seconds and the run time grows with graph size, with the automotive
benchmark the slowest of the suite.

The sweep also guards the decomposition hot path: the candidate-inheritance
matching cache and transposition table must keep the number of VF2-enumerated
matchings at least 2x below the pre-cache implementation (the recorded seed
baseline), and the cache counters are printed so the effect is measured
rather than asserted blindly.
"""

from __future__ import annotations

import pytest

from repro.core.cost import LinkCountCostModel
from repro.core.decomposition import decompose
from repro.core.library import default_library
from repro.experiments.reporting import format_series
from repro.experiments.runtime_sweep import default_sweep_config, run_tgff_runtime_sweep
from repro.workloads.tgff import automotive_benchmark

TGFF_SIZES = (5, 8, 10, 12, 15, 18)

# Total branch candidates produced by fresh VF2 queries over the full sweep
# in the seed implementation (no matching cache / transposition table, no
# overscan — there, every enumerated matching was a branch candidate),
# measured with the same sizes, seed and sweep config.  The cached search
# must keep `matchings_tried` at least 2x below this, and its *total* VF2
# enumeration (`matchings_enumerated`, which includes the cache-feeding
# overscan) must not exceed the seed's.
SEED_MATCHINGS_TRIED = 2917


@pytest.mark.smoke
def test_fig4a_tgff_runtime_series(benchmark):
    """Regenerate the Figure-4a series: nodes vs. average decomposition time."""
    result = benchmark.pedantic(
        lambda: run_tgff_runtime_sweep(sizes=TGFF_SIZES), rounds=1, iterations=1
    )
    series = result.average_runtime_by_size()
    print()
    print(format_series(series, x_label="nodes", y_label="avg_runtime_s"))
    print(f"cache summary: {result.cache_summary()}")

    # shape: every graph finishes quickly and the curve trends upward
    assert result.max_runtime() < 30.0
    sizes = [size for size, _ in series]
    runtimes = [runtime for _, runtime in series]
    assert sizes == sorted(sizes)
    assert max(runtimes) == runtimes[-1] or runtimes[-1] > runtimes[0]
    # the 18-node automotive benchmark is present and fully processed
    automotive = [p for p in result.points if p.name == "tgff_automotive_18"]
    assert automotive and automotive[0].covered_fraction > 0.5

    # hot path: the matching cache must absorb most candidate enumeration,
    # and the overscan that feeds it must not cost more VF2 work in total
    # than the seed implementation spent
    summary = result.cache_summary()
    assert summary["matchings_tried"] * 2 <= SEED_MATCHINGS_TRIED
    assert summary["matchings_enumerated"] <= SEED_MATCHINGS_TRIED
    assert summary["matching_cache_hits"] > summary["matching_cache_misses"]


@pytest.mark.smoke
def test_fig4a_automotive_benchmark_decomposition(benchmark):
    """Benchmark the single headline case: the 18-node automotive task graph."""
    acg = automotive_benchmark().to_acg()
    library = default_library()
    config = default_sweep_config()

    result = benchmark(
        lambda: decompose(acg, library, cost_model=LinkCountCostModel(), config=config)
    )
    result.validate_cover()
    assert result.covered_edge_fraction() > 0.5
