"""Energy and power accounting for simulated NoC traffic.

The paper's prototype comparison measures (i) average power with Xilinx
XPower using actual simulation traces and (ii) the energy per encrypted
128-bit block as ``E = (cycles/block) / f_clk * P_avg``.  We reproduce the
same accounting on top of the cycle-based simulator: every router traversal
and every link traversal of every bit is charged to an :class:`EnergyAccount`
using the technology's ``E_Sbit`` / ``E_Lbit`` figures, leakage is charged
per router per cycle, and the account converts totals into average power and
energy-per-block numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.link_model import LinkEnergyModel
from repro.energy.technology import DEFAULT_TECHNOLOGY, Technology
from repro.exceptions import EnergyModelError


@dataclass
class EnergyAccount:
    """Accumulates dynamic and static energy over a simulation run."""

    technology: Technology = DEFAULT_TECHNOLOGY
    switch_events_bits: float = 0.0
    link_events: list[tuple[float, float]] = field(default_factory=list)
    """(bits, link_length_mm) pairs for every link traversal batch."""
    _link_energy_pj: float = 0.0
    _leakage_pj: float = 0.0
    _link_model: LinkEnergyModel | None = field(
        default=None, init=False, repr=False, compare=False
    )
    """Lazily built per-technology link model, shared by every charge."""
    _link_pj_per_bit: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    """Per-length ``E_Lbit`` figures, cached on the account so the hot
    charge path skips the model call entirely."""

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def charge_switch(self, bits: float) -> None:
        """Charge one router traversal of ``bits`` bits."""
        if bits < 0:
            raise EnergyModelError("cannot charge a negative number of bits")
        self.switch_events_bits += bits

    def charge_link(self, bits: float, length_mm: float) -> None:
        """Charge one link-traversal batch of ``bits`` bits over ``length_mm``."""
        if bits < 0:
            raise EnergyModelError("cannot charge a negative number of bits")
        pj_per_bit = self._link_pj_per_bit.get(length_mm)
        if pj_per_bit is None:
            if self._link_model is None:
                self._link_model = LinkEnergyModel(self.technology)
            pj_per_bit = self._link_model.link_energy_pj(length_mm)
            self._link_pj_per_bit[length_mm] = pj_per_bit
        self.link_events.append((bits, length_mm))
        self._link_energy_pj += bits * pj_per_bit

    def charge_hop(self, bits: float, length_mm: float) -> None:
        """Charge one switch traversal plus the outgoing link traversal."""
        self.charge_switch(bits)
        self.charge_link(bits, length_mm)

    def charge_leakage(self, num_routers: int, num_cycles: int) -> None:
        """Charge static energy for ``num_routers`` routers over ``num_cycles``."""
        if num_routers < 0 or num_cycles < 0:
            raise EnergyModelError("router and cycle counts must be non-negative")
        # mW * ns = pJ
        self._leakage_pj += (
            self.technology.leakage_power_mw_per_router
            * num_routers
            * num_cycles
            * self.technology.cycle_time_ns
        )

    # ------------------------------------------------------------------
    # totals
    # ------------------------------------------------------------------
    @property
    def switch_energy_pj(self) -> float:
        return self.switch_events_bits * self.technology.switch_energy_pj_per_bit

    @property
    def link_energy_pj(self) -> float:
        return self._link_energy_pj

    @property
    def leakage_energy_pj(self) -> float:
        return self._leakage_pj

    @property
    def dynamic_energy_pj(self) -> float:
        return self.switch_energy_pj + self.link_energy_pj

    @property
    def total_energy_pj(self) -> float:
        return self.dynamic_energy_pj + self.leakage_energy_pj

    @property
    def total_energy_uj(self) -> float:
        """Total energy in microjoules (the unit the paper reports per block)."""
        return self.total_energy_pj * 1e-6

    # ------------------------------------------------------------------
    # derived figures of merit
    # ------------------------------------------------------------------
    def average_power_mw(self, num_cycles: int) -> float:
        """Average power over ``num_cycles`` cycles, in milliwatts."""
        if num_cycles <= 0:
            raise EnergyModelError("average power needs a positive cycle count")
        elapsed_ns = num_cycles * self.technology.cycle_time_ns
        return self.total_energy_pj / elapsed_ns  # pJ / ns == mW

    def energy_per_block_uj(self, cycles_per_block: float, num_blocks: int) -> float:
        """Energy per processed block, in microjoules.

        Mirrors the paper's ``E = delta/f * P_avg`` with ``delta`` the
        cycles per block: total energy is divided evenly over the blocks.
        """
        if num_blocks <= 0:
            raise EnergyModelError("need at least one block")
        del cycles_per_block  # implied by the totals; kept for interface clarity
        return self.total_energy_uj / num_blocks

    def summary(self) -> dict[str, float]:
        return {
            "switch_energy_pj": self.switch_energy_pj,
            "link_energy_pj": self.link_energy_pj,
            "leakage_energy_pj": self.leakage_energy_pj,
            "total_energy_pj": self.total_energy_pj,
        }


def energy_per_block_from_power(
    cycles_per_block: float, frequency_mhz: float, average_power_mw: float
) -> float:
    """The paper's formula ``E = (delta / f) * P_avg`` returning microjoules.

    ``delta`` is in cycles, ``f`` in MHz and ``P_avg`` in mW; the result is
    converted to microjoules (mW * us = nJ; /1000 -> uJ).
    """
    if frequency_mhz <= 0:
        raise EnergyModelError("frequency must be positive")
    time_us = cycles_per_block / frequency_mhz
    energy_nj = time_us * average_power_mw
    return energy_nj * 1e-3
