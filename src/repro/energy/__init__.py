"""Energy models: technology points, Equation-1 bit energy, link model, power.

Public entry points:

* :class:`repro.energy.technology.Technology` and the shipped catalogue
  (:data:`CMOS_180NM`, :data:`FPGA_VIRTEX2`, ...),
* :class:`repro.energy.bit_energy.BitEnergyModel` — Equation 1,
* :class:`repro.energy.link_model.LinkEnergyModel` — length/repeater-aware
  ``E_Lbit``,
* :class:`repro.energy.power.EnergyAccount` — traffic-driven energy/power
  accounting used by the simulator-based comparisons.
"""

from repro.energy.bit_energy import BitEnergyModel
from repro.energy.link_model import LinkEnergyModel
from repro.energy.power import EnergyAccount, energy_per_block_from_power
from repro.energy.technology import (
    CMOS_100NM,
    CMOS_130NM,
    CMOS_180NM,
    DEFAULT_TECHNOLOGY,
    FPGA_VIRTEX2,
    Technology,
    available_technologies,
    get_technology,
)

__all__ = [
    "BitEnergyModel",
    "LinkEnergyModel",
    "EnergyAccount",
    "energy_per_block_from_power",
    "Technology",
    "available_technologies",
    "get_technology",
    "CMOS_100NM",
    "CMOS_130NM",
    "CMOS_180NM",
    "FPGA_VIRTEX2",
    "DEFAULT_TECHNOLOGY",
]
