"""Link energy model: from floorplan distances to per-bit link energy.

Section 3 of the paper points out that, unlike regular grids, customized
topologies have links whose lengths are not known a priori; the library
therefore stores the link energy *per unit length* and the actual ``E_Lbit``
is computed from the real link length once the floorplan is known, "also
taking the repeaters into account".  This module implements exactly that
calculation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy.technology import Technology
from repro.exceptions import EnergyModelError


@dataclass(frozen=True)
class LinkEnergyModel:
    """Per-bit energy of a point-to-point link of a given physical length."""

    technology: Technology

    def __post_init__(self) -> None:
        # fabrics have a handful of distinct link lengths but the hot loops
        # charge millions of traversals; cache the pure per-length figure
        object.__setattr__(self, "_energy_cache", {})

    def repeaters_needed(self, length_mm: float) -> int:
        """Number of repeaters inserted on a link of ``length_mm`` millimetres.

        A repeater is inserted every ``repeater_spacing_mm``; a link shorter
        than the spacing needs none.
        """
        if length_mm < 0:
            raise EnergyModelError("link length must be non-negative")
        if length_mm <= self.technology.repeater_spacing_mm:
            return 0
        return int(math.ceil(length_mm / self.technology.repeater_spacing_mm)) - 1

    def link_energy_pj(self, length_mm: float) -> float:
        """``E_Lbit`` for one bit traversing a link of ``length_mm``.

        The wire contribution is linear in length; the repeater contribution
        is charged per repeater as the equivalent of driving one repeater
        span worth of wire with the repeater-specific per-mm figure.
        """
        cached = self._energy_cache.get(length_mm)
        if cached is not None:
            return cached
        if length_mm < 0:
            raise EnergyModelError("link length must be non-negative")
        wire = self.technology.link_energy_pj_per_bit_mm * length_mm
        repeaters = (
            self.repeaters_needed(length_mm)
            * self.technology.repeater_energy_pj_per_bit_mm
            * self.technology.repeater_spacing_mm
        )
        energy = wire + repeaters
        self._energy_cache[length_mm] = energy
        return energy

    def switch_energy_pj(self) -> float:
        """``E_Sbit``: per-bit energy of one router traversal."""
        return self.technology.switch_energy_pj_per_bit
