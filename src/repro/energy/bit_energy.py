"""The bit-energy model of Equation 1.

The energy consumed by moving one bit of information from network node ``i``
to network node ``j`` over ``n_hops`` routers is

    E_bit(i, j) = n_hops * E_Sbit + (n_hops - 1) * E_Lbit            (Eq. 1)

where ``E_Sbit`` is the per-bit switch (router) energy and ``E_Lbit`` the
per-bit link energy.  ``n_hops`` counts the routers on the path, so a
transfer between directly connected routers traverses two switches and one
link.  When the links have different physical lengths (the general case for
a customized topology), the single ``(n_hops - 1) * E_Lbit`` term becomes a
sum of per-link energies; :class:`BitEnergyModel` supports both forms.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.energy.link_model import LinkEnergyModel
from repro.energy.technology import DEFAULT_TECHNOLOGY, Technology
from repro.exceptions import EnergyModelError


@dataclass(frozen=True)
class BitEnergyModel:
    """Computes ``E_bit`` for paths described by hop count or link lengths."""

    technology: Technology = DEFAULT_TECHNOLOGY

    @property
    def link_model(self) -> LinkEnergyModel:
        return LinkEnergyModel(self.technology)

    # ------------------------------------------------------------------
    # Equation 1 in its two forms
    # ------------------------------------------------------------------
    def bit_energy_uniform(self, num_router_hops: int, link_length_mm: float) -> float:
        """Equation 1 with a uniform link length (regular grid case), in pJ."""
        if num_router_hops < 1:
            raise EnergyModelError("a transfer traverses at least one router")
        switch = num_router_hops * self.technology.switch_energy_pj_per_bit
        links = (num_router_hops - 1) * self.link_model.link_energy_pj(link_length_mm)
        return switch + links

    def bit_energy_for_lengths(self, link_lengths_mm: Sequence[float]) -> float:
        """Equation 1 generalised to per-link lengths (customized topologies).

        A path with ``L`` links traverses ``L + 1`` routers.
        """
        num_links = len(link_lengths_mm)
        switch = (num_links + 1) * self.technology.switch_energy_pj_per_bit
        links = sum(self.link_model.link_energy_pj(length) for length in link_lengths_mm)
        return switch + links

    def transfer_energy_pj(self, volume_bits: float, link_lengths_mm: Sequence[float]) -> float:
        """Energy to move ``volume_bits`` bits along a path with the given links."""
        if volume_bits < 0:
            raise EnergyModelError("volume must be non-negative")
        return volume_bits * self.bit_energy_for_lengths(link_lengths_mm)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def min_bit_energy(self) -> float:
        """Smallest possible per-bit energy: a single-link transfer of length ~0.

        Used as the admissible per-edge lower bound by the branch-and-bound
        cost model: no routing of an ACG edge can cost less than pushing its
        bits through two routers and one (arbitrarily short) link.
        """
        return self.bit_energy_for_lengths([0.0])
