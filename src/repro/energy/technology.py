"""Technology parameters used by the bit-energy model.

Section 3 of the paper states that the switch energy per bit (``E_Sbit``)
"for different process technologies, voltage levels, operating frequencies"
is stored in the library, and that the link energy per bit (``E_Lbit``) is
derived from a per-unit-length figure plus the repeater overhead once the
actual link length is known from the floorplan.

This module provides a small catalogue of representative technology points.
The absolute values follow the published bit-energy characterisations used by
the NoC mapping literature the paper builds on (Hu & Marculescu, DATE 2003
and the Eb profiles commonly quoted for 0.18 um / 0.13 um / 0.10 um nodes);
what matters for reproducing the paper is that both the mesh baseline and the
customized architecture are evaluated with the *same* technology point, so
the relative comparison is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import EnergyModelError


@dataclass(frozen=True)
class Technology:
    """One process/voltage/frequency operating point.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"cmos_180nm"``.
    feature_size_nm:
        Drawn feature size in nanometres (informational).
    voltage:
        Supply voltage in volts.
    frequency_mhz:
        Network clock frequency in MHz (the paper's prototype runs at 100 MHz).
    switch_energy_pj_per_bit:
        ``E_Sbit``: energy to move one bit through one router (buffering,
        arbitration and crossbar traversal), in picojoules.
    link_energy_pj_per_bit_mm:
        ``E_Lbit`` per millimetre of wire, in picojoules per bit per mm,
        *excluding* repeaters.
    repeater_energy_pj_per_bit_mm:
        Additional energy contributed by repeaters per millimetre, in
        picojoules per bit per mm.
    repeater_spacing_mm:
        Distance between repeaters; links shorter than this need none.
    leakage_power_mw_per_router:
        Static power per router in milliwatts, charged for every cycle the
        router exists regardless of traffic (used by the power report).
    """

    name: str
    feature_size_nm: float
    voltage: float
    frequency_mhz: float
    switch_energy_pj_per_bit: float
    link_energy_pj_per_bit_mm: float
    repeater_energy_pj_per_bit_mm: float = 0.0
    repeater_spacing_mm: float = 2.0
    leakage_power_mw_per_router: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise EnergyModelError("frequency must be positive")
        if self.switch_energy_pj_per_bit < 0 or self.link_energy_pj_per_bit_mm < 0:
            raise EnergyModelError("energy figures must be non-negative")
        if self.repeater_spacing_mm <= 0:
            raise EnergyModelError("repeater spacing must be positive")

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1000.0 / self.frequency_mhz

    def scaled(self, voltage: float | None = None, frequency_mhz: float | None = None) -> "Technology":
        """Return a copy at a different voltage/frequency operating point.

        Dynamic energy scales with ``V^2``; leakage is scaled linearly with
        voltage as a first-order approximation.
        """
        new_voltage = self.voltage if voltage is None else voltage
        new_frequency = self.frequency_mhz if frequency_mhz is None else frequency_mhz
        if new_voltage <= 0:
            raise EnergyModelError("voltage must be positive")
        ratio = (new_voltage / self.voltage) ** 2
        return Technology(
            name=f"{self.name}@{new_voltage:.2f}V/{new_frequency:.0f}MHz",
            feature_size_nm=self.feature_size_nm,
            voltage=new_voltage,
            frequency_mhz=new_frequency,
            switch_energy_pj_per_bit=self.switch_energy_pj_per_bit * ratio,
            link_energy_pj_per_bit_mm=self.link_energy_pj_per_bit_mm * ratio,
            repeater_energy_pj_per_bit_mm=self.repeater_energy_pj_per_bit_mm * ratio,
            repeater_spacing_mm=self.repeater_spacing_mm,
            leakage_power_mw_per_router=self.leakage_power_mw_per_router
            * (new_voltage / self.voltage),
        )


# ----------------------------------------------------------------------
# catalogue
# ----------------------------------------------------------------------
CMOS_180NM = Technology(
    name="cmos_180nm",
    feature_size_nm=180.0,
    voltage=1.8,
    frequency_mhz=100.0,
    switch_energy_pj_per_bit=0.43,
    link_energy_pj_per_bit_mm=0.39,
    repeater_energy_pj_per_bit_mm=0.05,
    repeater_spacing_mm=2.0,
    leakage_power_mw_per_router=0.1,
)

CMOS_130NM = Technology(
    name="cmos_130nm",
    feature_size_nm=130.0,
    voltage=1.2,
    frequency_mhz=200.0,
    switch_energy_pj_per_bit=0.28,
    link_energy_pj_per_bit_mm=0.26,
    repeater_energy_pj_per_bit_mm=0.04,
    repeater_spacing_mm=1.5,
    leakage_power_mw_per_router=0.15,
)

CMOS_100NM = Technology(
    name="cmos_100nm",
    feature_size_nm=100.0,
    voltage=1.0,
    frequency_mhz=250.0,
    switch_energy_pj_per_bit=0.18,
    link_energy_pj_per_bit_mm=0.19,
    repeater_energy_pj_per_bit_mm=0.03,
    repeater_spacing_mm=1.0,
    leakage_power_mw_per_router=0.2,
)

FPGA_VIRTEX2 = Technology(
    name="fpga_virtex2",
    feature_size_nm=150.0,
    voltage=1.5,
    frequency_mhz=100.0,
    switch_energy_pj_per_bit=3.5,
    link_energy_pj_per_bit_mm=0.4,
    repeater_energy_pj_per_bit_mm=0.0,
    repeater_spacing_mm=4.0,
    leakage_power_mw_per_router=1.2,
)
"""Operating point emulating the paper's Virtex-2 (XC2V4000) prototype at 100 MHz.

On an FPGA the router logic (buffers, arbitration, crossbar built from LUTs
and flip-flops) dominates the per-hop energy while the short inter-tile
wires are comparatively cheap, hence the high switch-to-link energy ratio;
the static term models the clock tree and idle logic of the network fabric.
"""

_CATALOGUE: dict[str, Technology] = {
    technology.name: technology
    for technology in (CMOS_180NM, CMOS_130NM, CMOS_100NM, FPGA_VIRTEX2)
}

DEFAULT_TECHNOLOGY = FPGA_VIRTEX2


def available_technologies() -> list[str]:
    """Names of the technology points shipped with the library."""
    return sorted(_CATALOGUE)


def get_technology(name: str) -> Technology:
    """Look a technology up by name."""
    try:
        return _CATALOGUE[name]
    except KeyError as error:
        raise EnergyModelError(
            f"unknown technology {name!r}; available: {available_technologies()}"
        ) from error
