"""Workload generators: TGFF-like task graphs, Pajek-like random graphs,
published embedded-benchmark ACGs, curated example ACGs and conversion
helpers."""

from repro.workloads.acg_builder import (
    acg_from_task_graph,
    acg_from_traffic_table,
    attach_grid_floorplan,
    set_uniform_bandwidth,
)
from repro.workloads.benchmarks import (
    embedded_benchmark_acg,
    embedded_benchmark_names,
    embedded_benchmark_suite,
    h263enc_mp3dec_acg,
    mpeg4_decoder_acg,
    mwd_acg,
    vopd_acg,
)
from repro.workloads.pajek import (
    erdos_renyi_acg,
    pajek_benchmark_suite,
    planted_primitive_acg,
    read_pajek,
    write_pajek,
)
from repro.workloads.random_acg import (
    degree_sequence_acg,
    figure2_example_graph,
    figure5_example_acg,
    power_law_out_degrees,
    random_decomposable_acg,
    scale_free_acg,
)
from repro.workloads.tgff import (
    TaskGraph,
    TgffParameters,
    automotive_benchmark,
    generate_tgff_task_graph,
    tgff_benchmark_suite,
)

__all__ = [
    "TaskGraph",
    "TgffParameters",
    "generate_tgff_task_graph",
    "automotive_benchmark",
    "tgff_benchmark_suite",
    "erdos_renyi_acg",
    "planted_primitive_acg",
    "pajek_benchmark_suite",
    "read_pajek",
    "write_pajek",
    "figure5_example_acg",
    "figure2_example_graph",
    "random_decomposable_acg",
    "degree_sequence_acg",
    "power_law_out_degrees",
    "scale_free_acg",
    "embedded_benchmark_acg",
    "embedded_benchmark_names",
    "embedded_benchmark_suite",
    "mpeg4_decoder_acg",
    "vopd_acg",
    "mwd_acg",
    "h263enc_mp3dec_acg",
    "acg_from_task_graph",
    "acg_from_traffic_table",
    "attach_grid_floorplan",
    "set_uniform_bandwidth",
]
