"""Workload generators: TGFF-like task graphs, Pajek-like random graphs,
curated example ACGs and conversion helpers."""

from repro.workloads.acg_builder import (
    acg_from_task_graph,
    acg_from_traffic_table,
    attach_grid_floorplan,
    set_uniform_bandwidth,
)
from repro.workloads.pajek import (
    erdos_renyi_acg,
    pajek_benchmark_suite,
    planted_primitive_acg,
    read_pajek,
    write_pajek,
)
from repro.workloads.random_acg import (
    figure2_example_graph,
    figure5_example_acg,
    random_decomposable_acg,
)
from repro.workloads.tgff import (
    TaskGraph,
    TgffParameters,
    automotive_benchmark,
    generate_tgff_task_graph,
    tgff_benchmark_suite,
)

__all__ = [
    "TaskGraph",
    "TgffParameters",
    "generate_tgff_task_graph",
    "automotive_benchmark",
    "tgff_benchmark_suite",
    "erdos_renyi_acg",
    "planted_primitive_acg",
    "pajek_benchmark_suite",
    "read_pajek",
    "write_pajek",
    "figure5_example_acg",
    "figure2_example_graph",
    "random_decomposable_acg",
    "acg_from_task_graph",
    "acg_from_traffic_table",
    "attach_grid_floorplan",
    "set_uniform_bandwidth",
]
