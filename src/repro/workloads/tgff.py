"""TGFF-style task-graph generation.

The paper evaluates decomposition run time on "a set of benchmarks generated
using TGFF" (Task Graphs For Free, Dick et al.), the largest being an
18-node automotive-industry benchmark.  TGFF itself is a C++ tool; this
module reproduces its essential behaviour in Python: pseudo-random
series-parallel task graphs with bounded in/out degree and per-edge
communication volumes, plus a fixed 18-task automotive-style benchmark whose
structure follows the embedded automotive task sets commonly distributed
with TGFF/E3S (sensor front-ends feeding filter chains, a fusion stage and
actuator outputs).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.graph import ApplicationGraph
from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class TgffParameters:
    """Generation parameters mirroring TGFF's main knobs."""

    num_tasks: int = 12
    max_out_degree: int = 3
    max_in_degree: int = 3
    min_volume_bits: int = 64
    max_volume_bits: int = 1024
    extra_edge_probability: float = 0.15
    """Probability of adding a cross edge between already-connected layers,
    which creates the multi-fan-in patterns TGFF produces with its series
    chains."""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tasks < 2:
            raise WorkloadError("a task graph needs at least two tasks")
        if self.max_out_degree < 1 or self.max_in_degree < 1:
            raise WorkloadError("degree bounds must be at least one")
        if self.min_volume_bits <= 0 or self.max_volume_bits < self.min_volume_bits:
            raise WorkloadError("invalid volume range")
        if not 0.0 <= self.extra_edge_probability <= 1.0:
            raise WorkloadError("extra_edge_probability must be within [0, 1]")


@dataclass
class TaskGraph:
    """A directed acyclic task graph with communication volumes on edges."""

    name: str
    tasks: list[int] = field(default_factory=list)
    edges: dict[tuple[int, int], int] = field(default_factory=dict)

    def add_task(self, task: int) -> None:
        if task in self.tasks:
            raise WorkloadError(f"task {task} already exists")
        self.tasks.append(task)

    def add_dependency(self, producer: int, consumer: int, volume_bits: int) -> None:
        if producer not in self.tasks or consumer not in self.tasks:
            raise WorkloadError("both endpoints must be existing tasks")
        if volume_bits <= 0:
            raise WorkloadError("communication volume must be positive")
        self.edges[(producer, consumer)] = volume_bits

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def to_acg(self, bandwidth_fraction: float = 0.0) -> ApplicationGraph:
        """One task per core (identity mapping) — the paper's assumption that
        the application is already mapped onto the processing cores."""
        acg = ApplicationGraph(name=self.name)
        for task in self.tasks:
            acg.add_node(task, exist_ok=True)
        for (producer, consumer), volume in self.edges.items():
            acg.add_communication(
                producer, consumer, volume=volume, bandwidth=bandwidth_fraction * volume
            )
        return acg


def generate_tgff_task_graph(parameters: TgffParameters) -> TaskGraph:
    """Pseudo-random layered fork-join task graph (TGFF-like)."""
    rng = random.Random(parameters.seed)
    graph = TaskGraph(name=f"tgff_{parameters.num_tasks}_{parameters.seed}")
    for task in range(1, parameters.num_tasks + 1):
        graph.add_task(task)

    def volume() -> int:
        return rng.randint(parameters.min_volume_bits, parameters.max_volume_bits)

    in_degree = {task: 0 for task in graph.tasks}
    out_degree = {task: 0 for task in graph.tasks}

    # connect every task (except the source) to an earlier task: guarantees a
    # weakly-connected DAG just like TGFF's series-parallel chains.
    for task in graph.tasks[1:]:
        candidates = [
            earlier
            for earlier in graph.tasks
            if earlier < task and out_degree[earlier] < parameters.max_out_degree
        ]
        if not candidates:
            candidates = [task - 1]
        producer = rng.choice(candidates)
        graph.add_dependency(producer, task, volume())
        out_degree[producer] += 1
        in_degree[task] += 1

    # sprinkle extra forward edges for multi-fan-in / multi-fan-out patterns
    for producer in graph.tasks:
        for consumer in graph.tasks:
            if consumer <= producer or (producer, consumer) in graph.edges:
                continue
            if out_degree[producer] >= parameters.max_out_degree:
                break
            if in_degree[consumer] >= parameters.max_in_degree:
                continue
            if rng.random() < parameters.extra_edge_probability:
                graph.add_dependency(producer, consumer, volume())
                out_degree[producer] += 1
                in_degree[consumer] += 1
    return graph


def automotive_benchmark() -> TaskGraph:
    """An 18-task automotive-style benchmark (the paper's largest TGFF case).

    The structure follows the classic embedded automotive pipeline: four
    sensor front-ends feed per-sensor filtering chains, the filtered streams
    are fused, the fusion result drives a control-law block whose outputs go
    to four actuator drivers, with a diagnostics/logging tap on the fused
    data.  Volumes are in bits per control period.
    """
    graph = TaskGraph(name="tgff_automotive_18")
    for task in range(1, 19):
        graph.add_task(task)

    # sensors 1-4 -> filters 5-8 (per-sensor chains)
    for sensor, filter_task in zip((1, 2, 3, 4), (5, 6, 7, 8)):
        graph.add_dependency(sensor, filter_task, 512)
    # filters 5-8 -> feature extraction 9-10 (two sensor groups)
    graph.add_dependency(5, 9, 256)
    graph.add_dependency(6, 9, 256)
    graph.add_dependency(7, 10, 256)
    graph.add_dependency(8, 10, 256)
    # feature extraction -> fusion 11
    graph.add_dependency(9, 11, 384)
    graph.add_dependency(10, 11, 384)
    # fusion -> control law 12, diagnostics 13
    graph.add_dependency(11, 12, 512)
    graph.add_dependency(11, 13, 128)
    # control law -> actuator drivers 14-17
    for actuator in (14, 15, 16, 17):
        graph.add_dependency(12, actuator, 128)
    # diagnostics -> logger 18, logger feedback to fusion (closed loop)
    graph.add_dependency(13, 18, 64)
    graph.add_dependency(18, 11, 32)
    # actuator status feedback to control law
    graph.add_dependency(14, 12, 32)
    graph.add_dependency(15, 12, 32)
    return graph


def tgff_benchmark_suite(
    sizes: Sequence[int] = (5, 8, 10, 12, 15, 18), seed: int = 7
) -> list[TaskGraph]:
    """A suite of TGFF-like graphs of increasing size (plus the automotive one).

    Used by the Figure-4a runtime sweep.
    """
    suite = [
        generate_tgff_task_graph(TgffParameters(num_tasks=size, seed=seed + size))
        for size in sizes
        if size != 18
    ]
    if 18 in sizes:
        suite.append(automotive_benchmark())
    return suite
