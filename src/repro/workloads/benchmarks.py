"""Published embedded-benchmark Application Characterization Graphs.

The NoC synthesis/mapping literature evaluates on a small canon of
multimedia application core graphs with published inter-core bandwidth
annotations (MB/s): the MPEG-4 decoder, the Video Object Plane Decoder
(VOPD), the Multi-Window Display (MWD) and the combined H.263 encoder +
MP3 decoder.  This module reproduces those ACGs so the batch
design-space exploration (:mod:`repro.dse`) has representative real
workloads beyond the paper's AES case study.

The node names and graph structure follow the standard published graphs
(van der Tol & Jaspers for MPEG-4/VOPD; Srinivasan & Chatha for MWD;
Hu & Marculescu for 263enc+mp3dec) with the bandwidth annotations as
commonly reproduced in the mapping literature; several slightly
different variants of these tables circulate, so the exact figures
should be treated as representative rather than normative.

Bandwidths are stored as communication *volumes* via the
``bits_per_mbs`` scale (bits of simulated traffic per MB/s of annotated
bandwidth) so one batch of ACG traffic stays small enough for the
cycle-level simulator, while the relative channel loads — which is what
shapes the synthesized topology — match the published tables.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.graph import ApplicationGraph
from repro.exceptions import WorkloadError
from repro.workloads.acg_builder import attach_grid_floorplan

#: default scale: bits of simulated volume per MB/s of published bandwidth
DEFAULT_BITS_PER_MBS = 4.0

#: minimum per-edge volume so even faint control edges carry one flit
MIN_EDGE_VOLUME_BITS = 32.0


def _acg_from_bandwidth_table(
    name: str,
    table: Mapping[tuple[str, str], float],
    bits_per_mbs: float,
    bandwidth_fraction: float,
    floorplanned: bool,
    core_size_mm: float,
) -> ApplicationGraph:
    if bits_per_mbs <= 0:
        raise WorkloadError("bits_per_mbs must be positive")
    acg = ApplicationGraph(name=name)
    for source, target in table:
        acg.add_node(source, exist_ok=True)
        acg.add_node(target, exist_ok=True)
    for (source, target), rate_mb_s in table.items():
        if rate_mb_s <= 0:
            raise WorkloadError(f"bandwidth for {source}->{target} must be positive")
        volume = max(rate_mb_s * bits_per_mbs, MIN_EDGE_VOLUME_BITS)
        acg.add_communication(
            source, target, volume=volume, bandwidth=bandwidth_fraction * volume
        )
    if floorplanned:
        attach_grid_floorplan(acg, core_size_mm=core_size_mm)
    return acg


#: MPEG-4 decoder (12 cores).  The defining feature is the SDRAM hub that
#: almost every core talks to — the pattern that makes MPEG-4 the classic
#: argument for application-specific (non-mesh) topologies.
MPEG4_BANDWIDTH_MB_S: dict[tuple[str, str], float] = {
    ("up_samp", "sdram"): 910.0,
    ("sdram", "bab"): 670.0,
    ("rast", "sdram"): 640.0,
    ("risc", "sdram"): 500.0,
    ("idct", "sdram"): 250.0,
    ("vu", "sdram"): 190.0,
    ("med_cpu", "sdram"): 60.0,
    ("med_cpu", "sram2"): 40.0,
    ("risc", "sram1"): 32.0,
    ("risc", "sram2"): 16.0,
    ("au", "sdram"): 1.0,
    ("adsp", "sdram"): 1.0,
}

#: Video Object Plane Decoder (12 cores): a deep pipeline from the variable
#: length decoder to the VOP memory, with the stripe-memory feedback loop
#: around AC/DC prediction and the ARM control tap.
VOPD_BANDWIDTH_MB_S: dict[tuple[str, str], float] = {
    ("vld", "run_le_dec"): 70.0,
    ("run_le_dec", "inv_scan"): 362.0,
    ("inv_scan", "acdc_pred"): 362.0,
    ("acdc_pred", "iquant"): 362.0,
    ("acdc_pred", "stripe_mem"): 49.0,
    ("stripe_mem", "acdc_pred"): 27.0,
    ("iquant", "idct"): 357.0,
    ("idct", "up_samp"): 353.0,
    ("up_samp", "vop_rec"): 300.0,
    ("vop_rec", "pad"): 313.0,
    ("pad", "vop_mem"): 313.0,
    ("vop_mem", "pad"): 500.0,
    ("idct", "arm"): 16.0,
    ("arm", "pad"): 16.0,
}

#: Multi-Window Display (12 cores): two scaling pipelines through frame
#: memories that join in the blend stage.
MWD_BANDWIDTH_MB_S: dict[tuple[str, str], float] = {
    ("in", "nr"): 128.0,
    ("in", "hvs"): 96.0,
    ("nr", "mem1"): 64.0,
    ("mem1", "hs"): 64.0,
    ("hs", "mem2"): 96.0,
    ("mem2", "vs"): 96.0,
    ("vs", "mem3"): 96.0,
    ("mem3", "jug1"): 64.0,
    ("vs", "jug2"): 64.0,
    ("jug1", "se"): 64.0,
    ("jug2", "se"): 64.0,
    ("se", "blend"): 64.0,
    ("hvs", "blend"): 96.0,
}

#: H.263 encoder + MP3 decoder (12 cores): two independent clusters sharing
#: one chip — the encoder loop dominated by frame-store traffic plus the
#: much lighter MP3 chain.
H263ENC_MP3DEC_BANDWIDTH_MB_S: dict[tuple[str, str], float] = {
    # H.263 encoder cluster
    ("enc_in", "me"): 119.0,
    ("fs", "me"): 301.0,
    ("me", "fs"): 47.0,
    ("me", "mc_dct"): 95.0,
    ("mc_dct", "q"): 76.0,
    ("q", "vlc"): 76.0,
    ("q", "iq_idct"): 76.0,
    ("iq_idct", "fs"): 94.0,
    # MP3 decoder cluster
    ("mp3_in", "huff"): 9.0,
    ("huff", "dequant"): 9.0,
    ("dequant", "imdct"): 14.0,
    ("imdct", "pcm_out"): 11.0,
}

_BENCHMARK_TABLES: dict[str, dict[tuple[str, str], float]] = {
    "mpeg4": MPEG4_BANDWIDTH_MB_S,
    "vopd": VOPD_BANDWIDTH_MB_S,
    "mwd": MWD_BANDWIDTH_MB_S,
    "h263enc_mp3dec": H263ENC_MP3DEC_BANDWIDTH_MB_S,
}


def embedded_benchmark_names() -> list[str]:
    """Names of the published embedded-benchmark ACGs shipped here."""
    return sorted(_BENCHMARK_TABLES)


def embedded_benchmark_acg(
    name: str,
    bits_per_mbs: float = DEFAULT_BITS_PER_MBS,
    bandwidth_fraction: float = 0.01,
    floorplanned: bool = True,
    core_size_mm: float = 2.0,
) -> ApplicationGraph:
    """Build one published embedded-benchmark ACG by name."""
    try:
        table = _BENCHMARK_TABLES[name]
    except KeyError as error:
        raise WorkloadError(
            f"unknown embedded benchmark {name!r}; available: {embedded_benchmark_names()}"
        ) from error
    return _acg_from_bandwidth_table(
        name,
        table,
        bits_per_mbs=bits_per_mbs,
        bandwidth_fraction=bandwidth_fraction,
        floorplanned=floorplanned,
        core_size_mm=core_size_mm,
    )


def mpeg4_decoder_acg(bits_per_mbs: float = DEFAULT_BITS_PER_MBS) -> ApplicationGraph:
    """The 12-core MPEG-4 decoder ACG (SDRAM-hub traffic pattern)."""
    return embedded_benchmark_acg("mpeg4", bits_per_mbs=bits_per_mbs)


def vopd_acg(bits_per_mbs: float = DEFAULT_BITS_PER_MBS) -> ApplicationGraph:
    """The 12-core Video Object Plane Decoder ACG (deep pipeline)."""
    return embedded_benchmark_acg("vopd", bits_per_mbs=bits_per_mbs)


def mwd_acg(bits_per_mbs: float = DEFAULT_BITS_PER_MBS) -> ApplicationGraph:
    """The 12-core Multi-Window Display ACG (dual scaling pipelines)."""
    return embedded_benchmark_acg("mwd", bits_per_mbs=bits_per_mbs)


def h263enc_mp3dec_acg(bits_per_mbs: float = DEFAULT_BITS_PER_MBS) -> ApplicationGraph:
    """The 12-core H.263 encoder + MP3 decoder ACG (two clusters)."""
    return embedded_benchmark_acg("h263enc_mp3dec", bits_per_mbs=bits_per_mbs)


def embedded_benchmark_suite(
    bits_per_mbs: float = DEFAULT_BITS_PER_MBS,
) -> list[ApplicationGraph]:
    """All published embedded-benchmark ACGs, name-sorted."""
    return [
        embedded_benchmark_acg(name, bits_per_mbs=bits_per_mbs)
        for name in embedded_benchmark_names()
    ]
