"""Curated random ACGs used by the illustrative experiments.

The Figure-5 example of the paper shows a randomly generated 8-node ACG
whose communication patterns "are not easily detectable by eye inspection"
yet decompose into one MGG-4, three one-to-three broadcasts and one
one-to-four broadcast with no remainder.  :func:`figure5_example_acg`
reconstructs an ACG with exactly that primitive content (the paper does not
publish the exact adjacency, so the instance is rebuilt from its published
decomposition); :func:`figure2_example_graph` reconstructs the 4/5-node
walk-through graph of Figure 2.
"""

from __future__ import annotations

from repro.core.graph import ApplicationGraph
from repro.workloads.pajek import planted_primitive_acg


def figure5_example_acg(volume_bits: int = 64) -> ApplicationGraph:
    """An 8-node ACG that decomposes into 1x MGG4 + 3x G1to3 + 1x G1to4.

    The construction mirrors the decomposition listing printed in
    Section 5.1: a gossip clique over nodes {1, 2, 5, 6}, broadcast stars
    rooted at 3, 7 and 4, and a broadcast from node 8 to four receivers.
    All planted patterns overlap on shared nodes, which is what makes the
    pattern hard to spot by eye in the paper's figure.
    """
    acg = ApplicationGraph(name="figure5_example")
    for node in range(1, 9):
        acg.add_node(node, exist_ok=True)

    def add(source: int, target: int) -> None:
        if not acg.has_edge(source, target):
            acg.add_communication(source, target, volume=volume_bits)

    # 1: MGG4 over {1, 2, 5, 6}
    for source in (1, 2, 5, 6):
        for target in (1, 2, 5, 6):
            if source != target:
                add(source, target)
    # 3: G1to3 rooted at 3 -> {2, 5, 6}
    for receiver in (2, 5, 6):
        add(3, receiver)
    # 3: G1to3 rooted at 7 -> {3, 5, 6}
    for receiver in (3, 5, 6):
        add(7, receiver)
    # 2: G1to4 rooted at 8 -> {1, 3, 6, 7}
    for receiver in (1, 3, 6, 7):
        add(8, receiver)
    # 3: G1to3 rooted at 4 -> {5, 6, 7}
    for receiver in (5, 6, 7):
        add(4, receiver)
    return acg


def figure2_example_graph(volume_bits: int = 1) -> ApplicationGraph:
    """The small walk-through input graph of Figure 2.

    The figure itself is not machine-readable; the reconstruction uses a
    4-node gossip clique plus one extra fan-out edge, which exhibits the same
    three decomposition branches discussed in the text (gossip-first,
    loop-first, broadcast-first).
    """
    acg = ApplicationGraph(name="figure2_example")
    for node in range(1, 6):
        acg.add_node(node, exist_ok=True)
    for source in (1, 2, 3, 4):
        for target in (1, 2, 3, 4):
            if source != target:
                acg.add_communication(source, target, volume=volume_bits)
    acg.add_communication(1, 5, volume=volume_bits)
    return acg


def random_decomposable_acg(
    num_nodes: int = 12, seed: int = 0, volume_bits: int = 64
) -> ApplicationGraph:
    """A larger random ACG guaranteed to contain library primitives."""
    return planted_primitive_acg(
        num_nodes=num_nodes,
        num_gossip=1,
        num_broadcast=3,
        num_loops=1,
        noise_edges=2,
        volume_bits=volume_bits,
        seed=seed,
        name=f"decomposable_{num_nodes}_{seed}",
    )
