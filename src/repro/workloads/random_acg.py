"""Curated random ACGs used by the illustrative experiments.

The Figure-5 example of the paper shows a randomly generated 8-node ACG
whose communication patterns "are not easily detectable by eye inspection"
yet decompose into one MGG-4, three one-to-three broadcasts and one
one-to-four broadcast with no remainder.  :func:`figure5_example_acg`
reconstructs an ACG with exactly that primitive content (the paper does not
publish the exact adjacency, so the instance is rebuilt from its published
decomposition); :func:`figure2_example_graph` reconstructs the 4/5-node
walk-through graph of Figure 2.

:func:`degree_sequence_acg` and :func:`scale_free_acg` generate random ACGs
with a *controlled out-degree sequence* (cf. the scale-free degree-sequence
literature): the sequence itself is deterministic and only the wiring uses
the mandatory explicit ``seed``, so two processes given the same arguments
always produce byte-identical graphs — a requirement for the stable
content-hash cache keys of the batch design-space exploration.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.graph import ApplicationGraph
from repro.exceptions import WorkloadError
from repro.workloads.pajek import planted_primitive_acg


def figure5_example_acg(volume_bits: int = 64) -> ApplicationGraph:
    """An 8-node ACG that decomposes into 1x MGG4 + 3x G1to3 + 1x G1to4.

    The construction mirrors the decomposition listing printed in
    Section 5.1: a gossip clique over nodes {1, 2, 5, 6}, broadcast stars
    rooted at 3, 7 and 4, and a broadcast from node 8 to four receivers.
    All planted patterns overlap on shared nodes, which is what makes the
    pattern hard to spot by eye in the paper's figure.
    """
    acg = ApplicationGraph(name="figure5_example")
    for node in range(1, 9):
        acg.add_node(node, exist_ok=True)

    def add(source: int, target: int) -> None:
        if not acg.has_edge(source, target):
            acg.add_communication(source, target, volume=volume_bits)

    # 1: MGG4 over {1, 2, 5, 6}
    for source in (1, 2, 5, 6):
        for target in (1, 2, 5, 6):
            if source != target:
                add(source, target)
    # 3: G1to3 rooted at 3 -> {2, 5, 6}
    for receiver in (2, 5, 6):
        add(3, receiver)
    # 3: G1to3 rooted at 7 -> {3, 5, 6}
    for receiver in (3, 5, 6):
        add(7, receiver)
    # 2: G1to4 rooted at 8 -> {1, 3, 6, 7}
    for receiver in (1, 3, 6, 7):
        add(8, receiver)
    # 3: G1to3 rooted at 4 -> {5, 6, 7}
    for receiver in (5, 6, 7):
        add(4, receiver)
    return acg


def figure2_example_graph(volume_bits: int = 1) -> ApplicationGraph:
    """The small walk-through input graph of Figure 2.

    The figure itself is not machine-readable; the reconstruction uses a
    4-node gossip clique plus one extra fan-out edge, which exhibits the same
    three decomposition branches discussed in the text (gossip-first,
    loop-first, broadcast-first).
    """
    acg = ApplicationGraph(name="figure2_example")
    for node in range(1, 6):
        acg.add_node(node, exist_ok=True)
    for source in (1, 2, 3, 4):
        for target in (1, 2, 3, 4):
            if source != target:
                acg.add_communication(source, target, volume=volume_bits)
    acg.add_communication(1, 5, volume=volume_bits)
    return acg


def random_decomposable_acg(
    num_nodes: int = 12, seed: int = 0, volume_bits: int = 64
) -> ApplicationGraph:
    """A larger random ACG guaranteed to contain library primitives."""
    return planted_primitive_acg(
        num_nodes=num_nodes,
        num_gossip=1,
        num_broadcast=3,
        num_loops=1,
        noise_edges=2,
        volume_bits=volume_bits,
        seed=seed,
        name=f"decomposable_{num_nodes}_{seed}",
    )


def degree_sequence_acg(
    out_degrees: Sequence[int],
    *,
    seed: int,
    min_volume_bits: int = 32,
    max_volume_bits: int = 256,
    name: str | None = None,
) -> ApplicationGraph:
    """Random directed ACG with exactly the given out-degree sequence.

    Node ``i`` (1-based) gets ``out_degrees[i-1]`` distinct non-self targets
    chosen uniformly at random; edge volumes are uniform in the given range.
    ``seed`` is keyword-only and has **no default**: the DSE result cache
    keys runs by content, so every call site must state its seed explicitly
    instead of silently sharing a default-seeded generator.
    """
    num_nodes = len(out_degrees)
    if num_nodes < 2:
        raise WorkloadError("a degree-sequence ACG needs at least two nodes")
    if any(degree < 0 for degree in out_degrees):
        raise WorkloadError("out-degrees must be non-negative")
    if max(out_degrees) > num_nodes - 1:
        raise WorkloadError("an out-degree exceeds the number of possible targets")
    if min_volume_bits <= 0 or max_volume_bits < min_volume_bits:
        raise WorkloadError("invalid volume range")
    rng = random.Random(seed)
    acg = ApplicationGraph(name=name or f"degseq_{num_nodes}_{seed}")
    nodes = list(range(1, num_nodes + 1))
    for node in nodes:
        acg.add_node(node, exist_ok=True)
    for node, degree in zip(nodes, out_degrees):
        candidates = [target for target in nodes if target != node]
        for target in rng.sample(candidates, degree):
            acg.add_communication(
                node, target, volume=rng.randint(min_volume_bits, max_volume_bits)
            )
    return acg


def power_law_out_degrees(
    num_nodes: int, exponent: float = 2.0, max_out_degree: int | None = None
) -> list[int]:
    """A deterministic power-law-shaped out-degree sequence.

    Degrees follow the inverse-CDF of ``P(k) ~ k^-exponent`` sampled at the
    rank quantiles, which gives the few-hubs-many-leaves shape of scale-free
    communication graphs without any randomness (the randomness lives only
    in the wiring, keyed by the explicit seed of :func:`degree_sequence_acg`).
    """
    if num_nodes < 2:
        raise WorkloadError("a degree sequence needs at least two nodes")
    if exponent <= 1.0:
        raise WorkloadError("the power-law exponent must exceed 1")
    cap = max_out_degree if max_out_degree is not None else num_nodes - 1
    cap = min(cap, num_nodes - 1)
    if cap < 1:
        raise WorkloadError("max_out_degree must allow at least one edge")
    degrees = []
    for rank in range(1, num_nodes + 1):
        # rank 1 is the biggest hub; the tail flattens to degree 1
        degree = round(cap * rank ** (-1.0 / (exponent - 1.0)))
        degrees.append(max(1, min(cap, degree)))
    return degrees


def scale_free_acg(
    num_nodes: int,
    *,
    seed: int,
    exponent: float = 2.0,
    max_out_degree: int | None = None,
    min_volume_bits: int = 32,
    max_volume_bits: int = 256,
    name: str | None = None,
) -> ApplicationGraph:
    """Random ACG with a power-law (scale-free) out-degree sequence."""
    degrees = power_law_out_degrees(
        num_nodes, exponent=exponent, max_out_degree=max_out_degree
    )
    return degree_sequence_acg(
        degrees,
        seed=seed,
        min_volume_bits=min_volume_bits,
        max_volume_bits=max_volume_bits,
        name=name or f"scalefree_{num_nodes}_{seed}",
    )
