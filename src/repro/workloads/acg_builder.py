"""Helpers that turn task graphs / traffic tables into floorplanned ACGs.

The decomposition algorithm expects three things (Section 4): the ACG with
volumes and bandwidths, and the core coordinates from an initial area-driven
floorplan.  These helpers bundle the conversion steps so examples and
experiments can go from a workload description to a ready-to-decompose ACG
in one call.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

from repro.core.graph import ApplicationGraph
from repro.exceptions import WorkloadError
from repro.floorplan.core_spec import CoreSpec, uniform_cores
from repro.floorplan.placement import Floorplan, grid_floorplan
from repro.workloads.tgff import TaskGraph

NodeId = Hashable


def acg_from_traffic_table(
    traffic: Mapping[tuple[NodeId, NodeId], float],
    name: str = "",
    bandwidth_fraction: float = 0.0,
    core_size_mm: float = 2.0,
    floorplanned: bool = True,
) -> ApplicationGraph:
    """ACG from a ``{(src, dst): volume}`` table, optionally grid-floorplanned."""
    acg = ApplicationGraph.from_traffic(
        traffic, name=name, bandwidth_fraction=bandwidth_fraction
    )
    if floorplanned:
        attach_grid_floorplan(acg, core_size_mm=core_size_mm)
    return acg


def acg_from_task_graph(
    task_graph: TaskGraph,
    bandwidth_fraction: float = 0.0,
    core_size_mm: float = 2.0,
    floorplanned: bool = True,
) -> ApplicationGraph:
    """ACG from a TGFF-style task graph (identity task-to-core mapping)."""
    acg = task_graph.to_acg(bandwidth_fraction=bandwidth_fraction)
    if floorplanned:
        attach_grid_floorplan(acg, core_size_mm=core_size_mm)
    return acg


def attach_grid_floorplan(
    acg: ApplicationGraph, core_size_mm: float = 2.0, columns: int | None = None
) -> Floorplan:
    """Place the ACG's cores on an area-driven grid and record the positions."""
    if acg.num_nodes == 0:
        raise WorkloadError("cannot floorplan an empty ACG")
    cores: list[CoreSpec] = uniform_cores(acg.nodes(), size_mm=core_size_mm)
    floorplan = grid_floorplan(cores, columns=columns)
    floorplan.apply_to(acg)
    return floorplan


def set_uniform_bandwidth(acg: ApplicationGraph, bits_per_cycle: float) -> None:
    """Assign the same bandwidth requirement to every ACG edge."""
    if bits_per_cycle < 0:
        raise WorkloadError("bandwidth must be non-negative")
    for source, target in acg.edges():
        acg.edge_attributes(source, target)["bandwidth"] = bits_per_cycle
