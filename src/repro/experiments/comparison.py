"""Prototype-style comparison: customized architecture vs. standard mesh.

Section 5.2 of the paper prototypes both architectures on a Virtex-2 FPGA
and reports, for encrypting 128-bit blocks at 100 MHz:

===============================  ========  ==========  =========
metric                           mesh      customized  change
===============================  ========  ==========  =========
cycles per block                 271       199         -27%
throughput (Mbps)                47.2      64.3        +36%
average packet latency (cycles)  11.5      9.6         -17%
average power                    (ref)     -33%
energy per block (uJ)            5.1       2.5         -51%
===============================  ========  ==========  =========

Our measurement substrate is the cycle-based simulator plus the analytic
energy model instead of an FPGA + XPower, so absolute values differ; the
reproduction criterion is the *shape*: the customized architecture must win
on every metric by comparable factors.  Both architectures are simulated
with the same router model, the same flit width, the same technology point
and the same dependency-aware AES traffic (the phases traced by
:class:`repro.aes.distributed.DistributedAES`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.arch.families import build_fabric, pad_node_ids
from repro.core.synthesis import SynthesizedArchitecture
from repro.dse.pipeline import (
    AES_BLOCK_SIZE_BITS,
    ArchitectureMetrics,
    simulate_aes_traffic,
)
from repro.energy.technology import FPGA_VIRTEX2, Technology
from repro.experiments.aes_experiment import AesSynthesisResult, run_aes_synthesis
from repro.experiments.reporting import format_table, percentage_change
from repro.noc.simulator import SimulatorConfig
from repro.routing.policies import get_policy

#: paper-reported reference numbers (Section 5.2)
PAPER_RESULTS = {
    "mesh": {
        "cycles_per_block": 271.0,
        "throughput_mbps": 47.2,
        "average_latency_cycles": 11.5,
        "energy_per_block_uj": 5.1,
    },
    "custom": {
        "cycles_per_block": 199.0,
        "throughput_mbps": 64.3,
        "average_latency_cycles": 9.6,
        "energy_per_block_uj": 2.5,
    },
}

BLOCK_SIZE_BITS = AES_BLOCK_SIZE_BITS

#: router pipeline depth used for the prototype-style comparison.  The
#: paper's FPGA routers are multi-stage (buffer write, route computation /
#: arbitration, crossbar traversal); two cycles per hop plus one cycle of
#: link serialization puts the simulated mesh at the paper's operating point
#: (~270 cycles per AES block, ~double-digit packet latencies).
DEFAULT_PIPELINE_DELAY_CYCLES = 2

#: cycles of local computation (SubBytes / MixColumns / AddRoundKey
#: arithmetic on the byte-slice nodes) charged after every communication
#: phase.  Identical for both architectures — it models the part of the
#: paper's cycles/block that is computation rather than communication.
DEFAULT_COMPUTATION_CYCLES_PER_PHASE = 4


def default_simulator_config() -> SimulatorConfig:
    """Simulator configuration used by the prototype comparison."""
    return SimulatorConfig(router_pipeline_delay_cycles=DEFAULT_PIPELINE_DELAY_CYCLES)


__all__ = [
    "PAPER_RESULTS",
    "ArchitectureMetrics",
    "PrototypeComparison",
    "default_simulator_config",
    "evaluate_fabric",
    "evaluate_mesh",
    "evaluate_custom",
    "run_prototype_comparison",
]


@dataclass
class PrototypeComparison:
    """Mesh vs. customized architecture under identical AES traffic."""

    mesh: ArchitectureMetrics
    custom: ArchitectureMetrics
    technology: Technology

    # -- paper-style deltas ------------------------------------------------
    @property
    def throughput_increase_percent(self) -> float:
        return percentage_change(self.mesh.throughput_mbps, self.custom.throughput_mbps)

    @property
    def cycles_reduction_percent(self) -> float:
        return -percentage_change(self.mesh.cycles_per_block, self.custom.cycles_per_block)

    @property
    def latency_reduction_percent(self) -> float:
        return -percentage_change(
            self.mesh.average_latency_cycles, self.custom.average_latency_cycles
        )

    @property
    def power_reduction_percent(self) -> float:
        return -percentage_change(self.mesh.average_power_mw, self.custom.average_power_mw)

    @property
    def energy_reduction_percent(self) -> float:
        return -percentage_change(
            self.mesh.energy_per_block_uj, self.custom.energy_per_block_uj
        )

    @property
    def custom_wins_everywhere(self) -> bool:
        return (
            self.custom.cycles_per_block < self.mesh.cycles_per_block
            and self.custom.average_latency_cycles < self.mesh.average_latency_cycles
            and self.custom.energy_per_block_uj < self.mesh.energy_per_block_uj
        )

    def to_rows(self) -> list[dict[str, object]]:
        return [self.mesh.as_dict(), self.custom.as_dict()]

    def describe(self) -> str:
        rows = self.to_rows()
        lines = [
            format_table(rows, title="Prototype comparison (simulated)"),
            "",
            f"throughput increase : {self.throughput_increase_percent:+.1f}%  (paper: +36%)",
            f"cycles/block change : {-self.cycles_reduction_percent:+.1f}%  (paper: -27%)",
            f"latency change      : {-self.latency_reduction_percent:+.1f}%  (paper: -17%)",
            f"avg power change    : {-self.power_reduction_percent:+.1f}%  (paper: -33%)",
            f"energy/block change : {-self.energy_reduction_percent:+.1f}%  (paper: -51%)",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# measurement helpers (the actual simulation lives in repro.dse.pipeline,
# the shared evaluation pipeline this comparison now runs on)
# ----------------------------------------------------------------------
def evaluate_fabric(
    family: str = "mesh",
    routing_policy: str = "xy",
    blocks: int = 4,
    technology: Technology = FPGA_VIRTEX2,
    tile_pitch_mm: float = 2.0,
    simulator_config: SimulatorConfig | None = None,
    computation_cycles_per_phase: int = DEFAULT_COMPUTATION_CYCLES_PER_PHASE,
) -> ArchitectureMetrics:
    """Simulate a 16-core standard fabric of the named family under AES traffic.

    The comparison's standard side generalized beyond the 4x4 mesh: any
    registered :mod:`repro.arch.families` family routed by any compatible
    :mod:`repro.routing.policies` policy (the policy registry raises
    :class:`~repro.exceptions.RoutingError` for unsupported pairs).
    """
    node_ids = pad_node_ids(family, range(1, 17))
    fabric = build_fabric(family, node_ids, tile_pitch_mm=tile_pitch_mm)
    table = get_policy(routing_policy).build(fabric)
    config = simulator_config or default_simulator_config()
    return simulate_aes_traffic(
        fabric.name,
        fabric,
        table.frozen_next_hop(),
        blocks,
        technology,
        config,
        computation_cycles_per_phase=computation_cycles_per_phase,
    )


def evaluate_mesh(
    blocks: int = 4,
    technology: Technology = FPGA_VIRTEX2,
    tile_pitch_mm: float = 2.0,
    simulator_config: SimulatorConfig | None = None,
    computation_cycles_per_phase: int = DEFAULT_COMPUTATION_CYCLES_PER_PHASE,
) -> ArchitectureMetrics:
    """Simulate the 4x4 mesh baseline (XY routing) under AES traffic."""
    return evaluate_fabric(
        family="mesh",
        routing_policy="xy",
        blocks=blocks,
        technology=technology,
        tile_pitch_mm=tile_pitch_mm,
        simulator_config=simulator_config,
        computation_cycles_per_phase=computation_cycles_per_phase,
    )


def evaluate_custom(
    architecture: SynthesizedArchitecture,
    blocks: int = 4,
    technology: Technology = FPGA_VIRTEX2,
    simulator_config: SimulatorConfig | None = None,
    computation_cycles_per_phase: int = DEFAULT_COMPUTATION_CYCLES_PER_PHASE,
) -> ArchitectureMetrics:
    """Simulate the synthesized customized architecture under AES traffic."""
    table = architecture.routing_table
    config = simulator_config or default_simulator_config()
    return simulate_aes_traffic(
        architecture.topology.name,
        architecture.topology,
        table.frozen_next_hop(),
        blocks,
        technology,
        config,
        computation_cycles_per_phase=computation_cycles_per_phase,
    )


def export_comparison_topologies(
    out_dir: str | Path,
    synthesis: AesSynthesisResult | None = None,
    fmt: str = "dot",
    tile_pitch_mm: float = 2.0,
) -> dict[str, Path]:
    """Write both Section-5.2 fabrics (mesh baseline and custom) to files.

    The files go through the :mod:`repro.io` format registry, so any
    registered interchange format works; the default DOT renders the
    figure-style topology pair directly with Graphviz.  Returns the
    written paths keyed by architecture name.
    """
    from repro.io import get_format, write_topology

    synthesis = synthesis or run_aes_synthesis()
    extension = get_format(fmt).extensions[0]
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    mesh = build_fabric("mesh", pad_node_ids("mesh", range(1, 17)),
                        tile_pitch_mm=tile_pitch_mm)
    paths = {
        "mesh": directory / f"mesh{extension}",
        "custom": directory / f"custom{extension}",
    }
    write_topology(mesh, paths["mesh"], fmt=fmt)
    write_topology(synthesis.architecture.topology, paths["custom"], fmt=fmt)
    return paths


def run_prototype_comparison(
    blocks: int = 4,
    technology: Technology = FPGA_VIRTEX2,
    synthesis: AesSynthesisResult | None = None,
    simulator_config: SimulatorConfig | None = None,
    computation_cycles_per_phase: int = DEFAULT_COMPUTATION_CYCLES_PER_PHASE,
) -> PrototypeComparison:
    """The full Section-5.2 comparison: synthesize, then simulate both designs."""
    synthesis = synthesis or run_aes_synthesis()
    mesh_metrics = evaluate_mesh(
        blocks=blocks,
        technology=technology,
        simulator_config=simulator_config,
        computation_cycles_per_phase=computation_cycles_per_phase,
    )
    custom_metrics = evaluate_custom(
        synthesis.architecture,
        blocks=blocks,
        technology=technology,
        simulator_config=simulator_config,
        computation_cycles_per_phase=computation_cycles_per_phase,
    )
    return PrototypeComparison(mesh=mesh_metrics, custom=custom_metrics, technology=technology)
