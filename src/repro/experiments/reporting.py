"""Small reporting helpers shared by the experiment drivers and benchmarks.

The benchmarks print the same rows/series the paper reports; these helpers
keep that formatting in one place (aligned text tables, percentage changes,
and simple CSV export for post-processing).
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Mapping, Sequence
from io import StringIO
from pathlib import Path


def _union_columns(rows: Sequence[Mapping[str, object]]) -> list[str]:
    """Every key that appears in any row, in first-appearance order.

    Heterogeneous rows (e.g. mesh vs. custom evaluation records, where only
    one carries decomposition statistics) must not silently lose the columns
    absent from the first row.
    """
    columns: dict[str, None] = {}
    for row in rows:
        for key in row:
            columns.setdefault(key, None)
    return list(columns)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Render a list of dict rows as an aligned text table.

    Columns default to the union of all rows' keys (missing values render
    blank), so rows with different key sets tabulate cleanly.
    """
    if not rows:
        return title or "(empty table)"
    if columns is None:
        columns = _union_columns(rows)

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def percentage_change(baseline: float, value: float) -> float:
    """Signed percentage change of ``value`` relative to ``baseline``.

    Positive means ``value`` is larger than the baseline (e.g. +36% throughput),
    negative means a reduction (e.g. -51% energy).
    """
    if baseline == 0:
        raise ValueError("percentage change is undefined for a zero baseline")
    return 100.0 * (value - baseline) / baseline


def improvement_factor(baseline: float, value: float) -> float:
    """``baseline / value`` — how many times smaller ``value`` is."""
    if value == 0:
        raise ValueError("improvement factor is undefined for a zero value")
    return baseline / value


def rows_to_csv(rows: Sequence[Mapping[str, object]], path: str | Path | None = None) -> str:
    """Serialize rows as CSV; optionally also write them to ``path``.

    Like :func:`format_table`, the header is the union of all rows' keys so
    heterogeneous rows neither crash the writer nor drop columns.
    """
    if not rows:
        return ""
    columns = _union_columns(rows)
    buffer = StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def format_series(
    points: Iterable[tuple[object, float]], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an (x, y) series as the two-column listing used for 'figures'."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, columns=[x_label, y_label])
