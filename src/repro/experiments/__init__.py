"""Experiment drivers: one module per figure/table of the paper's evaluation,
plus the ablations called out in DESIGN.md."""

from repro.experiments.ablation import (
    AblationResult,
    run_library_ablation,
    run_strategy_ablation,
    standard_ablation_acgs,
)
from repro.experiments.aes_experiment import (
    PAPER_AES_COST,
    PAPER_AES_PRIMITIVES,
    AesSynthesisResult,
    run_aes_synthesis,
)
from repro.experiments.comparison import (
    PAPER_RESULTS,
    ArchitectureMetrics,
    PrototypeComparison,
    evaluate_custom,
    evaluate_fabric,
    evaluate_mesh,
    export_comparison_topologies,
    run_prototype_comparison,
)
from repro.experiments.example_decomposition import (
    EXPECTED_PRIMITIVE_COUNTS,
    Figure5Result,
    run_figure5_example,
)
from repro.experiments.reporting import (
    format_series,
    format_table,
    improvement_factor,
    percentage_change,
    rows_to_csv,
)
from repro.experiments.runtime_sweep import (
    RuntimePoint,
    RuntimeSweepResult,
    run_pajek_runtime_sweep,
    run_tgff_runtime_sweep,
)

__all__ = [
    "run_tgff_runtime_sweep",
    "run_pajek_runtime_sweep",
    "RuntimePoint",
    "RuntimeSweepResult",
    "run_figure5_example",
    "Figure5Result",
    "EXPECTED_PRIMITIVE_COUNTS",
    "run_aes_synthesis",
    "AesSynthesisResult",
    "PAPER_AES_COST",
    "PAPER_AES_PRIMITIVES",
    "run_prototype_comparison",
    "export_comparison_topologies",
    "evaluate_fabric",
    "evaluate_mesh",
    "evaluate_custom",
    "PrototypeComparison",
    "ArchitectureMetrics",
    "PAPER_RESULTS",
    "run_strategy_ablation",
    "run_library_ablation",
    "standard_ablation_acgs",
    "AblationResult",
    "format_table",
    "format_series",
    "rows_to_csv",
    "percentage_change",
    "improvement_factor",
]
