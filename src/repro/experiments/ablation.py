"""Ablation studies for the design choices called out in DESIGN.md.

Two questions the paper leaves implicit are answered quantitatively here:

1. **What does the branch-and-bound search buy over a greedy first-fit
   cover?**  (Section 4.4 motivates the bound; the ablation measures the
   cost gap and the run-time price on a set of ACGs.)
2. **How sensitive is the result to the library content?**  (Section 3
   argues for small primitives with efficient 2-D implementations; the
   ablation decomposes the same ACGs with a minimal, the default and an
   extended library.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.cost import CostModel, LinkCountCostModel
from repro.core.decomposition import (
    DecompositionConfig,
    SearchStrategy,
    decompose,
)
from repro.core.graph import ApplicationGraph
from repro.core.library import (
    CommunicationLibrary,
    default_library,
    extended_library,
    minimal_library,
)
from repro.experiments.reporting import format_table
from repro.aes.acg import build_aes_acg
from repro.workloads.random_acg import figure5_example_acg, random_decomposable_acg


#: explicit seed for the random ablation ACG — threaded (never defaulted) so
#: the ablation inputs are bit-identical across processes and sessions
STANDARD_ABLATION_SEED = 3


def standard_ablation_acgs(seed: int = STANDARD_ABLATION_SEED) -> list[ApplicationGraph]:
    """The ACGs every ablation runs on: AES, the Figure-5 example, one random."""
    return [
        build_aes_acg(),
        figure5_example_acg(),
        random_decomposable_acg(num_nodes=10, seed=seed),
    ]


@dataclass(frozen=True)
class AblationRow:
    """One (ACG, configuration) measurement."""

    acg_name: str
    configuration: str
    total_cost: float
    num_matchings: int
    remainder_edges: int
    covered_fraction: float
    runtime_seconds: float

    def as_dict(self) -> dict[str, object]:
        return {
            "acg": self.acg_name,
            "configuration": self.configuration,
            "cost": self.total_cost,
            "matchings": self.num_matchings,
            "remainder_edges": self.remainder_edges,
            "covered_fraction": self.covered_fraction,
            "runtime_s": self.runtime_seconds,
        }


@dataclass
class AblationResult:
    rows: list[AblationRow] = field(default_factory=list)

    def to_rows(self) -> list[dict[str, object]]:
        return [row.as_dict() for row in self.rows]

    def describe(self, title: str) -> str:
        return format_table(self.to_rows(), title=title)

    def rows_for(self, acg_name: str) -> list[AblationRow]:
        return [row for row in self.rows if row.acg_name == acg_name]

    def cost_of(self, acg_name: str, configuration: str) -> float:
        for row in self.rows:
            if row.acg_name == acg_name and row.configuration == configuration:
                return row.total_cost
        raise KeyError(f"no ablation row for ({acg_name!r}, {configuration!r})")


def _measure(
    acg: ApplicationGraph,
    library: CommunicationLibrary,
    configuration: str,
    strategy: SearchStrategy,
    cost_model: CostModel,
    timeout_seconds: float,
) -> AblationRow:
    config = DecompositionConfig(
        strategy=strategy,
        max_matchings_per_primitive=4,
        total_timeout_seconds=timeout_seconds,
    )
    start = time.perf_counter()
    result = decompose(acg, library, cost_model=cost_model, config=config)
    runtime = time.perf_counter() - start
    return AblationRow(
        acg_name=acg.name,
        configuration=configuration,
        total_cost=result.total_cost,
        num_matchings=result.num_matchings,
        remainder_edges=result.remainder.num_edges,
        covered_fraction=result.covered_edge_fraction(),
        runtime_seconds=runtime,
    )


def run_strategy_ablation(
    acgs: Sequence[ApplicationGraph] | None = None,
    timeout_seconds: float = 30.0,
) -> AblationResult:
    """Branch-and-bound vs. greedy first-fit on the same library and cost model."""
    acgs = list(acgs) if acgs is not None else standard_ablation_acgs()
    library = default_library()
    result = AblationResult()
    for acg in acgs:
        result.rows.append(
            _measure(
                acg,
                library,
                "branch_and_bound",
                SearchStrategy.BRANCH_AND_BOUND,
                LinkCountCostModel(),
                timeout_seconds,
            )
        )
        result.rows.append(
            _measure(
                acg,
                library,
                "greedy",
                SearchStrategy.GREEDY,
                LinkCountCostModel(),
                timeout_seconds,
            )
        )
    return result


def run_library_ablation(
    acgs: Sequence[ApplicationGraph] | None = None,
    timeout_seconds: float = 30.0,
) -> AblationResult:
    """Minimal vs. default vs. extended library content on the same ACGs."""
    acgs = list(acgs) if acgs is not None else standard_ablation_acgs()
    libraries = {
        "minimal_library": minimal_library(),
        "default_library": default_library(),
        "extended_library": extended_library(),
    }
    result = AblationResult()
    for acg in acgs:
        for label, library in libraries.items():
            result.rows.append(
                _measure(
                    acg,
                    library,
                    label,
                    SearchStrategy.BRANCH_AND_BOUND,
                    LinkCountCostModel(),
                    timeout_seconds,
                )
            )
    return result
