"""Decomposition run-time sweeps (Figure 4 of the paper).

Figure 4a plots the run time of the decomposition algorithm over TGFF-style
task graphs (largest: an 18-node automotive benchmark, 0.3 s in the authors'
Matlab/C++ setup); Figure 4b plots the average run time over more than sixty
Pajek-generated random graphs of 10-40 nodes (under 3 minutes at 40 nodes).

Absolute run times obviously depend on the host and on the pure-Python VF2
implementation, so the reproduction criterion is the *shape*: run time grows
superlinearly with graph size, small task graphs finish in fractions of a
second, and the largest random graphs remain tractable (seconds to minutes).

Sweeps run serially by default.  Passing ``parallel=True`` dispatches one
decomposition per worker process with :mod:`multiprocessing` (via
``concurrent.futures``) so the Figure-4 sweeps scale with cores; every run is
independent, so the resulting points are identical to a serial sweep up to
wall-clock jitter.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from statistics import mean
from collections.abc import Iterable, Sequence

from repro.core.cost import CostModel, LinkCountCostModel
from repro.core.decomposition import DecompositionConfig, DecompositionResult, decompose
from repro.core.graph import ApplicationGraph
from repro.core.library import CommunicationLibrary, default_library
from repro.experiments.reporting import format_table
from repro.workloads.pajek import pajek_benchmark_suite
from repro.workloads.tgff import tgff_benchmark_suite


@dataclass(frozen=True)
class RuntimePoint:
    """One decomposition run: graph size vs. wall-clock time."""

    name: str
    num_nodes: int
    num_edges: int
    runtime_seconds: float
    total_cost: float
    num_matchings: int
    remainder_edges: int
    covered_fraction: float
    search_statistics: dict = field(default_factory=dict)
    """The decomposition's :class:`SearchStatistics` as a plain dict, so the
    benchmarks can report cache-hit and transposition counters per sweep."""

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "runtime_s": self.runtime_seconds,
            "cost": self.total_cost,
            "matchings": self.num_matchings,
            "remainder_edges": self.remainder_edges,
            "covered_fraction": self.covered_fraction,
        }


@dataclass
class RuntimeSweepResult:
    """All runs of one sweep plus aggregation helpers."""

    points: list[RuntimePoint] = field(default_factory=list)

    def by_size(self) -> dict[int, list[RuntimePoint]]:
        grouped: dict[int, list[RuntimePoint]] = {}
        for point in self.points:
            grouped.setdefault(point.num_nodes, []).append(point)
        return grouped

    def average_runtime_by_size(self) -> list[tuple[int, float]]:
        """The Figure-4 series: (graph size, average run time)."""
        return [
            (size, mean(point.runtime_seconds for point in points))
            for size, points in sorted(self.by_size().items())
        ]

    def max_runtime(self) -> float:
        return max((point.runtime_seconds for point in self.points), default=0.0)

    def total_statistic(self, key: str) -> int:
        """Sum one :class:`SearchStatistics` counter over all points."""
        return int(sum(point.search_statistics.get(key, 0) for point in self.points))

    def cache_summary(self) -> dict[str, int]:
        """Aggregate cache/transposition counters for the whole sweep."""
        return {
            "matchings_tried": self.total_statistic("matchings_tried"),
            "matchings_enumerated": self.total_statistic("matchings_enumerated"),
            "matching_cache_hits": self.total_statistic("matching_cache_hits"),
            "matching_cache_misses": self.total_statistic("matching_cache_misses"),
            "transposition_hits": self.total_statistic("transposition_hits"),
        }

    def to_rows(self) -> list[dict[str, object]]:
        return [point.as_dict() for point in self.points]

    def describe(self, title: str) -> str:
        rows = [
            {"nodes": size, "avg_runtime_s": runtime, "instances": len(self.by_size()[size])}
            for size, runtime in self.average_runtime_by_size()
        ]
        return format_table(rows, title=title)


def _measure(
    acg: ApplicationGraph,
    library: CommunicationLibrary,
    cost_model: CostModel,
    config: DecompositionConfig,
) -> tuple[DecompositionResult, float]:
    start = time.perf_counter()
    result = decompose(acg, library, cost_model=cost_model, config=config)
    return result, time.perf_counter() - start


def _run_one_point(
    payload: tuple[str, ApplicationGraph, CommunicationLibrary, CostModel, DecompositionConfig],
) -> RuntimePoint:
    """Decompose one graph and package the measurement.

    Module-level (rather than a closure) so it can be pickled into
    :class:`~concurrent.futures.ProcessPoolExecutor` workers.
    """
    name, acg, library, cost_model, config = payload
    decomposition, runtime = _measure(acg, library, cost_model, config)
    return RuntimePoint(
        name=name,
        num_nodes=acg.num_nodes,
        num_edges=acg.num_edges,
        runtime_seconds=runtime,
        total_cost=decomposition.total_cost,
        num_matchings=decomposition.num_matchings,
        remainder_edges=decomposition.remainder.num_edges,
        covered_fraction=decomposition.covered_edge_fraction(),
        search_statistics=decomposition.statistics.as_dict(),
    )


def run_sweep(
    named_graphs: Iterable[tuple[str, ApplicationGraph]],
    library: CommunicationLibrary | None = None,
    cost_model: CostModel | None = None,
    config: DecompositionConfig | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
) -> RuntimeSweepResult:
    """Decompose every graph and collect one :class:`RuntimePoint` each.

    With ``parallel=True`` each decomposition runs in its own worker process
    (one graph per task); the points come back in input order either way, so
    serial and parallel sweeps produce identical results.
    """
    library = library or default_library()
    cost_model = cost_model or LinkCountCostModel()
    config = config or default_sweep_config()
    payloads = [(name, acg, library, cost_model, config) for name, acg in named_graphs]
    result = RuntimeSweepResult()
    if parallel and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            result.points.extend(pool.map(_run_one_point, payloads))
    else:
        result.points.extend(_run_one_point(payload) for payload in payloads)
    return result


def default_sweep_config(per_graph_timeout_seconds: float = 30.0) -> DecompositionConfig:
    """Search configuration used by the runtime sweeps.

    The per-graph timeout mirrors the paper's suggestion to bound the
    isomorphism search; graphs that exhaust it still return their best-found
    decomposition and are flagged as truncated in the statistics.  The node
    cap bounds the branch-and-bound work on large unstructured graphs while
    keeping the per-node cost (and therefore the size-dependent growth of the
    curve) intact.
    """
    return DecompositionConfig(
        max_matchings_per_primitive=3,
        isomorphism_timeout_seconds=2.0,
        total_timeout_seconds=per_graph_timeout_seconds,
        max_leaves=2000,
        max_nodes_expanded=400,
    )


def run_tgff_runtime_sweep(
    sizes: Sequence[int] = (5, 8, 10, 12, 15, 18),
    library: CommunicationLibrary | None = None,
    config: DecompositionConfig | None = None,
    seed: int = 7,
    parallel: bool = False,
    max_workers: int | None = None,
) -> RuntimeSweepResult:
    """Figure 4a: run time over TGFF-style task graphs up to the 18-node case."""
    named = [
        (task_graph.name, task_graph.to_acg())
        for task_graph in tgff_benchmark_suite(sizes=sizes, seed=seed)
    ]
    return run_sweep(
        named,
        library=library,
        cost_model=LinkCountCostModel(),
        config=config,
        parallel=parallel,
        max_workers=max_workers,
    )


def run_pajek_runtime_sweep(
    sizes: Sequence[int] = (10, 15, 20, 25, 30, 35, 40),
    instances_per_size: int = 3,
    edge_density: float = 0.12,
    library: CommunicationLibrary | None = None,
    config: DecompositionConfig | None = None,
    seed: int = 11,
    parallel: bool = False,
    max_workers: int | None = None,
) -> RuntimeSweepResult:
    """Figure 4b: average run time over Pajek-style random graphs (10-40 nodes)."""
    named = [
        (acg.name, acg)
        for acg in pajek_benchmark_suite(
            sizes=sizes,
            instances_per_size=instances_per_size,
            edge_density=edge_density,
            seed=seed,
        )
    ]
    return run_sweep(
        named,
        library=library,
        cost_model=LinkCountCostModel(),
        config=config,
        parallel=parallel,
        max_workers=max_workers,
    )
