"""The AES synthesis experiment of Section 5.2 (Figure 6 + decomposition listing).

The distributed AES application graph (Figure 6a) is decomposed and a
customized communication architecture (Figure 6b) is synthesized from the
result.  The paper reports the decomposition

    COST: 28
    1: MGG4   columns {1,5,9,13} {2,6,10,14} {3,7,11,15} {4,8,12,16}
    2: L4     rows 2 and 4
    0: Remaining Graph   (row 3 — the pairwise swaps of ShiftRows by two)

found in 0.58 s.  :func:`run_aes_synthesis` reproduces exactly that listing
(including the COST value under the wiring/link-count accounting) and
packages the synthesized architecture for the prototype-style comparison in
:mod:`repro.experiments.comparison`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.aes.acg import build_aes_acg
from repro.aes.distributed import column_nodes, row_nodes
from repro.core.cost import LinkCountCostModel
from repro.core.decomposition import DecompositionConfig, DecompositionResult, decompose
from repro.core.graph import ApplicationGraph
from repro.core.library import CommunicationLibrary, aes_library
from repro.core.synthesis import SynthesisOptions, SynthesizedArchitecture, synthesize_architecture

#: the paper's reported decomposition cost for the AES ACG
PAPER_AES_COST = 28
#: the paper's reported primitive usage: four column gossips and two row loops
PAPER_AES_PRIMITIVES = {"MGG4": 4, "L4": 2}
#: the paper's reported remainder: the four swap edges of state row 2 ("third row")
PAPER_AES_REMAINDER_EDGES = 4
#: the paper's reported decomposition run time on its Matlab/C++ setup
PAPER_AES_RUNTIME_SECONDS = 0.58


@dataclass
class AesSynthesisResult:
    """Decomposition + synthesized architecture for the AES application."""

    acg: ApplicationGraph
    decomposition: DecompositionResult
    architecture: SynthesizedArchitecture
    runtime_seconds: float

    # ------------------------------------------------------------------
    # paper-conformance checks
    # ------------------------------------------------------------------
    @property
    def primitive_counts(self) -> dict[str, int]:
        return self.decomposition.primitives_used()

    @property
    def matches_paper_primitives(self) -> bool:
        return self.primitive_counts == PAPER_AES_PRIMITIVES

    @property
    def matches_paper_cost(self) -> bool:
        return abs(self.decomposition.total_cost - PAPER_AES_COST) < 1e-9

    @property
    def matches_paper_remainder(self) -> bool:
        return self.decomposition.remainder.num_edges == PAPER_AES_REMAINDER_EDGES

    def gossip_column_sets(self) -> list[frozenset[int]]:
        """The node sets of the MGG4 matchings (should be the four state columns)."""
        return [
            frozenset(matching.cores())
            for matching in self.decomposition.matchings
            if matching.primitive.name == "MGG4"
        ]

    def loop_row_sets(self) -> list[frozenset[int]]:
        """The node sets of the L4 matchings (should be state rows 1 and 3)."""
        return [
            frozenset(matching.cores())
            for matching in self.decomposition.matchings
            if matching.primitive.name == "L4"
        ]

    @property
    def columns_mapped_to_gossip(self) -> bool:
        expected = {frozenset(column_nodes(column)) for column in range(4)}
        return set(self.gossip_column_sets()) == expected

    @property
    def shift_rows_mapped_to_loops(self) -> bool:
        expected = {frozenset(row_nodes(1)), frozenset(row_nodes(3))}
        return set(self.loop_row_sets()) == expected

    @property
    def matches_paper(self) -> bool:
        return (
            self.matches_paper_primitives
            and self.matches_paper_cost
            and self.matches_paper_remainder
            and self.columns_mapped_to_gossip
            and self.shift_rows_mapped_to_loops
        )

    def describe(self) -> str:
        lines = [
            "Section 5.2 — distributed AES decomposition and synthesis",
            f"decomposition runtime: {self.runtime_seconds:.3f} s "
            f"(paper: {PAPER_AES_RUNTIME_SECONDS} s on Matlab + C++ VF2)",
            self.decomposition.describe(),
            f"primitive counts: {self.primitive_counts} (paper: {PAPER_AES_PRIMITIVES})",
            f"cost: {self.decomposition.total_cost:g} (paper: {PAPER_AES_COST})",
            f"columns mapped to gossip graphs: {self.columns_mapped_to_gossip}",
            f"ShiftRows rows mapped to loops:  {self.shift_rows_mapped_to_loops}",
            f"matches the paper's listing: {self.matches_paper}",
            "",
            self.architecture.describe(),
        ]
        return "\n".join(lines)


def run_aes_synthesis(
    library: CommunicationLibrary | None = None,
    config: DecompositionConfig | None = None,
    blocks: int = 1,
    flit_width_bits: int = 32,
) -> AesSynthesisResult:
    """Decompose the AES ACG and synthesize the customized architecture."""
    library = library or aes_library()
    config = config or DecompositionConfig(
        max_matchings_per_primitive=4,
        total_timeout_seconds=60.0,
    )
    acg = build_aes_acg(blocks=blocks)
    start = time.perf_counter()
    decomposition = decompose(acg, library, cost_model=LinkCountCostModel(), config=config)
    runtime = time.perf_counter() - start
    architecture = synthesize_architecture(
        acg,
        decomposition,
        options=SynthesisOptions(flit_width_bits=flit_width_bits, bidirectional_links=True),
    )
    return AesSynthesisResult(
        acg=acg,
        decomposition=decomposition,
        architecture=architecture,
        runtime_seconds=runtime,
    )
