"""The illustrative decomposition of Section 5.1 / Figure 5.

The paper shows a randomly generated 8-node ACG whose communication patterns
"are not easily detectable by eye inspection", which the algorithm
decomposes in under 0.1 s into

    1: MGG4
    3: G1to3   (three instances)
    2: G1to4

with no remaining graph.  The exact adjacency of the paper's instance is not
published; :func:`run_figure5_example` therefore uses the reconstruction in
:func:`repro.workloads.random_acg.figure5_example_acg`, which contains
exactly that primitive content, and checks that the decomposition engine
recovers it (one gossip-4, three one-to-three broadcasts, one one-to-four
broadcast, empty remainder).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.cost import LinkCountCostModel
from repro.core.decomposition import DecompositionConfig, DecompositionResult, decompose
from repro.core.library import CommunicationLibrary, default_library
from repro.workloads.random_acg import figure5_example_acg

#: the primitive multiset the paper's listing reports for the Figure-5 example
EXPECTED_PRIMITIVE_COUNTS = {"MGG4": 1, "G1to3": 3, "G1to4": 1}


@dataclass
class Figure5Result:
    """Outcome of the Figure-5 illustrative decomposition."""

    decomposition: DecompositionResult
    runtime_seconds: float

    @property
    def primitive_counts(self) -> dict[str, int]:
        return self.decomposition.primitives_used()

    @property
    def matches_paper_listing(self) -> bool:
        """True when the primitive multiset and the empty remainder match the paper."""
        return (
            self.primitive_counts == EXPECTED_PRIMITIVE_COUNTS
            and self.decomposition.remainder.is_empty
        )

    def describe(self) -> str:
        lines = [
            "Figure 5 — illustrative decomposition of a random 8-node ACG",
            f"runtime: {self.runtime_seconds:.3f} s",
            self.decomposition.describe(),
            f"primitive counts: {self.primitive_counts}",
            f"matches paper listing (1x MGG4 + 3x G1to3 + 1x G1to4, no remainder): "
            f"{self.matches_paper_listing}",
        ]
        return "\n".join(lines)


def run_figure5_example(
    library: CommunicationLibrary | None = None,
    config: DecompositionConfig | None = None,
) -> Figure5Result:
    """Decompose the reconstructed Figure-5 ACG and time it."""
    library = library or default_library()
    config = config or DecompositionConfig(
        max_matchings_per_primitive=4,
        total_timeout_seconds=30.0,
    )
    acg = figure5_example_acg()
    start = time.perf_counter()
    decomposition = decompose(acg, library, cost_model=LinkCountCostModel(), config=config)
    runtime = time.perf_counter() - start
    return Figure5Result(decomposition=decomposition, runtime_seconds=runtime)
