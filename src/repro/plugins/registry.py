"""The generic registry kernel every named extension point is built on.

A :class:`Registry` is a typed name -> object mapping with three
behaviours that used to be hand-rolled (slightly differently) in
``repro.arch.families``, ``repro.routing.policies`` and
``repro.dse.scenarios``:

* **uniform errors** — an unknown name always raises
  :class:`~repro.exceptions.UnknownPluginError` listing the sorted
  available names plus a nearest-match suggestion, whatever the registry;
* **lazy third-party discovery** — a lookup miss (and every ``names()``
  listing) first loads the ``repro.plugins`` entry-point group
  (:mod:`repro.plugins.discovery`), so families, policies, traffic modes
  and scoring functions shipped by external packages appear without any
  edit inside ``repro.*``;
* **provenance** — objects registered while a plugin is loading are
  tagged with the distribution that provided them, so listings can say
  where a name came from.

The kernel deliberately knows nothing about what it stores: the value
type is a free type parameter and callers keep their existing
``register_*`` / ``get_*`` wrapper functions as the stable API.
"""

from __future__ import annotations

import difflib
from collections.abc import Callable, Iterator
from typing import Generic, TypeVar

from repro.exceptions import PluginError, UnknownPluginError

T = TypeVar("T")

#: provenance label for objects registered by repro itself
BUILTIN_PROVIDER = "builtin"


class Registry(Generic[T]):
    """A typed name -> object registry with uniform errors and discovery.

    ``kind`` is the human-readable singular used in error messages and
    listings (``"topology family"``, ``"routing policy"``, ...).
    Registering an existing name replaces it (last registration wins),
    which is what lets a test or a plugin shadow a built-in deliberately.
    """

    #: all live registries, newest last — what discovery and the
    #: ``list-plugins`` style reporting iterate over
    _instances: list["Registry"] = []

    def __init__(
        self,
        kind: str,
        *,
        discover: bool = True,
    ) -> None:
        self.kind = kind
        self._items: dict[str, T] = {}
        self._providers: dict[str, str] = {}
        self._discover_enabled = discover
        Registry._instances.append(self)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name: str, obj: T) -> T:
        """Register (or replace) ``obj`` under ``name``; returns ``obj``."""
        if not isinstance(name, str) or not name:
            raise PluginError(f"a {self.kind} name must be a non-empty string, got {name!r}")
        self._items[name] = obj
        self._providers[name] = _current_provider()
        return obj

    def decorate(self, name: str) -> Callable[[T], T]:
        """Decorator form of :meth:`register`: ``@registry.decorate("name")``."""

        def _register(obj: T) -> T:
            return self.register(name, obj)

        return _register

    def unregister(self, name: str) -> T:
        """Remove and return the object registered under ``name``."""
        if name not in self._items:
            raise self.unknown(name)
        self._providers.pop(name, None)
        return self._items.pop(name)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> T:
        """Look ``name`` up; on a miss, discover plugins once and retry.

        Raises :class:`~repro.exceptions.UnknownPluginError` (listing the
        available names and the closest match) when the name stays unknown
        after discovery.
        """
        try:
            return self._items[name]
        except KeyError:
            pass
        self._run_discovery()
        try:
            return self._items[name]
        except KeyError:
            raise self.unknown(name) from None

    def names(self) -> list[str]:
        """All registered names, sorted (after plugin discovery)."""
        self._run_discovery()
        return sorted(self._items)

    def items(self) -> dict[str, T]:
        """A name -> object snapshot, in sorted-name order (after discovery)."""
        self._run_discovery()
        return {name: self._items[name] for name in sorted(self._items)}

    def provider(self, name: str) -> str:
        """Which distribution registered ``name`` (``"builtin"`` for repro's own)."""
        if name not in self._items:
            raise self.unknown(name)
        return self._providers.get(name, BUILTIN_PROVIDER)

    def unknown(self, name: str) -> UnknownPluginError:
        """The uniform lookup error for ``name`` (available names + suggestion)."""
        available = sorted(self._items)
        matches = difflib.get_close_matches(str(name), available, n=1, cutoff=0.5)
        return UnknownPluginError(
            self.kind, name, available, suggestion=matches[0] if matches else None
        )

    def _run_discovery(self) -> None:
        if not self._discover_enabled:
            return
        # imported lazily: discovery pulls in importlib.metadata, which is
        # noticeably slower than this module and unneeded until a lookup
        from repro.plugins.discovery import discover

        discover()

    # ------------------------------------------------------------------
    # protocol sugar
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._items))

    def __repr__(self) -> str:
        return f"<Registry kind={self.kind!r} names={sorted(self._items)}>"

    @classmethod
    def all_registries(cls) -> list["Registry"]:
        """Every live registry, in creation order."""
        return list(cls._instances)


# ----------------------------------------------------------------------
# provider tagging (set by discovery while a plugin entry point loads)
# ----------------------------------------------------------------------
_PROVIDER_STACK: list[str] = []


def _current_provider() -> str:
    return _PROVIDER_STACK[-1] if _PROVIDER_STACK else BUILTIN_PROVIDER


class providing:
    """Context manager tagging registrations with a provider name.

    Used by :mod:`repro.plugins.discovery` around each entry point's load
    so that everything the plugin registers is attributed to its
    distribution; also handy in tests.
    """

    def __init__(self, provider: str) -> None:
        self.provider = provider

    def __enter__(self) -> "providing":
        _PROVIDER_STACK.append(self.provider)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _PROVIDER_STACK.pop()
