"""Plugin fabric: the registry kernel and entry-point discovery.

Every named extension point in repro — topology families, routing
policies, scenario suites, communication libraries, traffic modes,
scoring functions, interchange formats — is one :class:`Registry`
instance from this package.  The kernel gives them all the same
contract:

* ``register``/``get``/``names`` with **uniform unknown-name errors**
  (:class:`~repro.exceptions.UnknownPluginError`: sorted available names
  plus a nearest-match suggestion);
* **third-party discovery** through the ``repro.plugins`` entry-point
  group (:data:`ENTRY_POINT_GROUP`), loaded lazily on the first lookup
  miss or listing, so external packages extend sweeps without touching
  ``repro.*``;
* **provenance**: names registered by a plugin are tagged with the
  providing distribution.

See ``docs/plugins.md`` for the worked third-party example.
"""

from repro.plugins.discovery import (
    ENTRY_POINT_GROUP,
    PluginFailure,
    discover,
    discovered_plugins,
    plugin_failures,
    reset_discovery,
)
from repro.plugins.registry import BUILTIN_PROVIDER, Registry, providing

__all__ = [
    "Registry",
    "providing",
    "BUILTIN_PROVIDER",
    "ENTRY_POINT_GROUP",
    "PluginFailure",
    "discover",
    "discovered_plugins",
    "plugin_failures",
    "reset_discovery",
]
