"""Entry-point discovery: load third-party registrations exactly once.

External packages extend repro by declaring an entry point in the
``repro.plugins`` group::

    [project.entry-points."repro.plugins"]
    my_fabrics = "my_package.repro_plugin:register"

The target must be a callable taking no arguments (or a module, whose
import is its registration).  When any registry lookup misses — or any
``names()`` listing runs — :func:`discover` loads every entry point in
the group, so a family, policy, suite, traffic mode, scoring function or
interchange format registered by an installed package becomes sweepable
without touching ``repro.*``.

A broken plugin must not take the CLI down with it: load failures are
captured as :class:`PluginFailure` rows (queryable via
:func:`plugin_failures`) and reported as a :class:`UserWarning` once,
instead of raising.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from importlib import metadata

from repro.plugins.registry import providing

#: the one entry-point group every extension registers through
ENTRY_POINT_GROUP = "repro.plugins"

_discovered = False
_in_progress = False
_loaded: list[str] = []
_failures: list["PluginFailure"] = []


@dataclass(frozen=True)
class PluginFailure:
    """One entry point that failed to load, with the captured error."""

    entry_point: str
    distribution: str
    error: str


def discover(force: bool = False) -> list[str]:
    """Load every ``repro.plugins`` entry point (idempotent).

    Returns the names of the entry points loaded so far.  ``force`` re-runs
    the scan (used by tests that add metadata to ``sys.path`` mid-process);
    re-entrant calls — a plugin whose registration itself triggers a
    registry lookup — are no-ops, so plugins may freely use the public API
    while registering.
    """
    global _discovered, _in_progress
    if (_discovered and not force) or _in_progress:
        return list(_loaded)
    _in_progress = True
    try:
        if force:
            _loaded.clear()
            _failures.clear()
        try:
            entry_points = sorted(
                metadata.entry_points(group=ENTRY_POINT_GROUP), key=lambda ep: ep.name
            )
        except Exception as error:  # metadata backends can fail arbitrarily
            warnings.warn(f"repro.plugins entry-point scan failed: {error}", stacklevel=2)
            entry_points = []
        for entry_point in entry_points:
            _load_entry_point(entry_point)
        _discovered = True
    finally:
        _in_progress = False
    return list(_loaded)


def _load_entry_point(entry_point: metadata.EntryPoint) -> None:
    distribution = _distribution_name(entry_point)
    try:
        with providing(distribution):
            target = entry_point.load()
            if callable(target):
                target()
    except Exception as error:
        _failures.append(
            PluginFailure(
                entry_point=entry_point.name,
                distribution=distribution,
                error=f"{type(error).__name__}: {error}",
            )
        )
        warnings.warn(
            f"repro plugin {entry_point.name!r} ({distribution}) failed to "
            f"load and was skipped: {error}",
            stacklevel=3,
        )
        return
    _loaded.append(entry_point.name)


def _distribution_name(entry_point: metadata.EntryPoint) -> str:
    dist = getattr(entry_point, "dist", None)
    if dist is not None:
        try:
            return dist.name
        except Exception:
            pass
    return entry_point.value.partition(":")[0].partition(".")[0]


def discovered_plugins() -> list[str]:
    """Entry points loaded so far (empty before the first lookup)."""
    return list(_loaded)


def plugin_failures() -> list[PluginFailure]:
    """Entry points that failed to load, with their captured errors."""
    return list(_failures)


def reset_discovery() -> None:
    """Forget the discovery state so the next lookup rescans (test helper)."""
    global _discovered
    _discovered = False
    _loaded.clear()
    _failures.clear()
