"""Directed-graph substrate used throughout the synthesis flow.

The paper specifies the application with an *Application Characterization
Graph* (ACG): a directed graph ``G(V, E)`` whose vertices are cores and whose
edge ``e_ij`` carries the communication volume ``v(e_ij)`` and the bandwidth
requirement ``b(e_ij)`` from core ``i`` to core ``j`` (Section 4).  The
decomposition algorithm manipulates these graphs with three operations
(Definitions 1 and 2 of the paper):

* graph *sum* (union of vertex and edge sets),
* graph *difference* (remove the edges of a subgraph, keep the vertices),
* subgraph extraction.

This module implements a small, dependency-free directed graph
(:class:`DiGraph`) with exactly those operations plus the traversal helpers
the rest of the library needs, and the :class:`ApplicationGraph` (ACG)
specialisation that attaches volumes, bandwidths and core positions.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass
from typing import Any

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
    NotASubgraphError,
)

Node = Hashable
Edge = tuple[Node, Node]


@dataclass(frozen=True)
class EdgeData:
    """Attributes attached to an ACG edge.

    Attributes
    ----------
    volume:
        Total communication volume ``v(e_ij)`` in bits transferred over the
        lifetime of the application (e.g. one AES block encryption).
    bandwidth:
        Required bandwidth ``b(e_ij)`` in bits/cycle (or any consistent unit);
        used for the constraint check of Section 4.2.
    """

    volume: float = 1.0
    bandwidth: float = 0.0

    def merged_with(self, other: "EdgeData") -> "EdgeData":
        """Combine two parallel requirements (used by graph sum)."""
        return EdgeData(
            volume=self.volume + other.volume,
            bandwidth=self.bandwidth + other.bandwidth,
        )


class DiGraph:
    """A simple directed graph with hashable nodes and at most one edge per pair.

    The class intentionally mirrors the subset of functionality the
    decomposition algorithm needs; it is not a general-purpose graph library.
    Edge attributes are stored as arbitrary mappings so that both plain
    pattern graphs (no attributes) and ACGs (volume/bandwidth) share the same
    machinery.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._succ: dict[Node, dict[Node, dict[str, Any]]] = {}
        self._pred: dict[Node, dict[Node, dict[str, Any]]] = {}
        self._node_attrs: dict[Node, dict[str, Any]] = {}
        # Cached structural counters, maintained by add_edge/remove_edge so
        # num_edges / degree queries are O(1) on the decomposition hot path.
        self._num_edges = 0
        self._out_degree: dict[Node, int] = {}
        self._in_degree: dict[Node, int] = {}
        # Incremental order-independent fingerprint of the edge set; XOR-ing
        # per-edge hashes keeps it O(1) to maintain under add/remove.
        self._edge_fingerprint = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        nodes: Iterable[Node] = (),
        name: str = "",
    ) -> "DiGraph":
        """Build a graph from an edge list (plus optional isolated nodes)."""
        graph = cls(name=name)
        for node in nodes:
            graph.add_node(node, exist_ok=True)
        for source, target in edges:
            graph.add_edge(source, target, exist_ok=True)
        return graph

    def copy(self) -> "DiGraph":
        """Return a deep structural copy (attribute dicts are shallow-copied)."""
        clone = type(self)(name=self.name)
        for node, attrs in self._node_attrs.items():
            clone.add_node(node, **dict(attrs))
        for source, target, attrs in self.edges(data=True):
            clone.add_edge(source, target, **dict(attrs))
        return clone

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(self, node: Node, exist_ok: bool = False, **attrs: Any) -> None:
        """Add ``node``; raise :class:`DuplicateNodeError` unless ``exist_ok``."""
        if node in self._succ:
            if not exist_ok:
                raise DuplicateNodeError(node)
            self._node_attrs[node].update(attrs)
            return
        self._succ[node] = {}
        self._pred[node] = {}
        self._node_attrs[node] = dict(attrs)
        self._out_degree[node] = 0
        self._in_degree[node] = 0

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` together with all incident edges."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            self.remove_edge(source, node)
        del self._succ[node]
        del self._pred[node]
        del self._node_attrs[node]
        del self._out_degree[node]
        del self._in_degree[node]

    def has_node(self, node: Node) -> bool:
        """True when ``node`` is in the graph."""
        return node in self._succ

    def nodes(self) -> list[Node]:
        """Return the node list in insertion order."""
        return list(self._succ)

    def node_attributes(self, node: Node) -> dict[str, Any]:
        """The mutable attribute dict of ``node``."""
        if node not in self._node_attrs:
            raise NodeNotFoundError(node)
        return self._node_attrs[node]

    @property
    def num_nodes(self) -> int:
        """Number of nodes (O(1))."""
        return len(self._succ)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(
        self, source: Node, target: Node, exist_ok: bool = False, **attrs: Any
    ) -> None:
        """Add the directed edge ``source -> target``.

        Self-loops are rejected: a core never sends traffic to itself in an
        ACG and the communication primitives never contain them either.
        """
        if source == target:
            raise GraphError(f"self-loop {source!r} -> {target!r} is not allowed")
        self.add_node(source, exist_ok=True)
        self.add_node(target, exist_ok=True)
        if target in self._succ[source]:
            if not exist_ok:
                raise DuplicateEdgeError(source, target)
            self._succ[source][target].update(attrs)
            return
        data = dict(attrs)
        self._succ[source][target] = data
        self._pred[target][source] = data
        self._num_edges += 1
        self._out_degree[source] += 1
        self._in_degree[target] += 1
        self._edge_fingerprint ^= hash((source, target))

    def remove_edge(self, source: Node, target: Node) -> None:
        """Delete one directed edge (the endpoints stay)."""
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        del self._succ[source][target]
        del self._pred[target][source]
        self._num_edges -= 1
        self._out_degree[source] -= 1
        self._in_degree[target] -= 1
        self._edge_fingerprint ^= hash((source, target))

    def has_edge(self, source: Node, target: Node) -> bool:
        """True when the directed edge ``source -> target`` exists."""
        return source in self._succ and target in self._succ[source]

    def edge_attributes(self, source: Node, target: Node) -> dict[str, Any]:
        """The mutable attribute dict of one directed edge."""
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        return self._succ[source][target]

    def edges(self, data: bool = False) -> list[tuple]:
        """Return all edges, optionally with their attribute dictionaries."""
        result = []
        for source, targets in self._succ.items():
            for target, attrs in targets.items():
                if data:
                    result.append((source, target, attrs))
                else:
                    result.append((source, target))
        return result

    @property
    def num_edges(self) -> int:
        """Number of directed edges (O(1), maintained incrementally)."""
        return self._num_edges

    def edge_signature(self) -> tuple[int, int]:
        """O(1) canonical signature of the current edge set.

        Two graphs over the same vertex set with equal edge sets always have
        equal signatures, independently of insertion order.  The converse can
        fail (the fingerprint is a XOR of per-edge hashes), so callers that
        need exactness — e.g. the decomposition's transposition table — must
        confirm a signature hit against the actual edges.
        """
        return (self._num_edges, self._edge_fingerprint)

    def structural_fingerprint(self) -> frozenset[Edge]:
        """Exact, order-independent, hashable identity of the edge set.

        Unlike :meth:`edge_signature` this cannot collide: two graphs have
        equal fingerprints exactly when their edge sets are equal (isolated
        nodes are ignored).  It is the memoization key of the decomposition
        bound caches and the exact-small-residual solver, where a collision
        would silently reuse a bound computed for a different residual.
        Costs O(edges) to build, so prefer :meth:`edge_signature` where a
        confirmable hint suffices.
        """
        return frozenset(
            (source, target) for source, targets in self._succ.items() for target in targets
        )

    # ------------------------------------------------------------------
    # adjacency / degrees
    # ------------------------------------------------------------------
    def successors(self, node: Node) -> list[Node]:
        """Nodes reachable from ``node`` over one outgoing edge."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return list(self._succ[node])

    def predecessors(self, node: Node) -> list[Node]:
        """Nodes with an edge into ``node``."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return list(self._pred[node])

    def neighbors(self, node: Node) -> list[Node]:
        """Union of successors and predecessors (order-preserving, unique)."""
        seen: dict[Node, None] = {}
        for neighbor in self.successors(node):
            seen.setdefault(neighbor, None)
        for neighbor in self.predecessors(node):
            seen.setdefault(neighbor, None)
        return list(seen)

    def successor_map(self, node: Node) -> Mapping[Node, dict[str, Any]]:
        """The internal successor adjacency of ``node`` (treat as read-only).

        Exposed so hot-path consumers such as the VF2 matcher can intersect
        adjacency dictionaries directly instead of materialising node lists.
        """
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return self._succ[node]

    def predecessor_map(self, node: Node) -> Mapping[Node, dict[str, Any]]:
        """The internal predecessor adjacency of ``node`` (treat as read-only)."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return self._pred[node]

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of ``node`` (O(1))."""
        try:
            return self._out_degree[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of ``node`` (O(1))."""
        try:
            return self._in_degree[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """Total degree: in-degree plus out-degree (O(1))."""
        return self.in_degree(node) + self.out_degree(node)

    # ------------------------------------------------------------------
    # Definitions 1 and 2 of the paper
    # ------------------------------------------------------------------
    def graph_sum(self, other: "DiGraph") -> "DiGraph":
        """Definition 1: the union of vertex and edge sets of two graphs."""
        result = self.copy()
        result.name = f"{self.name}+{other.name}" if self.name or other.name else ""
        for node, attrs in other._node_attrs.items():
            result.add_node(node, exist_ok=True, **dict(attrs))
        for source, target, attrs in other.edges(data=True):
            result.add_edge(source, target, exist_ok=True, **dict(attrs))
        return result

    def graph_difference(self, subgraph: "DiGraph") -> "DiGraph":
        """Definition 2: the remaining graph ``R`` after removing ``subgraph``.

        The vertex set is preserved (``V_R = V``); only the edges of the
        subgraph are removed.  All edges of ``subgraph`` must be present.
        """
        for source, target in subgraph.edges():
            if not self.has_edge(source, target):
                raise NotASubgraphError(
                    f"edge ({source!r} -> {target!r}) of the subtracted graph "
                    "is not present in the original graph"
                )
        result = self.copy()
        for source, target in subgraph.edges():
            result.remove_edge(source, target)
        return result

    def edge_induced_subgraph(self, edges: Iterable[Edge]) -> "DiGraph":
        """Return the subgraph consisting of ``edges`` and their endpoints."""
        result = type(self)(name=f"{self.name}|sub")
        for source, target in edges:
            if not self.has_edge(source, target):
                raise EdgeNotFoundError(source, target)
            attrs = dict(self.edge_attributes(source, target))
            result.add_edge(source, target, **attrs)
        return result

    def node_induced_subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the subgraph induced by ``nodes`` (all edges among them)."""
        keep = set(nodes)
        missing = keep - set(self._succ)
        if missing:
            raise NodeNotFoundError(sorted(missing, key=repr)[0])
        result = type(self)(name=f"{self.name}|sub")
        for node in self.nodes():
            if node in keep:
                result.add_node(node, **dict(self._node_attrs[node]))
        for source, target, attrs in self.edges(data=True):
            if source in keep and target in keep:
                result.add_edge(source, target, **dict(attrs))
        return result

    def relabeled(self, mapping: Mapping[Node, Node]) -> "DiGraph":
        """Return a copy with nodes renamed according to ``mapping``.

        Nodes absent from ``mapping`` keep their label.  The mapping must not
        merge two distinct nodes into one.
        """
        new_labels = [mapping.get(node, node) for node in self.nodes()]
        if len(set(new_labels)) != len(new_labels):
            raise GraphError("relabeling would merge distinct nodes")
        result = type(self)(name=self.name)
        for node in self.nodes():
            result.add_node(mapping.get(node, node), **dict(self._node_attrs[node]))
        for source, target, attrs in self.edges(data=True):
            result.add_edge(
                mapping.get(source, source), mapping.get(target, target), **dict(attrs)
            )
        return result

    # ------------------------------------------------------------------
    # traversal / structure queries
    # ------------------------------------------------------------------
    def is_edge_subgraph_of(self, other: "DiGraph") -> bool:
        """True when every node and edge of ``self`` also appears in ``other``."""
        return all(other.has_node(node) for node in self.nodes()) and all(
            other.has_edge(source, target) for source, target in self.edges()
        )

    def isolated_nodes(self) -> list[Node]:
        """Nodes with neither incoming nor outgoing edges."""
        return [node for node in self.nodes() if self.degree(node) == 0]

    def without_isolated_nodes(self) -> "DiGraph":
        """Return a copy with all isolated nodes removed."""
        result = self.copy()
        for node in result.isolated_nodes():
            result.remove_node(node)
        return result

    def weakly_connected_components(self) -> list[set[Node]]:
        """Connected components of the underlying undirected graph."""
        remaining = set(self.nodes())
        components: list[set[Node]] = []
        while remaining:
            start = next(iter(remaining))
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in self.neighbors(node):
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            components.append(component)
            remaining -= component
        return components

    def is_weakly_connected(self) -> bool:
        """True when the undirected projection is connected (empty counts)."""
        if self.num_nodes == 0:
            return True
        return len(self.weakly_connected_components()) == 1

    def find_cycle(self) -> list[Node] | None:
        """Return one directed cycle as a node list, or ``None`` if acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in self.nodes()}
        parent: dict[Node, Node | None] = {}

        for root in self.nodes():
            if color[root] != WHITE:
                continue
            stack: list[tuple[Node, Iterator[Node]]] = [(root, iter(self.successors(root)))]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, successors = stack[-1]
                advanced = False
                for successor in successors:
                    if color[successor] == WHITE:
                        color[successor] = GRAY
                        parent[successor] = node
                        stack.append((successor, iter(self.successors(successor))))
                        advanced = True
                        break
                    if color[successor] == GRAY:
                        cycle = [successor, node]
                        walker = parent[node]
                        while walker is not None and walker != successor:
                            cycle.append(walker)
                            walker = parent[walker]
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        """True when the graph has no directed cycle."""
        return self.find_cycle() is None

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return self.num_nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return set(self.nodes()) == set(other.nodes()) and set(self.edges()) == set(
            other.edges()
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("DiGraph objects are mutable and therefore unhashable")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} |V|={self.num_nodes} |E|={self.num_edges}>"


@dataclass(frozen=True)
class CorePosition:
    """Physical position (centre) of a core on the die, in millimetres."""

    x: float
    y: float

    def manhattan_distance(self, other: "CorePosition") -> float:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_distance(self, other: "CorePosition") -> float:
        """L2 distance to ``other``."""
        return ((self.x - other.x) ** 2 + (self.y - other.y) ** 2) ** 0.5


class ApplicationGraph(DiGraph):
    """Application Characterization Graph (ACG).

    Each vertex is a core; each directed edge carries the communication
    volume ``v(e_ij)`` (bits) and the required bandwidth ``b(e_ij)``.  Cores
    optionally carry a :class:`CorePosition` so that link lengths — and
    therefore link energies — can be derived from the floorplan, exactly as
    assumed in Section 4 of the paper.
    """

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name)
        self._positions: dict[Node, CorePosition] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def from_traffic(
        cls,
        traffic: Mapping[Edge, float] | Iterable[tuple[Node, Node, float]],
        name: str = "",
        bandwidth_fraction: float = 0.0,
    ) -> "ApplicationGraph":
        """Build an ACG from a ``{(src, dst): volume}`` mapping or triples.

        ``bandwidth_fraction`` sets ``b(e) = bandwidth_fraction * v(e)`` which
        is a convenient default when only volumes are known.
        """
        graph = cls(name=name)
        if isinstance(traffic, Mapping):
            items = [(src, dst, vol) for (src, dst), vol in traffic.items()]
        else:
            items = list(traffic)
        for source, target, volume in items:
            graph.add_communication(
                source, target, volume=volume, bandwidth=bandwidth_fraction * volume
            )
        return graph

    def add_communication(
        self,
        source: Node,
        target: Node,
        volume: float = 1.0,
        bandwidth: float = 0.0,
        accumulate: bool = True,
    ) -> None:
        """Add (or accumulate onto) the communication edge ``source -> target``."""
        if volume < 0 or bandwidth < 0:
            raise GraphError("volume and bandwidth must be non-negative")
        if self.has_edge(source, target) and accumulate:
            data = self.edge_attributes(source, target)
            data["volume"] = data.get("volume", 0.0) + volume
            data["bandwidth"] = data.get("bandwidth", 0.0) + bandwidth
            return
        self.add_edge(source, target, exist_ok=True, volume=volume, bandwidth=bandwidth)

    # -- attribute accessors ---------------------------------------------
    def volume(self, source: Node, target: Node) -> float:
        """Communication volume ``v(e_ij)`` in bits."""
        return float(self.edge_attributes(source, target).get("volume", 0.0))

    def bandwidth(self, source: Node, target: Node) -> float:
        """Bandwidth requirement ``b(e_ij)``."""
        return float(self.edge_attributes(source, target).get("bandwidth", 0.0))

    def total_volume(self) -> float:
        """Sum of all edge volumes (bits)."""
        return sum(self.volume(s, t) for s, t in self.edges())

    def set_position(self, node: Node, x: float, y: float) -> None:
        """Pin ``node`` to floorplan coordinates (mm)."""
        if not self.has_node(node):
            raise NodeNotFoundError(node)
        self._positions[node] = CorePosition(float(x), float(y))

    def position(self, node: Node) -> CorePosition:
        """The floorplan position of ``node`` (raises if unset)."""
        if node not in self._positions:
            raise NodeNotFoundError(node)
        return self._positions[node]

    def has_position(self, node: Node) -> bool:
        """True when ``node`` has a floorplan position."""
        return node in self._positions

    def positions(self) -> dict[Node, CorePosition]:
        """All pinned floorplan positions by node."""
        return dict(self._positions)

    def link_length(self, source: Node, target: Node) -> float:
        """Manhattan distance between two cores, from the floorplan."""
        return self.position(source).manhattan_distance(self.position(target))

    def apply_floorplan(self, placements: Mapping[Node, tuple[float, float]]) -> None:
        """Attach core coordinates produced by :mod:`repro.floorplan`."""
        for node, (x, y) in placements.items():
            if self.has_node(node):
                self.set_position(node, x, y)

    # -- copies must preserve positions ----------------------------------
    def copy(self) -> "ApplicationGraph":
        """Deep copy including positions and attributes."""
        clone = super().copy()
        assert isinstance(clone, ApplicationGraph)
        clone._positions = dict(self._positions)
        return clone

    def structural_copy(self) -> DiGraph:
        """Return a plain :class:`DiGraph` with the same nodes and edges."""
        return DiGraph.from_edges(self.edges(), nodes=self.nodes(), name=self.name)


@dataclass
class GraphStatistics:
    """Summary statistics of a directed graph, used in reports and tests."""

    num_nodes: int
    num_edges: int
    max_out_degree: int
    max_in_degree: int
    density: float
    is_connected: bool
    num_components: int
    total_volume: float = 0.0

    @classmethod
    def of(cls, graph: DiGraph) -> "GraphStatistics":
        """Compute the statistics of ``graph`` in one pass."""
        nodes = graph.nodes()
        num_nodes = len(nodes)
        num_edges = graph.num_edges
        max_possible = num_nodes * (num_nodes - 1)
        total_volume = 0.0
        if isinstance(graph, ApplicationGraph):
            total_volume = graph.total_volume()
        return cls(
            num_nodes=num_nodes,
            num_edges=num_edges,
            max_out_degree=max((graph.out_degree(n) for n in nodes), default=0),
            max_in_degree=max((graph.in_degree(n) for n in nodes), default=0),
            density=(num_edges / max_possible) if max_possible else 0.0,
            is_connected=graph.is_weakly_connected(),
            num_components=len(graph.weakly_connected_components()),
            total_volume=total_volume,
        )
