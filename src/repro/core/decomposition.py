"""The graph decomposition engine (Section 4 of the paper).

Given an Application Characterization Graph and a communication library, the
decomposition covers the ACG with instances of the library primitives plus a
remainder graph that no primitive matches (Equation 2), minimising the total
cost (Equation 3) subject to the design constraints.

Two engines are provided:

:class:`BranchAndBoundDecomposer`
    The depth-first branch-and-bound of Figure 3.  At every level it tries
    each library primitive, enumerates the (edge-set-distinct) subgraph
    isomorphisms into the current residual graph, subtracts the matched
    edges, and recurses; a branch is abandoned as soon as its accumulated
    cost plus an admissible lower bound on the residual exceeds the best
    complete decomposition found so far.

:class:`GreedyDecomposer`
    A first-fit baseline (largest primitive first, first matching found, no
    backtracking).  It is used by the ablation benchmark to quantify what the
    branch-and-bound search buys.

Both return a :class:`DecompositionResult` that carries the chosen matchings,
the remainder graph, the cost breakdown, search statistics and a
``describe()`` method that prints the same listing format as the paper's
Section 5 output (primitive ID, name and vertex mapping per line).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from repro.core.bounds import ResidualBound, build_lower_bound
from repro.core.cost import CostModel, default_cost_model
from repro.core.graph import ApplicationGraph, DiGraph, Edge
from repro.core.isomorphism import MatcherOptions, VF2Matcher
from repro.core.library import CommunicationLibrary, LibraryEntry
from repro.core.matching import Matching, RemainderGraph
from repro.exceptions import DecompositionError


class SearchStrategy(Enum):
    """How the decomposition space is explored."""

    BRANCH_AND_BOUND = "branch_and_bound"
    GREEDY = "greedy"


@dataclass
class DecompositionConfig:
    """Tuning knobs for the decomposition search.

    Attributes
    ----------
    strategy:
        Branch-and-bound (paper) or greedy first-fit (ablation baseline).
    max_matchings_per_primitive:
        How many distinct matchings of each primitive are branched on at each
        level.  ``None`` explores all of them; small values keep the search
        tractable for large random graphs while preserving the best-first
        behaviour because matchings are deduplicated by covered edge set.
    isomorphism_timeout_seconds:
        Per-isomorphism-query timeout (Section 5.1 suggests terminating the
        subgraph search after a time-out rather than trying all
        permutations).
    total_timeout_seconds:
        Overall wall-clock budget; when exhausted the best decomposition
        found so far is returned and the result is flagged as truncated.
    max_leaves:
        Stop after this many complete decompositions have been evaluated.
    """

    strategy: SearchStrategy = SearchStrategy.BRANCH_AND_BOUND
    max_matchings_per_primitive: int | None = 4
    isomorphism_timeout_seconds: float | None = 5.0
    total_timeout_seconds: float | None = 120.0
    max_leaves: int | None = 20000
    max_nodes_expanded: int | None = None
    """Optional cap on the number of search-tree nodes expanded; bounds the
    total work on large graphs whose decomposition tree is too big to search
    exhaustively (the best decomposition found so far is returned)."""
    use_lower_bound: bool = True
    lower_bound: str = "stacked"
    """Which admissible residual bound prunes branches (see
    :mod:`repro.core.bounds`): ``"cost_model"`` (the legacy coarse per-edge
    charge), ``"cheapest_edge"`` (per-edge cheapest feasible cover offer),
    ``"packing"`` (node-side slot packing, flat cost models), ``"exact_small"``
    (memoized exact solve of small residuals) or ``"stacked"`` (the max of
    the latter three, evaluated lazily).  Ignored when ``use_lower_bound``
    is False.  Pruning is exact under every admissible choice — the knob
    trades bound computation against nodes expanded, never solution
    quality."""
    exact_small_max_edges: int = 10
    """Residuals at or below this many edges are solved outright (and
    memoized) by the ``exact_small`` bound; ``0`` disables the exact solver
    within ``stacked``."""
    use_matching_cache: bool = True
    """Inherit a parent residual's matchings into its children instead of
    re-running VF2: a child residual differs from its parent only by the
    subtracted edges, so the child's matchings of a primitive are exactly the
    parent's matchings whose covered edges survived the subtraction.  The
    inheritance is only applied when the parent's enumeration was provably
    complete (not clipped by ``max_matchings_per_primitive`` or a timeout);
    otherwise the child falls back to a fresh VF2 query."""
    use_transposition_table: bool = True
    """Prune residual states that were already searched under a dominating
    (cheaper partial cost, no-stricter symmetry key) visit.  Identical
    residual edge sets are reachable through different interleavings of
    overlapping matchings that the symmetry filter cannot collapse."""
    cache_overscan: int = 4
    """When the matching cache is on, fresh VF2 queries enumerate up to
    ``cache_overscan * max_matchings_per_primitive`` matchings so that
    completeness (and therefore inheritability) can be proven for primitives
    whose matching count is moderate.  Branching still uses only the first
    ``max_matchings_per_primitive`` candidates; the extra matchings only feed
    the candidate-inheritance cache."""


@dataclass
class SearchStatistics:
    """Diagnostics gathered during one decomposition run."""

    nodes_expanded: int = 0
    matchings_tried: int = 0
    """Branch candidates considered from fresh VF2 enumerations (clipped to
    ``max_matchings_per_primitive``; cache-served candidate lists are
    filtered, not re-enumerated, and therefore not counted here)."""
    matchings_enumerated: int = 0
    """Every matching yielded by a fresh VF2 enumeration, including the
    overscan beyond the branching limit that only feeds the matching cache.
    This is the true measure of VF2 enumeration work."""
    leaves_evaluated: int = 0
    branches_pruned: int = 0
    """Branches abandoned because an admissible bound proved they cannot
    beat the incumbent.  Transposition skips are *not* counted here (see
    ``transposition_hits``); ``branches_pruned_by`` attributes every pruned
    subtree — bound prunes *and* transposition skips — to its source."""
    branches_pruned_by: dict[str, int] = field(default_factory=dict)
    """Pruned-subtree provenance: which bound fired (``"cheapest_edge"``,
    ``"packing"``, ``"exact_small"``, ``"cost_model"``) or
    ``"transposition"`` for dominance skips, mapped to how many subtrees it
    removed."""
    bound_cache_hits: int = 0
    """Residual bound values served from the fingerprint-keyed bound cache."""
    bound_cache_misses: int = 0
    """Residual bound values that had to be computed."""
    exact_residuals_solved: int = 0
    """Distinct residual edge sets the ``exact_small`` bound solved outright
    (memo misses of the exact mini branch-and-bound)."""
    matching_cache_hits: int = 0
    """Primitive candidate lists inherited from the parent residual."""
    matching_cache_misses: int = 0
    """Primitive candidate lists that required a fresh VF2 enumeration."""
    transposition_hits: int = 0
    """Search nodes skipped because a dominating visit already searched the
    same residual edge set."""
    elapsed_seconds: float = 0.0
    truncated: bool = False
    truncated_by: str | None = None
    """Which budget cut the search short: ``"timeout"`` (wall clock — the
    result depends on machine speed), ``"leaves"`` or ``"nodes"`` (both
    deterministic counter budgets), or ``None`` when the search completed.
    Fidelity ladders key off this: a ``"nodes"``-truncated rung reproduces
    bit-identically everywhere, a ``"timeout"``-truncated one may not."""

    def as_dict(self) -> dict[str, float | int | bool | str | dict[str, int] | None]:
        """Plain-dict view of all counters (what evaluation records store)."""
        return {
            "nodes_expanded": self.nodes_expanded,
            "matchings_tried": self.matchings_tried,
            "matchings_enumerated": self.matchings_enumerated,
            "leaves_evaluated": self.leaves_evaluated,
            "branches_pruned": self.branches_pruned,
            "branches_pruned_by": dict(sorted(self.branches_pruned_by.items())),
            "bound_cache_hits": self.bound_cache_hits,
            "bound_cache_misses": self.bound_cache_misses,
            "exact_residuals_solved": self.exact_residuals_solved,
            "matching_cache_hits": self.matching_cache_hits,
            "matching_cache_misses": self.matching_cache_misses,
            "transposition_hits": self.transposition_hits,
            "elapsed_seconds": self.elapsed_seconds,
            "truncated": self.truncated,
            "truncated_by": self.truncated_by,
        }

    def cache_hit_rate(self) -> float:
        """Fraction of per-primitive candidate lists served from the cache."""
        total = self.matching_cache_hits + self.matching_cache_misses
        if total == 0:
            return 0.0
        return self.matching_cache_hits / total


@dataclass
class DecompositionResult:
    """A complete decomposition: matchings + remainder + cost breakdown."""

    acg: ApplicationGraph
    matchings: list[Matching]
    remainder: RemainderGraph
    total_cost: float
    matching_costs: list[float]
    remainder_cost: float
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_matchings(self) -> int:
        """How many primitive instances the decomposition uses."""
        return len(self.matchings)

    @property
    def is_complete_cover(self) -> bool:
        """True when no application edge was left in the remainder."""
        return self.remainder.is_empty

    def primitives_used(self) -> dict[str, int]:
        """How many instances of each primitive the decomposition uses."""
        counts: dict[str, int] = {}
        for matching in self.matchings:
            counts[matching.primitive.name] = counts.get(matching.primitive.name, 0) + 1
        return counts

    def covered_edge_fraction(self) -> float:
        """Fraction of ACG edges absorbed by primitives (1.0 = full cover)."""
        total = self.acg.num_edges
        if total == 0:
            return 1.0
        return 1.0 - self.remainder.num_edges / total

    def validate_cover(self) -> None:
        """Check that matchings + remainder partition the ACG edge set."""
        covered: set = set()
        for matching in self.matchings:
            edges = matching.covered_edges()
            overlap = covered & edges
            if overlap:
                raise DecompositionError(f"matchings overlap on edges {sorted(overlap)}")
            covered |= edges
        remainder_edges = set(self.remainder.edges())
        if covered & remainder_edges:
            raise DecompositionError("remainder overlaps a matching")
        all_edges = set(self.acg.edges())
        if covered | remainder_edges != all_edges:
            missing = all_edges - (covered | remainder_edges)
            raise DecompositionError(f"decomposition does not cover edges {sorted(missing)}")

    # ------------------------------------------------------------------
    # reporting (paper's Section-5 listing format)
    # ------------------------------------------------------------------
    def describe(self, include_cost: bool = True) -> str:
        """Multi-line listing in the paper's Section-5 output format."""
        lines: list[str] = []
        if include_cost:
            lines.append(f"COST: {self.total_cost:g}")
        for depth, matching in enumerate(self.matchings):
            lines.append(" " * depth + matching.describe())
        lines.append(" " * len(self.matchings) + self.remainder.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<DecompositionResult matchings={self.num_matchings} "
            f"remainder_edges={self.remainder.num_edges} cost={self.total_cost:g}>"
        )


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
class _Budget:
    """Shared wall-clock / leaf budget for one decomposition run."""

    def __init__(self, config: DecompositionConfig) -> None:
        self.config = config
        self.start = time.monotonic()
        self.leaves = 0
        self.exhausted = False
        self.exhausted_by: str | None = None

    def elapsed(self) -> float:
        """Seconds since the search started."""
        return time.monotonic() - self.start

    def _exhaust(self, reason: str) -> None:
        # the first budget to trip names the truncation; later trips keep it
        self.exhausted = True
        if self.exhausted_by is None:
            self.exhausted_by = reason

    def out_of_time(self) -> bool:
        """True (and latched) once the wall-clock budget is exhausted."""
        if self.config.total_timeout_seconds is None:
            return False
        if self.elapsed() > self.config.total_timeout_seconds:
            self._exhaust("timeout")
        return self.exhausted

    def out_of_leaves(self) -> bool:
        """True (and latched) once the leaf budget is exhausted."""
        if self.config.max_leaves is None:
            return False
        if self.leaves >= self.config.max_leaves:
            self._exhaust("leaves")
        return self.exhausted

    def out_of_nodes(self, nodes_expanded: int) -> bool:
        """True (and latched) once the node-expansion budget is exhausted."""
        if self.config.max_nodes_expanded is None:
            return False
        if nodes_expanded >= self.config.max_nodes_expanded:
            self._exhaust("nodes")
        return self.exhausted


class Decomposer:
    """Common machinery shared by the branch-and-bound and greedy engines."""

    def __init__(
        self,
        library: CommunicationLibrary,
        cost_model: CostModel | None = None,
        config: DecompositionConfig | None = None,
    ) -> None:
        self.library = library
        self.cost_model = cost_model
        self.config = config or DecompositionConfig()

    # -- helpers ---------------------------------------------------------
    def _resolve_cost_model(self, acg: ApplicationGraph) -> CostModel:
        if self.cost_model is not None:
            return self.cost_model
        return default_cost_model(acg)

    def _enumerate_matchings(
        self, entry: LibraryEntry, residual: DiGraph, overscan: bool = False
    ) -> tuple[list[Matching], bool]:
        """Distinct matchings of one primitive in the residual graph.

        Returns ``(matchings, complete)`` where ``complete`` is True only
        when the enumeration provably produced *every* edge-set-distinct
        matching: neither clipped by the enumeration limit nor cut short by
        the per-query timeout.  Completeness is what licenses the
        candidate-inheritance cache of the branch-and-bound search; only that
        search passes ``overscan=True`` to enumerate past the branching limit
        (the greedy engine has no cache and would pay the extra VF2 work for
        nothing).
        """
        primitive = entry.primitive
        if primitive.size > residual.num_nodes:
            return [], True
        if primitive.num_requirement_edges > residual.num_edges:
            return [], True
        matcher = VF2Matcher(
            primitive.representation,
            residual,
            MatcherOptions(
                induced=False,
                timeout_seconds=self.config.isomorphism_timeout_seconds,
                deduplicate_by_edges=True,
            ),
        )
        limit = self.config.max_matchings_per_primitive
        scan_limit = limit
        if limit is not None and overscan and self.config.cache_overscan > 1:
            scan_limit = limit * self.config.cache_overscan
        mappings = matcher.find_all(limit=scan_limit)
        complete = not matcher.timed_out and (
            scan_limit is None or len(mappings) < scan_limit
        )
        return [Matching.from_mapping(primitive, mapping) for mapping in mappings], complete

    def _branch_candidates(self, found: list[Matching]) -> list[Matching]:
        """The candidates actually branched on: the first ``limit`` of a list.

        Enumeration may overscan past the per-primitive limit to prove
        completeness for the matching cache; the branching width of the
        search stays at ``max_matchings_per_primitive`` regardless.
        """
        limit = self.config.max_matchings_per_primitive
        if limit is None:
            return found
        return found[:limit]

    def _any_match_exists(self, residual: DiGraph) -> bool:
        for entry in self.library.sorted_for_search():
            primitive = entry.primitive
            if primitive.size > residual.num_nodes:
                continue
            if primitive.num_requirement_edges > residual.num_edges:
                continue
            matcher = VF2Matcher(
                primitive.representation,
                residual,
                MatcherOptions(
                    timeout_seconds=self.config.isomorphism_timeout_seconds,
                ),
            )
            if matcher.exists():
                return True
        return False

    def _build_result(
        self,
        acg: ApplicationGraph,
        matchings: list[Matching],
        residual: DiGraph,
        cost_model: CostModel,
        statistics: SearchStatistics,
    ) -> DecompositionResult:
        remainder = RemainderGraph(residual.without_isolated_nodes())
        matching_costs = [cost_model.matching_cost(m, acg) for m in matchings]
        remainder_cost = cost_model.remainder_cost(remainder, acg)
        result = DecompositionResult(
            acg=acg,
            matchings=list(matchings),
            remainder=remainder,
            total_cost=sum(matching_costs) + remainder_cost,
            matching_costs=matching_costs,
            remainder_cost=remainder_cost,
            statistics=statistics,
        )
        result.validate_cover()
        return result

    def decompose(self, acg: ApplicationGraph) -> DecompositionResult:  # pragma: no cover
        """Cover ``acg`` with library primitives (engine-specific)."""
        raise NotImplementedError


class GreedyDecomposer(Decomposer):
    """First-fit decomposition: largest primitive first, no backtracking."""

    def decompose(self, acg: ApplicationGraph) -> DecompositionResult:
        """Cover ``acg`` greedily: largest primitive first, no backtracking."""
        cost_model = self._resolve_cost_model(acg)
        statistics = SearchStatistics()
        start = time.monotonic()
        residual: DiGraph = acg.structural_copy()
        matchings: list[Matching] = []
        progress = True
        while progress and residual.num_edges > 0:
            progress = False
            for entry in self.library.sorted_for_search():
                found, _complete = self._enumerate_matchings(entry, residual)
                candidates = self._branch_candidates(found)
                statistics.matchings_tried += len(candidates)
                statistics.matchings_enumerated += len(found)
                if not candidates:
                    continue
                best = min(candidates, key=lambda m: cost_model.matching_cost(m, acg))
                matchings.append(best)
                residual = best.subtract_from(residual)
                statistics.nodes_expanded += 1
                progress = True
                break
        statistics.leaves_evaluated = 1
        statistics.elapsed_seconds = time.monotonic() - start
        return self._build_result(acg, matchings, residual, cost_model, statistics)


class BranchAndBoundDecomposer(Decomposer):
    """The depth-first branch-and-bound NetDecomp algorithm of Figure 3.

    Two structural accelerations keep the VF2 subgraph-isomorphism engine off
    the hot path:

    * a **candidate-inheritance matching cache** — a child residual differs
      from its parent only by the subtracted edge set, so the child's
      matchings of a primitive are exactly the parent's matchings whose
      covered edges survived the subtraction.  When the parent's enumeration
      was provably complete the child filters the parent's list instead of
      re-running VF2;
    * a **transposition table** keyed by the residual's canonical edge-set
      signature — the same residual state is reachable through different
      interleavings of overlapping matchings, and a revisit that is dominated
      by an earlier visit (higher partial cost, no-looser symmetry key)
      cannot improve on the subtree already searched.
    """

    def decompose(self, acg: ApplicationGraph) -> DecompositionResult:
        """Search for the minimum-cost cover of ``acg`` (Figure 3)."""
        cost_model = self._resolve_cost_model(acg)
        statistics = SearchStatistics()
        budget = _Budget(self.config)
        residual = acg.structural_copy()

        best: dict[str, object] = {"cost": float("inf"), "matchings": None, "residual": None}
        use_cache = self.config.use_matching_cache
        use_table = self.config.use_transposition_table
        bound: ResidualBound | None = None
        if self.config.use_lower_bound:
            bound = build_lower_bound(
                self.config.lower_bound,
                self.library,
                cost_model,
                acg,
                exact_small_max_edges=self.config.exact_small_max_edges,
                statistics=statistics,
            )
        search_order = self.library.sorted_for_search()
        # signature -> [(exact edge set, [(partial_cost, min_key), ...])];
        # the exact edge set disambiguates fingerprint collisions, and each
        # (cost, key) list holds the Pareto-incomparable visits of the state.
        transposition: dict[
            tuple[int, int], list[tuple[frozenset[Edge], list[tuple[float, tuple]]]]
        ] = {}

        def evaluate_leaf(
            current: DiGraph,
            chosen: list[Matching],
            partial_cost: float,
            always_count: bool,
        ) -> None:
            """Score stopping at ``current`` (remaining edges go to the remainder).

            Natural leaves (no candidate matches at all) always count against
            the leaf budget, as in the original search.  Stop-early leaves at
            interior nodes are scored too — the optimum may leave coverable
            traffic in the remainder — but charged to the budget only when
            they improve the incumbent, so the extra evaluations cannot
            exhaust ``max_leaves`` on subtrees the bound has written off.
            """
            total = partial_cost + cost_model.remainder_cost(current, acg)
            improved = total < best["cost"]
            if always_count or improved:
                budget.leaves += 1
                statistics.leaves_evaluated += 1
            if improved:
                best["cost"] = total
                best["matchings"] = list(chosen)
                best["residual"] = current.copy()

        def enumerate_candidates(
            current: DiGraph,
            inherited: dict[int, tuple[list[Matching], bool]] | None,
            dead: frozenset[int],
        ) -> tuple[dict[int, tuple[list[Matching], bool]], list[Matching], frozenset[int]]:
            """Candidate matchings of ``current``, per primitive and flattened.

            ``inherited`` carries the parent's candidate lists already
            filtered down to matchings that survived the subtraction, each
            tagged with whether it is provably the complete candidate set;
            primitives missing from it (the root, or a clipped parent list
            that no longer fills the branching quota) fall back to a fresh
            VF2 query.  ``dead`` holds primitives proven matchless in an
            ancestor residual — a matching is a monomorphism, so a primitive
            absent from some graph is absent from all of its subgraphs and is
            skipped for the whole subtree (this also keeps the
            ``use_matching_cache=False`` baseline from re-querying them).
            """
            lists: dict[int, tuple[list[Matching], bool]] = {}
            candidates: list[Matching] = []
            newly_dead: set[int] = set()
            for entry in search_order:
                primitive_id = entry.primitive_id
                if primitive_id in dead:
                    continue
                cached = inherited.get(primitive_id) if inherited is not None else None
                if cached is not None:
                    statistics.matching_cache_hits += 1
                    found, complete = cached
                else:
                    statistics.matching_cache_misses += 1
                    found, complete = self._enumerate_matchings(
                        entry, current, overscan=use_cache
                    )
                    statistics.matchings_tried += len(self._branch_candidates(found))
                    statistics.matchings_enumerated += len(found)
                if complete and not found:
                    newly_dead.add(primitive_id)
                    continue
                lists[primitive_id] = (found, complete)
                candidates.extend(self._branch_candidates(found))
            return lists, candidates, dead | frozenset(newly_dead)

        def inherit_lists(
            lists: dict[int, tuple[list[Matching], bool]], removed: frozenset[Edge]
        ) -> dict[int, tuple[list[Matching], bool]]:
            """Filter this node's candidate lists for the child residual.

            A matching survives the subtraction exactly when none of its
            covered edges was removed.  Complete lists stay complete (every
            child matching is a parent matching).  A clipped list is still
            reused when the survivors fill the per-primitive branching quota
            — a fresh VF2 query would also return ``limit`` candidates, just
            possibly different ones — and stays tagged incomplete.
            """
            limit = self.config.max_matchings_per_primitive
            child: dict[int, tuple[list[Matching], bool]] = {}
            for primitive_id, (found, complete) in lists.items():
                surviving = [m for m in found if not (m.covered_edges() & removed)]
                if complete:
                    child[primitive_id] = (surviving, True)
                elif limit is not None and len(surviving) >= limit:
                    child[primitive_id] = (surviving, False)
            return child

        def dominated_or_recorded(
            current: DiGraph, partial_cost: float, min_key: tuple
        ) -> bool:
            """True when an earlier visit of this residual dominates this one.

            A visit with partial cost ``c`` and symmetry key ``k`` dominates a
            revisit with cost >= c and key >= k: every branch the revisit may
            take was reachable from the earlier visit at no higher cost.  When
            not dominated, the visit is recorded (evicting entries it
            dominates in turn).

            Only nodes whose candidate lists are all provably complete are
            recorded or pruned: a complete candidate set is a function of the
            residual alone, so two such visits see identical branches.  With
            clipped lists the two visits may branch on *different* truncated
            candidate subsets, and pruning would drop branches neither visit
            explored.
            """
            signature = current.edge_signature()
            buckets = transposition.setdefault(signature, [])
            edges = frozenset(current.edges())
            entries: list[tuple[float, tuple]] | None = None
            for bucket_edges, bucket_entries in buckets:
                if bucket_edges == edges:
                    entries = bucket_entries
                    break
            if entries is None:
                entries = []
                buckets.append((edges, entries))
            for stored_cost, stored_key in entries:
                if partial_cost >= stored_cost - 1e-9 and min_key >= stored_key:
                    statistics.transposition_hits += 1
                    statistics.branches_pruned_by["transposition"] = (
                        statistics.branches_pruned_by.get("transposition", 0) + 1
                    )
                    return True
            entries[:] = [
                (cost, key)
                for cost, key in entries
                if not (cost >= partial_cost - 1e-9 and key >= min_key)
            ]
            entries.append((partial_cost, min_key))
            return False

        def recurse(
            current: DiGraph,
            chosen: list[Matching],
            partial_cost: float,
            min_key: tuple,
            inherited: dict[int, tuple[list[Matching], bool]] | None,
            dead: frozenset[int],
        ) -> None:
            """Expand one search node: branch on every surviving candidate."""
            if (
                budget.out_of_time()
                or budget.out_of_leaves()
                or budget.out_of_nodes(statistics.nodes_expanded)
            ):
                return
            statistics.nodes_expanded += 1

            lists, candidates, child_dead = enumerate_candidates(current, inherited, dead)
            # Symmetry breaking: matchings commute, so explore them in
            # non-decreasing canonical order only (see Matching.sort_key),
            # branching in canonical order so no combination is lost.
            survivors = [m for m in candidates if m.sort_key() >= min_key]
            survivors.sort(key=Matching.sort_key)

            # The transposition check sits after candidate enumeration because
            # its soundness gate needs the lists' completeness flags, which
            # only exist once the lists do; on a revisited node the
            # enumeration is almost always served by the inheritance cache,
            # so the work a hit discards is list filtering, not VF2.
            all_complete = all(complete for _, complete in lists.values())
            if (
                survivors
                and use_table
                and all_complete
                and dominated_or_recorded(current, partial_cost, min_key)
            ):
                return

            for matching in survivors:
                match_cost = cost_model.matching_cost(matching, acg)
                next_residual = matching.subtract_from(current)
                next_cost = partial_cost + match_cost
                if bound is not None:
                    # prune when next_cost + bound(residual) >= incumbent;
                    # the reason names the (sub-)bound that proved it
                    fired = bound.prune_reason(next_residual, best["cost"] - next_cost)
                    if fired is not None:
                        statistics.branches_pruned += 1
                        statistics.branches_pruned_by[fired] = (
                            statistics.branches_pruned_by.get(fired, 0) + 1
                        )
                        continue
                child_inherited: dict[int, tuple[list[Matching], bool]] | None = None
                if use_cache:
                    child_inherited = inherit_lists(lists, matching.covered_edges())
                chosen.append(matching)
                recurse(
                    next_residual,
                    chosen,
                    next_cost,
                    matching.sort_key(),
                    child_inherited,
                    child_dead,
                )
                chosen.pop()
                if (
                    budget.out_of_time()
                    or budget.out_of_leaves()
                    or budget.out_of_nodes(statistics.nodes_expanded)
                ):
                    return

            # Score stopping at this node, whether it is a natural leaf
            # (nothing in the library matches), a node whose candidates were
            # all symmetry-filtered or bound-pruned, or an interior node —
            # the optimum may cover less than the library allows.  Scoring
            # after the children keeps ties resolved in favour of the deeper
            # (more covering) decomposition found first.
            evaluate_leaf(current, chosen, partial_cost, always_count=not candidates)

        recurse(residual, [], 0.0, (), None, frozenset())
        statistics.elapsed_seconds = budget.elapsed()
        statistics.truncated = budget.exhausted
        statistics.truncated_by = budget.exhausted_by

        if best["matchings"] is None:
            # The search budget ran out before reaching any leaf; fall back to
            # a greedy pass so the caller always receives a valid cover.
            fallback = GreedyDecomposer(self.library, cost_model, self.config).decompose(acg)
            fallback.statistics.truncated = True
            fallback.statistics.truncated_by = budget.exhausted_by or "timeout"
            fallback.statistics.nodes_expanded += statistics.nodes_expanded
            fallback.statistics.matchings_tried += statistics.matchings_tried
            fallback.statistics.matchings_enumerated += statistics.matchings_enumerated
            fallback.statistics.branches_pruned += statistics.branches_pruned
            fallback.statistics.branches_pruned_by = dict(statistics.branches_pruned_by)
            fallback.statistics.bound_cache_hits += statistics.bound_cache_hits
            fallback.statistics.bound_cache_misses += statistics.bound_cache_misses
            fallback.statistics.exact_residuals_solved += statistics.exact_residuals_solved
            fallback.statistics.matching_cache_hits += statistics.matching_cache_hits
            fallback.statistics.matching_cache_misses += statistics.matching_cache_misses
            fallback.statistics.transposition_hits += statistics.transposition_hits
            return fallback

        return self._build_result(
            acg,
            list(best["matchings"]),  # type: ignore[arg-type]
            best["residual"],  # type: ignore[arg-type]
            cost_model,
            statistics,
        )


def decompose(
    acg: ApplicationGraph,
    library: CommunicationLibrary,
    cost_model: CostModel | None = None,
    config: DecompositionConfig | None = None,
) -> DecompositionResult:
    """Decompose ``acg`` into ``library`` primitives (module-level convenience).

    The engine is picked from ``config.strategy``; the default is the paper's
    branch-and-bound search with a unit or energy cost model chosen
    automatically from the ACG (energy if floorplan positions are present).
    """
    # imported lazily so the observability layer stays optional at the
    # module level (repro.core must import standalone in minimal embeddings)
    from repro.obs import get_tracer

    config = config or DecompositionConfig()
    if config.strategy is SearchStrategy.GREEDY:
        engine: Decomposer = GreedyDecomposer(library, cost_model, config)
    else:
        engine = BranchAndBoundDecomposer(library, cost_model, config)
    tracer = get_tracer()
    with tracer.span("search.decompose", strategy=config.strategy.value) as span:
        result = engine.decompose(acg)
        if tracer.enabled:
            statistics = result.statistics
            span.annotate(
                nodes_expanded=statistics.nodes_expanded,
                leaves_evaluated=statistics.leaves_evaluated,
                vf2_fresh_matchings=statistics.matching_cache_misses,
                vf2_cached_matchings=statistics.matching_cache_hits,
                transposition_hits=statistics.transposition_hits,
                branches_pruned=statistics.branches_pruned,
                branches_pruned_by=dict(sorted(statistics.branches_pruned_by.items())),
                bound_cache_hits=statistics.bound_cache_hits,
                bound_cache_misses=statistics.bound_cache_misses,
                exact_residuals_solved=statistics.exact_residuals_solved,
                truncated=statistics.truncated,
                truncated_by=statistics.truncated_by,
            )
    return result
