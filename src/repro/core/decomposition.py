"""The graph decomposition engine (Section 4 of the paper).

Given an Application Characterization Graph and a communication library, the
decomposition covers the ACG with instances of the library primitives plus a
remainder graph that no primitive matches (Equation 2), minimising the total
cost (Equation 3) subject to the design constraints.

Two engines are provided:

:class:`BranchAndBoundDecomposer`
    The depth-first branch-and-bound of Figure 3.  At every level it tries
    each library primitive, enumerates the (edge-set-distinct) subgraph
    isomorphisms into the current residual graph, subtracts the matched
    edges, and recurses; a branch is abandoned as soon as its accumulated
    cost plus an admissible lower bound on the residual exceeds the best
    complete decomposition found so far.

:class:`GreedyDecomposer`
    A first-fit baseline (largest primitive first, first matching found, no
    backtracking).  It is used by the ablation benchmark to quantify what the
    branch-and-bound search buys.

Both return a :class:`DecompositionResult` that carries the chosen matchings,
the remainder graph, the cost breakdown, search statistics and a
``describe()`` method that prints the same listing format as the paper's
Section 5 output (primitive ID, name and vertex mapping per line).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from repro.core.cost import CostModel, UnitCostModel, default_cost_model
from repro.core.graph import ApplicationGraph, DiGraph
from repro.core.isomorphism import MatcherOptions, VF2Matcher
from repro.core.library import CommunicationLibrary, LibraryEntry
from repro.core.matching import Matching, RemainderGraph
from repro.exceptions import DecompositionError


class SearchStrategy(Enum):
    """How the decomposition space is explored."""

    BRANCH_AND_BOUND = "branch_and_bound"
    GREEDY = "greedy"


@dataclass
class DecompositionConfig:
    """Tuning knobs for the decomposition search.

    Attributes
    ----------
    strategy:
        Branch-and-bound (paper) or greedy first-fit (ablation baseline).
    max_matchings_per_primitive:
        How many distinct matchings of each primitive are branched on at each
        level.  ``None`` explores all of them; small values keep the search
        tractable for large random graphs while preserving the best-first
        behaviour because matchings are deduplicated by covered edge set.
    isomorphism_timeout_seconds:
        Per-isomorphism-query timeout (Section 5.1 suggests terminating the
        subgraph search after a time-out rather than trying all
        permutations).
    total_timeout_seconds:
        Overall wall-clock budget; when exhausted the best decomposition
        found so far is returned and the result is flagged as truncated.
    max_leaves:
        Stop after this many complete decompositions have been evaluated.
    """

    strategy: SearchStrategy = SearchStrategy.BRANCH_AND_BOUND
    max_matchings_per_primitive: int | None = 4
    isomorphism_timeout_seconds: float | None = 5.0
    total_timeout_seconds: float | None = 120.0
    max_leaves: int | None = 20000
    max_nodes_expanded: int | None = None
    """Optional cap on the number of search-tree nodes expanded; bounds the
    total work on large graphs whose decomposition tree is too big to search
    exhaustively (the best decomposition found so far is returned)."""
    use_lower_bound: bool = True


@dataclass
class SearchStatistics:
    """Diagnostics gathered during one decomposition run."""

    nodes_expanded: int = 0
    matchings_tried: int = 0
    leaves_evaluated: int = 0
    branches_pruned: int = 0
    elapsed_seconds: float = 0.0
    truncated: bool = False

    def as_dict(self) -> dict[str, float | int | bool]:
        return {
            "nodes_expanded": self.nodes_expanded,
            "matchings_tried": self.matchings_tried,
            "leaves_evaluated": self.leaves_evaluated,
            "branches_pruned": self.branches_pruned,
            "elapsed_seconds": self.elapsed_seconds,
            "truncated": self.truncated,
        }


@dataclass
class DecompositionResult:
    """A complete decomposition: matchings + remainder + cost breakdown."""

    acg: ApplicationGraph
    matchings: list[Matching]
    remainder: RemainderGraph
    total_cost: float
    matching_costs: list[float]
    remainder_cost: float
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_matchings(self) -> int:
        return len(self.matchings)

    @property
    def is_complete_cover(self) -> bool:
        """True when no application edge was left in the remainder."""
        return self.remainder.is_empty

    def primitives_used(self) -> dict[str, int]:
        """How many instances of each primitive the decomposition uses."""
        counts: dict[str, int] = {}
        for matching in self.matchings:
            counts[matching.primitive.name] = counts.get(matching.primitive.name, 0) + 1
        return counts

    def covered_edge_fraction(self) -> float:
        total = self.acg.num_edges
        if total == 0:
            return 1.0
        return 1.0 - self.remainder.num_edges / total

    def validate_cover(self) -> None:
        """Check that matchings + remainder partition the ACG edge set."""
        covered: set = set()
        for matching in self.matchings:
            edges = matching.covered_edges()
            overlap = covered & edges
            if overlap:
                raise DecompositionError(f"matchings overlap on edges {sorted(overlap)}")
            covered |= edges
        remainder_edges = set(self.remainder.edges())
        if covered & remainder_edges:
            raise DecompositionError("remainder overlaps a matching")
        all_edges = set(self.acg.edges())
        if covered | remainder_edges != all_edges:
            missing = all_edges - (covered | remainder_edges)
            raise DecompositionError(f"decomposition does not cover edges {sorted(missing)}")

    # ------------------------------------------------------------------
    # reporting (paper's Section-5 listing format)
    # ------------------------------------------------------------------
    def describe(self, include_cost: bool = True) -> str:
        lines: list[str] = []
        if include_cost:
            lines.append(f"COST: {self.total_cost:g}")
        for depth, matching in enumerate(self.matchings):
            lines.append(" " * depth + matching.describe())
        lines.append(" " * len(self.matchings) + self.remainder.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<DecompositionResult matchings={self.num_matchings} "
            f"remainder_edges={self.remainder.num_edges} cost={self.total_cost:g}>"
        )


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
class _Budget:
    """Shared wall-clock / leaf budget for one decomposition run."""

    def __init__(self, config: DecompositionConfig) -> None:
        self.config = config
        self.start = time.monotonic()
        self.leaves = 0
        self.exhausted = False

    def elapsed(self) -> float:
        return time.monotonic() - self.start

    def out_of_time(self) -> bool:
        if self.config.total_timeout_seconds is None:
            return False
        if self.elapsed() > self.config.total_timeout_seconds:
            self.exhausted = True
        return self.exhausted

    def out_of_leaves(self) -> bool:
        if self.config.max_leaves is None:
            return False
        if self.leaves >= self.config.max_leaves:
            self.exhausted = True
        return self.exhausted

    def out_of_nodes(self, nodes_expanded: int) -> bool:
        if self.config.max_nodes_expanded is None:
            return False
        if nodes_expanded >= self.config.max_nodes_expanded:
            self.exhausted = True
        return self.exhausted


class Decomposer:
    """Common machinery shared by the branch-and-bound and greedy engines."""

    def __init__(
        self,
        library: CommunicationLibrary,
        cost_model: CostModel | None = None,
        config: DecompositionConfig | None = None,
    ) -> None:
        self.library = library
        self.cost_model = cost_model
        self.config = config or DecompositionConfig()

    # -- helpers ---------------------------------------------------------
    def _resolve_cost_model(self, acg: ApplicationGraph) -> CostModel:
        if self.cost_model is not None:
            return self.cost_model
        return default_cost_model(acg)

    def _enumerate_matchings(
        self, entry: LibraryEntry, residual: DiGraph
    ) -> list[Matching]:
        """Distinct matchings of one primitive in the residual graph."""
        primitive = entry.primitive
        if primitive.size > residual.num_nodes:
            return []
        if primitive.num_requirement_edges > residual.num_edges:
            return []
        matcher = VF2Matcher(
            primitive.representation,
            residual,
            MatcherOptions(
                induced=False,
                timeout_seconds=self.config.isomorphism_timeout_seconds,
                deduplicate_by_edges=True,
            ),
        )
        limit = self.config.max_matchings_per_primitive
        mappings = matcher.find_all(limit=limit)
        return [Matching.from_mapping(primitive, mapping) for mapping in mappings]

    def _any_match_exists(self, residual: DiGraph) -> bool:
        for entry in self.library.sorted_for_search():
            primitive = entry.primitive
            if primitive.size > residual.num_nodes:
                continue
            if primitive.num_requirement_edges > residual.num_edges:
                continue
            matcher = VF2Matcher(
                primitive.representation,
                residual,
                MatcherOptions(
                    timeout_seconds=self.config.isomorphism_timeout_seconds,
                ),
            )
            if matcher.exists():
                return True
        return False

    def _build_result(
        self,
        acg: ApplicationGraph,
        matchings: list[Matching],
        residual: DiGraph,
        cost_model: CostModel,
        statistics: SearchStatistics,
    ) -> DecompositionResult:
        remainder = RemainderGraph(residual.without_isolated_nodes())
        matching_costs = [cost_model.matching_cost(m, acg) for m in matchings]
        remainder_cost = cost_model.remainder_cost(remainder, acg)
        result = DecompositionResult(
            acg=acg,
            matchings=list(matchings),
            remainder=remainder,
            total_cost=sum(matching_costs) + remainder_cost,
            matching_costs=matching_costs,
            remainder_cost=remainder_cost,
            statistics=statistics,
        )
        result.validate_cover()
        return result

    def decompose(self, acg: ApplicationGraph) -> DecompositionResult:  # pragma: no cover
        raise NotImplementedError


class GreedyDecomposer(Decomposer):
    """First-fit decomposition: largest primitive first, no backtracking."""

    def decompose(self, acg: ApplicationGraph) -> DecompositionResult:
        cost_model = self._resolve_cost_model(acg)
        statistics = SearchStatistics()
        start = time.monotonic()
        residual: DiGraph = acg.structural_copy()
        matchings: list[Matching] = []
        progress = True
        while progress and residual.num_edges > 0:
            progress = False
            for entry in self.library.sorted_for_search():
                candidates = self._enumerate_matchings(entry, residual)
                statistics.matchings_tried += len(candidates)
                if not candidates:
                    continue
                best = min(candidates, key=lambda m: cost_model.matching_cost(m, acg))
                matchings.append(best)
                residual = best.subtract_from(residual)
                statistics.nodes_expanded += 1
                progress = True
                break
        statistics.leaves_evaluated = 1
        statistics.elapsed_seconds = time.monotonic() - start
        return self._build_result(acg, matchings, residual, cost_model, statistics)


class BranchAndBoundDecomposer(Decomposer):
    """The depth-first branch-and-bound NetDecomp algorithm of Figure 3."""

    def decompose(self, acg: ApplicationGraph) -> DecompositionResult:
        cost_model = self._resolve_cost_model(acg)
        statistics = SearchStatistics()
        budget = _Budget(self.config)
        residual = acg.structural_copy()

        best: dict[str, object] = {"cost": float("inf"), "matchings": None, "residual": None}
        smallest_key: tuple = ()

        def recurse(
            current: DiGraph,
            chosen: list[Matching],
            partial_cost: float,
            min_key: tuple,
            dead_primitives: frozenset[int],
        ) -> None:
            if (
                budget.out_of_time()
                or budget.out_of_leaves()
                or budget.out_of_nodes(statistics.nodes_expanded)
            ):
                return
            statistics.nodes_expanded += 1

            # A primitive with no matching in some graph cannot match any of
            # its subgraphs either (matchings are monomorphisms), so once a
            # primitive comes up empty it is skipped for the whole subtree.
            newly_dead: set[int] = set()
            candidates: list[Matching] = []
            for entry in self.library.sorted_for_search():
                if entry.primitive_id in dead_primitives:
                    continue
                found = self._enumerate_matchings(entry, current)
                statistics.matchings_tried += len(found)
                if not found:
                    newly_dead.add(entry.primitive_id)
                    continue
                candidates.extend(found)
            child_dead = dead_primitives | frozenset(newly_dead)
            any_branch = bool(candidates)
            # Branch in canonical order so that the symmetry-breaking filter
            # below (only non-decreasing keys along a branch) never discards a
            # combination of matchings that has not been explored elsewhere.
            candidates.sort(key=lambda matching: matching.sort_key())
            for matching in candidates:
                # Symmetry breaking: matchings commute, so explore them in
                # non-decreasing canonical order only (see Matching.sort_key).
                if matching.sort_key() < min_key:
                    continue
                match_cost = cost_model.matching_cost(matching, acg)
                next_residual = matching.subtract_from(current)
                next_cost = partial_cost + match_cost
                if self.config.use_lower_bound:
                    bound = next_cost + cost_model.lower_bound(next_residual, acg)
                    if bound >= best["cost"]:
                        statistics.branches_pruned += 1
                        continue
                chosen.append(matching)
                recurse(next_residual, chosen, next_cost, matching.sort_key(), child_dead)
                chosen.pop()
                if budget.out_of_time() or budget.out_of_leaves():
                    return

            if not any_branch:
                # Leaf: nothing in the library matches the residual graph.
                budget.leaves += 1
                statistics.leaves_evaluated += 1
                total = partial_cost + cost_model.remainder_cost(current, acg)
                if total < best["cost"]:
                    best["cost"] = total
                    best["matchings"] = list(chosen)
                    best["residual"] = current.copy()

        recurse(residual, [], 0.0, smallest_key, frozenset())
        statistics.elapsed_seconds = budget.elapsed()
        statistics.truncated = budget.exhausted

        if best["matchings"] is None:
            # The search budget ran out before reaching any leaf; fall back to
            # a greedy pass so the caller always receives a valid cover.
            fallback = GreedyDecomposer(self.library, cost_model, self.config).decompose(acg)
            fallback.statistics.truncated = True
            fallback.statistics.nodes_expanded += statistics.nodes_expanded
            fallback.statistics.matchings_tried += statistics.matchings_tried
            return fallback

        return self._build_result(
            acg,
            list(best["matchings"]),  # type: ignore[arg-type]
            best["residual"],  # type: ignore[arg-type]
            cost_model,
            statistics,
        )


def decompose(
    acg: ApplicationGraph,
    library: CommunicationLibrary,
    cost_model: CostModel | None = None,
    config: DecompositionConfig | None = None,
) -> DecompositionResult:
    """Decompose ``acg`` into ``library`` primitives (module-level convenience).

    The engine is picked from ``config.strategy``; the default is the paper's
    branch-and-bound search with a unit or energy cost model chosen
    automatically from the ACG (energy if floorplan positions are present).
    """
    config = config or DecompositionConfig()
    if config.strategy is SearchStrategy.GREEDY:
        engine: Decomposer = GreedyDecomposer(library, cost_model, config)
    else:
        engine = BranchAndBoundDecomposer(library, cost_model, config)
    return engine.decompose(acg)
