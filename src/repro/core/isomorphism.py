"""Subgraph-isomorphism engine (VF2-style) used by the decomposition algorithm.

The paper's branch-and-bound decomposition repeatedly asks: *does the current
application graph contain a subgraph isomorphic to one of the representation
graphs in the communication library?* (Definition 4).  The original tool used
the C++ VF2 implementation of Cordella et al.; here we implement the same
state-space search directly in Python.

Two matching semantics are provided:

``monomorphism`` (default)
    Every *pattern* edge must map to an edge of the target between the mapped
    endpoints; extra target edges between mapped vertices are allowed.  This
    is the semantics of Definition 3/4: a subgraph ``S`` of the target (any
    edge subset) must be isomorphic to the pattern.  It is what the
    decomposition uses, because only the matched edges are subtracted.

``induced``
    Additionally, every non-edge of the pattern must be a non-edge of the
    target between the mapped vertices.

The matcher supports

* enumeration of one / all / up to *k* matchings,
* canonical de-duplication of matchings that cover the same edge set
  (important for symmetric primitives such as gossip graphs, whose
  automorphism group would otherwise multiply the search space of the
  decomposition),
* a wall-clock timeout, as suggested in Section 5.1 of the paper
  ("the search for the isomorphism can be terminated after a time-out
  period rather than trying all permutations").
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass
from functools import cached_property

from repro.core.graph import DiGraph, Edge, Node


@dataclass(frozen=True)
class IsomorphismMapping:
    """An injective mapping from pattern vertices to target vertices."""

    mapping: tuple[tuple[Node, Node], ...]

    @classmethod
    def from_dict(cls, mapping: dict[Node, Node]) -> "IsomorphismMapping":
        """Canonicalize a plain mapping dict into a hashable mapping."""
        return cls(tuple(sorted(mapping.items(), key=lambda kv: repr(kv[0]))))

    def as_dict(self) -> dict[Node, Node]:
        """Plain-dict view of the node mapping."""
        return dict(self.mapping)

    @cached_property
    def _lookup_table(self) -> dict[Node, Node]:
        # cached_property writes straight into the instance __dict__, which
        # sidesteps the frozen dataclass' __setattr__.
        return dict(self.mapping)

    def image(self, node: Node) -> Node:
        """The target node a pattern node is mapped to."""
        return self._lookup_table[node]

    def target_nodes(self) -> set[Node]:
        """The set of target nodes used by the mapping."""
        return {target for _, target in self.mapping}

    def covered_edges(self, pattern: DiGraph) -> frozenset[Edge]:
        """The target edges that are images of pattern edges."""
        as_dict = self.as_dict()
        return frozenset(
            (as_dict[source], as_dict[target]) for source, target in pattern.edges()
        )

    def __len__(self) -> int:
        return len(self.mapping)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{p!r}->{t!r}" for p, t in self.mapping)
        return f"IsomorphismMapping({pairs})"


@dataclass
class MatcherOptions:
    """Tuning knobs for the VF2 search."""

    induced: bool = False
    timeout_seconds: float | None = None
    max_matches: int | None = None
    deduplicate_by_edges: bool = True
    node_compatible: Callable[[Node, Node], bool] | None = None


class SearchTimeout(Exception):
    """Internal signal: the wall-clock budget for this search is exhausted."""


class VF2Matcher:
    """VF2-style state-space search for directed (sub)graph isomorphism.

    Parameters
    ----------
    pattern:
        The library representation graph (the smaller graph).
    target:
        The application graph (or the remaining graph during decomposition).
    options:
        Matching semantics and limits; see :class:`MatcherOptions`.
    """

    def __init__(
        self,
        pattern: DiGraph,
        target: DiGraph,
        options: MatcherOptions | None = None,
    ) -> None:
        self.pattern = pattern
        self.target = target
        self.options = options or MatcherOptions()
        # Pattern nodes in a fixed search order: most-constrained first
        # (highest total degree), which keeps the search shallow for the
        # dense gossip patterns.
        self._pattern_order = sorted(
            pattern.nodes(), key=lambda n: (-pattern.degree(n), repr(n))
        )
        # Target node order and adjacency maps are fixed for the lifetime of
        # one matcher, so they are computed once here instead of per search
        # state (the decomposition runs thousands of states per query).
        self._target_order = target.nodes()
        self._target_index = {node: i for i, node in enumerate(self._target_order)}
        # For each search depth, the already-mapped pattern nodes adjacent to
        # the pattern node placed at that depth, split by edge direction.
        self._mapped_predecessors: list[list[Node]] = []
        self._mapped_successors: list[list[Node]] = []
        for depth, pattern_node in enumerate(self._pattern_order):
            earlier = self._pattern_order[:depth]
            self._mapped_predecessors.append(
                [n for n in earlier if pattern.has_edge(n, pattern_node)]
            )
            self._mapped_successors.append(
                [n for n in earlier if pattern.has_edge(pattern_node, n)]
            )
        self._deadline: float | None = None
        self._states_explored = 0
        self._timed_out = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def find_one(self) -> IsomorphismMapping | None:
        """Return one matching or ``None`` (also ``None`` on timeout)."""
        for match in self.iter_matches(limit=1):
            return match
        return None

    def find_all(self, limit: int | None = None) -> list[IsomorphismMapping]:
        """Return all (de-duplicated) matchings, optionally capped at ``limit``."""
        return list(self.iter_matches(limit=limit))

    def exists(self) -> bool:
        """True when at least one subgraph isomorphism exists."""
        return self.find_one() is not None

    @property
    def states_explored(self) -> int:
        """Number of search states expanded in the last call (for diagnostics)."""
        return self._states_explored

    @property
    def timed_out(self) -> bool:
        """True when the last enumeration was cut short by the timeout."""
        return self._timed_out

    def iter_matches(self, limit: int | None = None) -> Iterator[IsomorphismMapping]:
        """Yield matchings lazily.

        Matchings whose covered target-edge set has already been produced are
        suppressed when ``deduplicate_by_edges`` is set, because they would
        lead to identical branches in the decomposition tree.
        """
        if limit is None:
            limit = self.options.max_matches
        if self.pattern.num_nodes == 0:
            return
        if self.pattern.num_nodes > self.target.num_nodes:
            return
        if self.pattern.num_edges > self.target.num_edges:
            return

        self._states_explored = 0
        self._timed_out = False
        if self.options.timeout_seconds is not None:
            self._deadline = time.monotonic() + self.options.timeout_seconds
        else:
            self._deadline = None

        seen_edge_sets: set[frozenset[Edge]] = set()
        produced = 0
        try:
            for mapping in self._extend({}, set()):
                candidate = IsomorphismMapping.from_dict(mapping)
                if self.options.deduplicate_by_edges:
                    edge_set = candidate.covered_edges(self.pattern)
                    if edge_set in seen_edge_sets:
                        continue
                    seen_edge_sets.add(edge_set)
                yield candidate
                produced += 1
                if limit is not None and produced >= limit:
                    return
        except SearchTimeout:
            self._timed_out = True
            return

    # ------------------------------------------------------------------
    # VF2 recursion
    # ------------------------------------------------------------------
    def _check_deadline(self) -> None:
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise SearchTimeout()

    def _extend(
        self, mapping: dict[Node, Node], used_targets: set[Node]
    ) -> Iterator[dict[Node, Node]]:
        """Depth-first extension of a partial mapping."""
        self._states_explored += 1
        if self._deadline is not None:
            self._check_deadline()

        depth = len(mapping)
        if depth == len(self._pattern_order):
            yield dict(mapping)
            return

        pattern_node = self._pattern_order[depth]
        for target_node in self._candidate_targets(depth, mapping, used_targets):
            if not self._feasible(pattern_node, target_node, mapping):
                continue
            mapping[pattern_node] = target_node
            used_targets.add(target_node)
            yield from self._extend(mapping, used_targets)
            del mapping[pattern_node]
            used_targets.discard(target_node)

    def _candidate_targets(
        self,
        depth: int,
        mapping: dict[Node, Node],
        used_targets: set[Node],
    ) -> list[Node]:
        """Candidate target nodes for the pattern node placed at ``depth``.

        When the pattern node is adjacent to an already-mapped pattern node,
        candidates are restricted to the neighbourhood of the corresponding
        target node, which is the key VF2 pruning step.  The adjacency
        dictionaries of the target are intersected directly (smallest first)
        rather than copied into fresh sets per state, and the result keeps
        the target's node-insertion order via the precomputed index.
        """
        adjacency: list[Mapping[Node, object]] = [
            self.target.successor_map(mapping[mapped_pattern])
            for mapped_pattern in self._mapped_predecessors[depth]
        ]
        adjacency.extend(
            self.target.predecessor_map(mapping[mapped_pattern])
            for mapped_pattern in self._mapped_successors[depth]
        )
        if not adjacency:
            return [node for node in self._target_order if node not in used_targets]
        adjacency.sort(key=len)
        smallest, rest = adjacency[0], adjacency[1:]
        candidates = [
            node
            for node in smallest
            if node not in used_targets and all(node in adj for adj in rest)
        ]
        candidates.sort(key=self._target_index.__getitem__)
        return candidates

    def _feasible(
        self, pattern_node: Node, target_node: Node, mapping: dict[Node, Node]
    ) -> bool:
        """Consistency + look-ahead checks for adding one pair to the mapping."""
        if self.options.node_compatible is not None and not self.options.node_compatible(
            pattern_node, target_node
        ):
            return False

        # Degree look-ahead: the target node must have enough connectivity
        # left to host the pattern node (valid for monomorphism because every
        # pattern edge needs a distinct target edge).
        if self.target.out_degree(target_node) < self.pattern.out_degree(pattern_node):
            return False
        if self.target.in_degree(target_node) < self.pattern.in_degree(pattern_node):
            return False

        for mapped_pattern, mapped_target in mapping.items():
            forward_pattern = self.pattern.has_edge(pattern_node, mapped_pattern)
            backward_pattern = self.pattern.has_edge(mapped_pattern, pattern_node)
            forward_target = self.target.has_edge(target_node, mapped_target)
            backward_target = self.target.has_edge(mapped_target, target_node)

            if forward_pattern and not forward_target:
                return False
            if backward_pattern and not backward_target:
                return False
            if self.options.induced:
                if forward_target and not forward_pattern:
                    return False
                if backward_target and not backward_pattern:
                    return False
        return True


# ----------------------------------------------------------------------
# convenience wrappers
# ----------------------------------------------------------------------
def find_subgraph_isomorphism(
    pattern: DiGraph,
    target: DiGraph,
    induced: bool = False,
    timeout_seconds: float | None = None,
) -> IsomorphismMapping | None:
    """Return one subgraph isomorphism from ``pattern`` into ``target``."""
    matcher = VF2Matcher(
        pattern,
        target,
        MatcherOptions(induced=induced, timeout_seconds=timeout_seconds),
    )
    return matcher.find_one()


def find_all_subgraph_isomorphisms(
    pattern: DiGraph,
    target: DiGraph,
    induced: bool = False,
    limit: int | None = None,
    timeout_seconds: float | None = None,
) -> list[IsomorphismMapping]:
    """Return all (edge-set-distinct) subgraph isomorphisms, up to ``limit``."""
    matcher = VF2Matcher(
        pattern,
        target,
        MatcherOptions(induced=induced, timeout_seconds=timeout_seconds),
    )
    return matcher.find_all(limit=limit)


def has_subgraph_isomorphic_to(pattern: DiGraph, target: DiGraph) -> bool:
    """True when ``target`` contains a subgraph isomorphic to ``pattern``."""
    return find_subgraph_isomorphism(pattern, target) is not None


def are_isomorphic(first: DiGraph, second: DiGraph) -> bool:
    """Full graph isomorphism test (Definition 3): same |V|, |E| and structure."""
    if first.num_nodes != second.num_nodes or first.num_edges != second.num_edges:
        return False
    degree_signature = lambda g: sorted(  # noqa: E731 - tiny local helper
        (g.in_degree(n), g.out_degree(n)) for n in g.nodes()
    )
    if degree_signature(first) != degree_signature(second):
        return False
    matcher = VF2Matcher(first, second, MatcherOptions(induced=True))
    return matcher.exists()
