"""The communication library: the "standard cells" of topology synthesis.

Section 3 of the paper draws an analogy with logic synthesis: the input
communication pattern plays the role of an uncommitted logic function and the
communication primitives play the role of standard cells.  The library
collects the primitives (gossip, broadcast, paths and loops of various sizes),
assigns them the numeric IDs that appear in the decomposition listings of
Section 5, and defines the order in which the branch-and-bound algorithm
tries them.

The default library mirrors the paper's choices: minimum gossip and broadcast
graphs that have efficient 2-D implementations plus paths and loops of
various sizes.  Larger primitives are deliberately excluded because (a) they
would need more wiring resources than the metal layers allow and (b) they are
increasingly unlikely to occur in real application graphs (Section 3).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.primitives import (
    CommunicationPrimitive,
    PrimitiveKind,
    make_broadcast_primitive,
    make_gossip_primitive,
    make_loop_primitive,
    make_multicast_primitive,
    make_path_primitive,
)
from repro.exceptions import LibraryError


@dataclass
class LibraryEntry:
    """A primitive together with its position (ID) in the library."""

    primitive_id: int
    primitive: CommunicationPrimitive

    @property
    def name(self) -> str:
        """The primitive's display name."""
        return self.primitive.name

    @property
    def size(self) -> int:
        """Number of nodes of the primitive."""
        return self.primitive.size


class CommunicationLibrary:
    """Ordered collection of communication primitives.

    The iteration order is the order the decomposition algorithm tries
    matchings in (outermost loop of the pseudo-code in Figure 3).  By default
    entries are ordered the way they were added; :meth:`sorted_for_search`
    returns a copy ordered largest-requirement-first, which makes the greedy
    first branch of the search capture as much structure as possible.
    """

    def __init__(self, name: str = "library") -> None:
        self.name = name
        self._entries: list[LibraryEntry] = []
        self._by_name: dict[str, LibraryEntry] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, primitive: CommunicationPrimitive) -> LibraryEntry:
        """Validate and append a primitive; returns the created entry."""
        if primitive.name in self._by_name:
            raise LibraryError(f"primitive {primitive.name!r} is already in the library")
        primitive.validate()
        entry = LibraryEntry(primitive_id=len(self._entries) + 1, primitive=primitive)
        primitive.primitive_id = entry.primitive_id
        self._entries.append(entry)
        self._by_name[primitive.name] = entry
        return entry

    def extend(self, primitives: Iterable[CommunicationPrimitive]) -> None:
        """Add several primitives in order."""
        for primitive in primitives:
            self.add(primitive)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LibraryEntry]:
        return iter(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def entries(self) -> list[LibraryEntry]:
        """All entries in insertion (ID) order."""
        return list(self._entries)

    def primitives(self) -> list[CommunicationPrimitive]:
        """All primitives in insertion (ID) order."""
        return [entry.primitive for entry in self._entries]

    def by_name(self, name: str) -> CommunicationPrimitive:
        """Look a primitive up by name (raises :class:`LibraryError`)."""
        try:
            return self._by_name[name].primitive
        except KeyError as error:
            raise LibraryError(f"no primitive named {name!r} in library {self.name!r}") from error

    def by_id(self, primitive_id: int) -> CommunicationPrimitive:
        """Look a primitive up by numeric ID (raises :class:`LibraryError`)."""
        for entry in self._entries:
            if entry.primitive_id == primitive_id:
                return entry.primitive
        raise LibraryError(f"no primitive with id {primitive_id} in library {self.name!r}")

    def by_kind(self, kind: PrimitiveKind) -> list[CommunicationPrimitive]:
        """All primitives of one :class:`PrimitiveKind`."""
        return [entry.primitive for entry in self._entries if entry.primitive.kind is kind]

    # ------------------------------------------------------------------
    # search ordering / filtering
    # ------------------------------------------------------------------
    def sorted_for_search(self) -> list[LibraryEntry]:
        """Entries ordered by decreasing requirement-edge count (ties: id).

        Trying dense primitives (gossip) before sparse ones (paths) lets the
        first depth-first branch absorb as many application edges as possible,
        which both tightens the branch-and-bound upper bound early and mirrors
        the decomposition listings of the paper (MGG4 matches come first).
        """
        return sorted(
            self._entries,
            key=lambda entry: (-entry.primitive.num_requirement_edges, entry.primitive_id),
        )

    def applicable_to(self, num_nodes: int, num_edges: int) -> list[LibraryEntry]:
        """Entries that could possibly match a graph of the given size."""
        return [
            entry
            for entry in self.sorted_for_search()
            if entry.primitive.size <= num_nodes
            and entry.primitive.num_requirement_edges <= num_edges
        ]

    def max_diameter(self) -> int:
        """Largest internal-route diameter over the library.

        Section 4.3 observes that any decomposition bounds the maximum hop
        count between communicating nodes by the largest diameter in the
        library; this accessor lets callers verify that property.
        """
        return max((entry.primitive.diameter() for entry in self._entries), default=0)

    def describe(self) -> str:
        """Multi-line human-readable summary (used by examples and reports)."""
        lines = [f"Communication library {self.name!r} ({len(self)} primitives)"]
        for entry in self._entries:
            primitive = entry.primitive
            lines.append(
                f"  [{entry.primitive_id:2d}] {primitive.name:<8s} kind={primitive.kind.value:<12s} "
                f"nodes={primitive.size:2d} req_edges={primitive.num_requirement_edges:2d} "
                f"impl_edges={primitive.num_implementation_edges:2d} rounds={primitive.num_rounds}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# default library builders
# ----------------------------------------------------------------------
def default_library(
    max_gossip_size: int = 4,
    broadcast_sizes: Sequence[int] = (3, 4),
    loop_sizes: Sequence[int] = (4, 5, 6),
    path_sizes: Sequence[int] = (3, 4),
    include_pair_gossip: bool = True,
    name: str = "default",
) -> CommunicationLibrary:
    """The library used throughout the paper's experiments.

    ID 1 is the gossip graph MGG4, ID 2 the one-to-four broadcast G1to4 and
    ID 3 the one-to-three broadcast G1to3, matching the decomposition
    listings in Section 5 (``1: MGG4``, ``2: G124``, ``3: G123``); loops and
    paths of various sizes follow.
    """
    library = CommunicationLibrary(name=name)
    gossip_size = 4
    while gossip_size <= max_gossip_size:
        library.add(make_gossip_primitive(gossip_size))
        gossip_size *= 2
    for receivers in sorted(broadcast_sizes, reverse=True):
        library.add(make_broadcast_primitive(receivers))
    for size in loop_sizes:
        library.add(make_loop_primitive(size))
    for size in path_sizes:
        library.add(make_path_primitive(size))
    if include_pair_gossip:
        library.add(make_gossip_primitive(2, name="MGG2"))
    return library


def aes_library(name: str = "aes") -> CommunicationLibrary:
    """The compact library sufficient for the AES experiment of Section 5.2.

    The AES application graph decomposes into column gossips (MGG4) and row
    loops (L4); the broadcast primitives are kept so the search space matches
    the paper's setup.
    """
    return default_library(
        max_gossip_size=4,
        broadcast_sizes=(3, 4),
        loop_sizes=(4,),
        path_sizes=(3,),
        include_pair_gossip=False,
        name=name,
    )


def extended_library(name: str = "extended") -> CommunicationLibrary:
    """A richer library (gossip up to 8, multicast, longer loops/paths).

    Used by the ablation benchmark that studies how library content affects
    decomposition quality and run time.
    """
    library = default_library(
        max_gossip_size=8,
        broadcast_sizes=(3, 4, 7),
        loop_sizes=(4, 5, 6, 8),
        path_sizes=(3, 4, 5),
        name=name,
    )
    library.add(make_multicast_primitive(2))
    library.add(make_multicast_primitive(5))
    return library


def minimal_library(name: str = "minimal") -> CommunicationLibrary:
    """Paths and pair-gossip only — the degenerate library for ablations."""
    library = CommunicationLibrary(name=name)
    library.add(make_path_primitive(3))
    library.add(make_path_primitive(2, name="P2"))
    library.add(make_gossip_primitive(2, name="MGG2"))
    return library
