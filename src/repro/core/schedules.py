"""Communication schedules for the primitives in the library.

Figure 1 of the paper annotates every implementation graph with the round
numbers of an *optimal schedule*: the sequence of pairwise transfers that
completes the primitive's communication problem (gossiping, broadcasting, ...)
in the minimum number of rounds, under the constraint that **any processor
can participate in at most one communication transaction per round**.

These schedules serve two purposes in the flow:

1. they certify that an implementation graph really is a minimum gossip /
   broadcast graph (the library validation replays the schedule and checks
   that every node ends up with the required information in the
   theoretical minimum number of rounds), and
2. they seed the routing tables of the synthesized architecture
   (Section 4.5): if the optimal schedule delivers node 1's message to
   node 4 through node 3, then the routing table of node 1 lists node 3 as
   the next hop towards node 4.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.graph import DiGraph, Node
from repro.exceptions import ScheduleError


@dataclass(frozen=True)
class Transfer:
    """A single directed message transfer within one round."""

    sender: Node
    receiver: Node

    def reversed(self) -> "Transfer":
        """The same transfer in the opposite direction."""
        return Transfer(self.receiver, self.sender)

    def __repr__(self) -> str:
        return f"{self.sender!r}->{self.receiver!r}"


@dataclass(frozen=True)
class Round:
    """One communication round: a set of transfers that happen in parallel.

    The telephone-model constraint of Figure 1 requires every node to appear
    in at most one transfer per round (counting both ends).
    """

    transfers: tuple[Transfer, ...]

    @classmethod
    def of(cls, *pairs: tuple[Node, Node]) -> "Round":
        """A round of one-way transfers, one per (sender, receiver) pair."""
        return cls(tuple(Transfer(sender, receiver) for sender, receiver in pairs))

    @classmethod
    def exchanges(cls, *pairs: tuple[Node, Node]) -> "Round":
        """Build a round of bidirectional exchanges (used by gossip)."""
        transfers: list[Transfer] = []
        for first, second in pairs:
            transfers.append(Transfer(first, second))
            transfers.append(Transfer(second, first))
        return cls(tuple(transfers))

    def participants(self) -> set[Node]:
        """Every node that sends or receives in this round."""
        nodes: set[Node] = set()
        for transfer in self.transfers:
            nodes.add(transfer.sender)
            nodes.add(transfer.receiver)
        return nodes

    def is_telephone_legal(self) -> bool:
        """Each node participates in at most one *pairwise* transaction.

        A bidirectional exchange between the same pair counts as a single
        transaction, matching the full-duplex assumption of gossip schedules.
        """
        pair_of: dict[Node, frozenset[Node]] = {}
        for transfer in self.transfers:
            pair = frozenset((transfer.sender, transfer.receiver))
            for node in (transfer.sender, transfer.receiver):
                if node in pair_of and pair_of[node] != pair:
                    return False
                pair_of[node] = pair
        return True

    def __iter__(self) -> Iterator[Transfer]:
        return iter(self.transfers)

    def __len__(self) -> int:
        return len(self.transfers)


@dataclass(frozen=True)
class CommunicationSchedule:
    """An ordered sequence of rounds implementing a communication primitive."""

    rounds: tuple[Round, ...]

    @classmethod
    def from_rounds(cls, rounds: Iterable[Round]) -> "CommunicationSchedule":
        """Assemble a schedule from an iterable of rounds."""
        return cls(tuple(rounds))

    @property
    def num_rounds(self) -> int:
        """Number of rounds in the schedule."""
        return len(self.rounds)

    def all_transfers(self) -> list[Transfer]:
        """Every transfer of every round, flattened in order."""
        return [transfer for round_ in self.rounds for transfer in round_]

    def participants(self) -> set[Node]:
        """Every node that appears in some round."""
        nodes: set[Node] = set()
        for round_ in self.rounds:
            nodes |= round_.participants()
        return nodes

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate_against_graph(self, implementation: DiGraph) -> None:
        """Every scheduled transfer must use an edge of the implementation graph."""
        for index, round_ in enumerate(self.rounds):
            if not round_.is_telephone_legal():
                raise ScheduleError(
                    f"round {index}: a node participates in more than one transaction"
                )
            for transfer in round_:
                if not implementation.has_edge(transfer.sender, transfer.receiver):
                    raise ScheduleError(
                        f"round {index}: transfer {transfer!r} uses a link that is "
                        "not present in the implementation graph"
                    )

    def simulate_knowledge(self, nodes: Sequence[Node]) -> dict[Node, set[Node]]:
        """Replay the schedule in the gossip model.

        Every node starts knowing only its own token; a transfer forwards the
        sender's *entire accumulated knowledge* to the receiver (the standard
        gossip/broadcast dissemination model).  Returns the final knowledge
        sets.  Transfers within one round use the knowledge available at the
        *start* of the round, so simultaneous exchanges are order-independent.
        """
        knowledge: dict[Node, set[Node]] = {node: {node} for node in nodes}
        for round_ in self.rounds:
            snapshot = {node: set(known) for node, known in knowledge.items()}
            for transfer in round_:
                if transfer.sender not in knowledge or transfer.receiver not in knowledge:
                    raise ScheduleError(
                        f"transfer {transfer!r} references a node outside the primitive"
                    )
                knowledge[transfer.receiver] |= snapshot[transfer.sender]
        return knowledge

    def completes_gossip(self, nodes: Sequence[Node]) -> bool:
        """True when, after the schedule, every node knows every token."""
        universe = set(nodes)
        knowledge = self.simulate_knowledge(nodes)
        return all(knowledge[node] == universe for node in nodes)

    def completes_broadcast(self, root: Node, nodes: Sequence[Node]) -> bool:
        """True when every node has learned the root's token."""
        knowledge = self.simulate_knowledge(nodes)
        return all(root in knowledge[node] for node in nodes)


# ----------------------------------------------------------------------
# theoretical lower bounds (telephone model)
# ----------------------------------------------------------------------
def broadcast_round_lower_bound(num_nodes: int) -> int:
    """Minimum rounds to broadcast to ``num_nodes`` nodes: ceil(log2 n)."""
    if num_nodes < 1:
        raise ScheduleError("broadcast needs at least one node")
    return math.ceil(math.log2(num_nodes)) if num_nodes > 1 else 0

def gossip_round_lower_bound(num_nodes: int) -> int:
    """Minimum rounds for all-to-all gossip in the telephone model.

    The classical result (Knodel): ``ceil(log2 n)`` rounds for even ``n`` and
    ``ceil(log2 n) + 1`` for odd ``n`` (``n >= 4``); 1 round for ``n == 2``.
    """
    if num_nodes < 2:
        raise ScheduleError("gossip needs at least two nodes")
    base = math.ceil(math.log2(num_nodes))
    if num_nodes == 2:
        return 1
    return base if num_nodes % 2 == 0 else base + 1


# ----------------------------------------------------------------------
# schedule generators for the standard primitives
# ----------------------------------------------------------------------
def hypercube_gossip_schedule(nodes: Sequence[Node]) -> CommunicationSchedule:
    """Optimal gossip schedule on a hypercube of ``2^k`` nodes.

    Round ``d`` exchanges information across dimension ``d``: node ``i``
    exchanges with node ``i XOR 2^d``.  After ``k = log2(n)`` rounds every
    node knows everything, which matches the telephone-model lower bound for
    even ``n``; the 4-node case reduces exactly to the MGG-4 schedule
    described in Section 4.5 of the paper ((1,3),(2,4) then (1,2),(3,4) with
    the paper's node labelling).
    """
    count = len(nodes)
    if count < 2 or count & (count - 1):
        raise ScheduleError("hypercube gossip requires a power-of-two node count >= 2")
    dimensions = count.bit_length() - 1
    rounds: list[Round] = []
    # Iterate dimensions from the highest to the lowest so that the 4-node
    # case reproduces the paper's MGG-4 schedule verbatim: (1,3),(2,4) in the
    # first round and (1,2),(3,4) in the second.
    for dimension in reversed(range(dimensions)):
        pairs: list[tuple[Node, Node]] = []
        for index in range(count):
            partner = index ^ (1 << dimension)
            if index < partner:
                pairs.append((nodes[index], nodes[partner]))
        rounds.append(Round.exchanges(*pairs))
    return CommunicationSchedule.from_rounds(rounds)


def pair_exchange_schedule(first: Node, second: Node) -> CommunicationSchedule:
    """Gossip between two nodes: a single bidirectional exchange."""
    return CommunicationSchedule.from_rounds([Round.exchanges((first, second))])


def binomial_broadcast_schedule(nodes: Sequence[Node]) -> CommunicationSchedule:
    """Optimal broadcast from ``nodes[0]`` using the binomial-tree doubling scheme.

    In round ``r`` every node that already holds the message forwards it to a
    node that does not, so the number of informed nodes doubles each round and
    broadcast finishes in ``ceil(log2 n)`` rounds — the lower bound.
    """
    if not nodes:
        raise ScheduleError("broadcast needs at least one node")
    informed: list[Node] = [nodes[0]]
    waiting: list[Node] = list(nodes[1:])
    rounds: list[Round] = []
    while waiting:
        pairs: list[tuple[Node, Node]] = []
        senders = list(informed)
        for sender in senders:
            if not waiting:
                break
            receiver = waiting.pop(0)
            pairs.append((sender, receiver))
            informed.append(receiver)
        rounds.append(Round.of(*pairs))
    return CommunicationSchedule.from_rounds(rounds)


def ring_schedule(nodes: Sequence[Node], closed: bool) -> CommunicationSchedule:
    """Pipelined neighbour-to-neighbour forwarding along a path or loop.

    Odd-indexed edges and even-indexed edges alternate rounds so that the
    telephone constraint holds; the schedule is repeated enough times for a
    token injected at the head to traverse the whole structure.
    """
    count = len(nodes)
    if count < 2:
        raise ScheduleError("a path or loop needs at least two nodes")
    edges: list[tuple[Node, Node]] = [(nodes[i], nodes[i + 1]) for i in range(count - 1)]
    if closed:
        edges.append((nodes[-1], nodes[0]))
    # Greedy edge colouring: place every edge in the first phase where neither
    # endpoint is already busy.  A path needs two phases; an odd cycle three.
    phases: list[list[tuple[Node, Node]]] = []
    for edge in edges:
        for phase in phases:
            if all(edge[0] not in other and edge[1] not in other for other in phase):
                phase.append(edge)
                break
        else:
            phases.append([edge])
    repetitions = count - 1
    rounds: list[Round] = []
    for _ in range(repetitions):
        for phase in phases:
            rounds.append(Round.of(*phase))
    return CommunicationSchedule.from_rounds(rounds)
