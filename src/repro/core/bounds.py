"""Admissible lower bounds on the cost of decomposing a residual graph.

The branch-and-bound of Figure 3 prunes a branch as soon as its accumulated
cost plus a lower bound on the residual's coverage cost reaches the best
complete decomposition found so far.  Pruning is *exact* — the incumbent
trajectory (final cost and final cover) is bit-identical under any admissible
bound — so every bit of extra tightness here converts directly into fewer
nodes expanded without changing the answer.

This module provides a family of composable, provably-admissible residual
bounds, selected via ``DecompositionConfig.lower_bound``:

``"cost_model"``
    The legacy coarse bound: delegate to :meth:`CostModel.lower_bound`
    (one direct-link charge per residual edge; 1/3 link for bidirectional
    traffic under the link-count model).

``"cheapest_edge"``
    Per-edge cheapest-cover bound.  For every residual edge, the minimum
    cost contribution over the remainder charge and all library *cover
    offers* — positions of primitive representation edges — whose pairing
    and endpoint-degree requirements the edge can still satisfy.  Offers
    are precomputed once per (library, cost-model) pair; degree
    requirements are monotone under edge removal, so an offer infeasible
    now stays infeasible in every sub-residual and the bound is admissible
    for the whole subtree.

``"packing"``
    Degree/capability packing bound (flat cost models only, e.g. link
    count).  A node whose in- or out-degree exceeds what any single
    primitive provides forces a minimum primitive count.  Formally: per
    node-side, each primitive instance (and each remainder link) offers a
    limited number of paired-only and flexible edge slots at its full
    cost; dual prices per edge class feasible against every offer give,
    by LP weak duality, ``n_bi * y_bi + n_uni * y_uni`` as a lower bound
    on the total completion cost.  The price candidates (vertices of the
    dual polytope) are precomputed once per (library, cost-model) pair.

``"exact_small"``
    Solves residuals at or below ``exact_small_max_edges`` edges outright
    with a memoized mini branch-and-bound over *all* matchings (no
    enumeration clipping, no timeout) and returns the true optimum — the
    tightest admissible bound possible.  Solutions are memoized by the
    residual's :meth:`DiGraph.structural_fingerprint` and shared across
    the whole search (and across sub-solves).  Above the threshold it
    abstains (returns 0), so it is meant to be stacked.

``"stacked"`` (the default)
    The pointwise maximum of the three bounds above.  ``prune_reason``
    evaluates the parts lazily, cheapest first, and reports *which* part
    fired so :class:`SearchStatistics.branches_pruned_by` can attribute
    every prune.

All bounds memoize their values in a per-search bound cache keyed by the
residual's exact edge set (``structural_fingerprint``), alongside the
transposition table: sibling branches and transposed interleavings hit the
same residuals over and over.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.core.graph import ApplicationGraph, DiGraph, Edge, Node
from repro.core.isomorphism import MatcherOptions, VF2Matcher
from repro.core.matching import Matching
from repro.exceptions import DecompositionError

#: valid values for ``DecompositionConfig.lower_bound``
BOUND_NAMES = ("cost_model", "cheapest_edge", "packing", "exact_small", "stacked")

#: the parts the ``"stacked"`` bound combines, in lazy evaluation order
#: (cheapest to compute first; ``exact_small`` only when the others missed)
STACKED_PARTS = ("cheapest_edge", "packing", "exact_small")

_EPSILON = 1e-9


# ----------------------------------------------------------------------
# cover offers: how library primitives can absorb residual edges
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoverOffer:
    """One way a library primitive can absorb a single residual edge.

    An offer is a position ``(u, v)`` of a primitive's representation edge
    set, abstracted to what it requires of a residual edge ``(a, b)`` it
    could cover: whether the reverse edge must also be present (``paired``
    positions cover both directions of a full-duplex exchange at once) and
    the minimum out/in/bidirectional degrees of the two endpoints (a
    monomorphism maps rep degrees into residual degrees).  Degrees only
    shrink as the search subtracts matchings, so infeasibility is permanent
    down the subtree — the property that makes offer-gated bounds
    admissible.
    """

    primitive_name: str
    paired: bool
    source_out: int
    source_in: int
    source_bi: int
    target_out: int
    target_in: int
    target_bi: int
    hops: int
    """Internal route length of this position (for additive cost models)."""
    flat_share: float | None
    """Per-edge share of a binding-independent matching cost (flat cost
    models); ``None`` when the model prices edges individually."""

    def feasible(
        self,
        is_bidirectional: bool,
        source_degrees: tuple[int, int, int],
        target_degrees: tuple[int, int, int],
    ) -> bool:
        """Can this offer still cover an edge with these endpoint degrees?"""
        if self.paired and not is_bidirectional:
            return False
        out_degree, in_degree, bi_degree = source_degrees
        if out_degree < self.source_out or in_degree < self.source_in:
            return False
        if bi_degree < self.source_bi:
            return False
        out_degree, in_degree, bi_degree = target_degrees
        if out_degree < self.target_out or in_degree < self.target_in:
            return False
        return bi_degree >= self.target_bi


@dataclass(frozen=True)
class _SlotOffer:
    """Edge-slot supply of one primitive rep node side (packing bound).

    A single instance placed so that rep node ``u`` lands on residual node
    ``v`` supplies at most ``bi_slots`` paired-only and ``flex_slots``
    unrestricted edge slots on one side of ``v``, at full cost ``cost``.
    """

    bi_slots: int
    flex_slots: int
    cost: float


@dataclass(frozen=True)
class BoundTables:
    """Per-(library, cost-model) precomputation shared by all bound kinds."""

    offers: tuple[CoverOffer, ...]
    out_prices: tuple[tuple[float, float], ...]
    """Candidate ``(y_bi, y_uni)`` dual price pairs for out-sides."""
    in_prices: tuple[tuple[float, float], ...]
    """Candidate ``(y_bi, y_uni)`` dual price pairs for in-sides."""
    flat: bool
    """True when every primitive has a binding-independent matching cost
    (and the remainder a flat per-edge cost) — the packing prerequisite."""


def _paired_degree(graph: DiGraph, node: Node) -> int:
    """Number of full-duplex partners of ``node`` (mutual edge pairs)."""
    return sum(1 for other in graph.successors(node) if graph.has_edge(other, node))


def _dual_price_candidates(
    slot_offers: list[_SlotOffer],
) -> tuple[tuple[float, float], ...]:
    """Vertices of the dual price polytope for one node side.

    Feasibility for prices ``(y_bi, y_uni) >= 0``: every offer ``(b, f, c)``
    must satisfy ``b*y_bi + f*max(y_bi, y_uni) <= c`` — an instance collects
    at most ``b`` paired-class plus ``f`` any-class edge prices at one node
    side, and its collection must not exceed its cost (weak duality).  The
    maximum of a linear objective over this region is attained at one of:

    * ``(R, R)`` with ``R = min c/(b+f)`` — the best uniform price;
    * ``(0, U)`` with ``U = min c/f over f > 0`` — pricing only
      unidirectional edges;
    * intersections of two offer constraints in the ``y_uni >= y_bi``
      regime, validated against every offer.
    """
    offers = [offer for offer in slot_offers if offer.bi_slots + offer.flex_slots > 0]
    if not offers:
        return ()

    def feasible(y_bi: float, y_uni: float) -> bool:
        if y_bi < -_EPSILON or y_uni < -_EPSILON:
            return False
        top = max(y_bi, y_uni)
        return all(
            offer.bi_slots * y_bi + offer.flex_slots * top <= offer.cost + _EPSILON
            for offer in offers
        )

    candidates: list[tuple[float, float]] = []
    uniform = min(offer.cost / (offer.bi_slots + offer.flex_slots) for offer in offers)
    if feasible(uniform, uniform):
        candidates.append((uniform, uniform))
    flex_only = [offer for offer in offers if offer.flex_slots > 0]
    if flex_only:
        uni_price = min(offer.cost / offer.flex_slots for offer in flex_only)
        if feasible(0.0, uni_price):
            candidates.append((0.0, uni_price))
    # pairwise constraint intersections in the y_uni >= y_bi regime
    for i, first in enumerate(offers):
        for second in offers[i + 1 :]:
            determinant = (
                first.bi_slots * second.flex_slots - second.bi_slots * first.flex_slots
            )
            if abs(determinant) < _EPSILON:
                continue
            y_bi = (first.cost * second.flex_slots - second.cost * first.flex_slots) / determinant
            y_uni = (first.bi_slots * second.cost - second.bi_slots * first.cost) / determinant
            if y_uni >= y_bi - _EPSILON and feasible(y_bi, y_uni):
                candidates.append((max(y_bi, 0.0), max(y_uni, 0.0)))
    # deduplicate (the same vertex often arises from several pairs)
    unique = {(round(y_bi, 12), round(y_uni, 12)) for y_bi, y_uni in candidates}
    return tuple(sorted(unique))


def _flat_matching_cost(cost_model, primitive) -> float | None:
    """Binding-independent total matching cost, when the model has one."""
    flat = getattr(cost_model, "flat_matching_cost", None)
    if flat is None:
        return None
    return flat(primitive)


def _build_tables(library, cost_model) -> BoundTables:
    """Compute the cover offers and packing prices for one pairing."""
    offers: set[CoverOffer] = set()
    out_slots: list[_SlotOffer] = []
    in_slots: list[_SlotOffer] = []
    flat = True
    flat_remainder = getattr(cost_model, "flat_remainder_edge_cost", lambda: None)()
    if flat_remainder is None:
        flat = False
    for entry in library.entries():
        primitive = entry.primitive
        representation = primitive.representation
        flat_cost = _flat_matching_cost(cost_model, primitive)
        if flat_cost is None:
            flat = False
        num_edges = primitive.num_requirement_edges
        paired_by_node = {
            node: _paired_degree(representation, node) for node in representation.nodes()
        }
        for source, target in representation.edges():
            route = primitive.route_for(source, target)
            offers.add(
                CoverOffer(
                    primitive_name=primitive.name,
                    paired=representation.has_edge(target, source),
                    source_out=representation.out_degree(source),
                    source_in=representation.in_degree(source),
                    source_bi=paired_by_node[source],
                    target_out=representation.out_degree(target),
                    target_in=representation.in_degree(target),
                    target_bi=paired_by_node[target],
                    hops=max(len(route) - 1, 1),
                    flat_share=None if flat_cost is None else flat_cost / num_edges,
                )
            )
        if flat_cost is not None:
            for node in representation.nodes():
                paired = paired_by_node[node]
                out_degree = representation.out_degree(node)
                in_degree = representation.in_degree(node)
                if out_degree:
                    out_slots.append(_SlotOffer(paired, out_degree - paired, flat_cost))
                if in_degree:
                    in_slots.append(_SlotOffer(paired, in_degree - paired, flat_cost))
    if flat:
        remainder_slot = _SlotOffer(0, 1, flat_remainder)
        out_slots.append(remainder_slot)
        in_slots.append(remainder_slot)
        out_prices = _dual_price_candidates(out_slots)
        in_prices = _dual_price_candidates(in_slots)
    else:
        out_prices = ()
        in_prices = ()
    ordered = sorted(
        offers,
        key=lambda offer: (
            offer.flat_share if offer.flat_share is not None else offer.hops,
            offer.primitive_name,
        ),
    )
    return BoundTables(
        offers=tuple(ordered), out_prices=out_prices, in_prices=in_prices, flat=flat
    )


#: library -> {cost-model identity -> BoundTables}; the offers and packing
#: prices depend only on the (library, cost-model) pair, so they are computed
#: once and shared by every decomposition over that pair
_TABLES_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def bound_tables(library, cost_model) -> BoundTables:
    """The (memoized) offer/price tables for one (library, cost-model) pair."""
    per_library = _TABLES_CACHE.setdefault(library, {})
    key = (type(cost_model).__module__, type(cost_model).__qualname__, repr(cost_model))
    tables = per_library.get(key)
    if tables is None:
        tables = _build_tables(library, cost_model)
        per_library[key] = tables
    return tables


# ----------------------------------------------------------------------
# the bound family
# ----------------------------------------------------------------------
class ResidualBound:
    """Interface shared by all residual lower bounds.

    ``value`` is memoized per residual edge set in a per-search bound
    cache; ``prune_reason`` is the branch-and-bound entry point: it returns
    the name of the bound that proves ``cost(residual) >= target`` (so the
    branch cannot beat the incumbent), or ``None`` when no prune is proven.
    """

    name: str = "bound"

    def __init__(self, statistics=None) -> None:
        self._cache: dict[frozenset[Edge], float] = {}
        self._statistics = statistics

    def value(self, residual: DiGraph) -> float:
        """Memoized admissible lower bound on the residual's coverage cost."""
        key = residual.structural_fingerprint()
        cached = self._cache.get(key)
        if cached is not None:
            if self._statistics is not None:
                self._statistics.bound_cache_hits += 1
            return cached
        if self._statistics is not None:
            self._statistics.bound_cache_misses += 1
        computed = self._compute(residual)
        self._cache[key] = computed
        return computed

    def prune_reason(self, residual: DiGraph, target: float) -> str | None:
        """Name of the bound proving ``cost >= target``, or ``None``."""
        if target == float("inf"):
            return None
        if self.value(residual) >= target:
            return self.name
        return None

    def _compute(self, residual: DiGraph) -> float:
        raise NotImplementedError


class CostModelBound(ResidualBound):
    """The legacy coarse bound: delegate to :meth:`CostModel.lower_bound`."""

    name = "cost_model"

    def __init__(self, cost_model, acg: ApplicationGraph, statistics=None) -> None:
        super().__init__(statistics)
        self._cost_model = cost_model
        self._acg = acg

    def _compute(self, residual: DiGraph) -> float:
        return self._cost_model.lower_bound(residual, self._acg)


class CheapestEdgeBound(ResidualBound):
    """Per-edge cheapest-cover bound over the library's offer table.

    Every residual edge is charged the minimum over (a) its remainder
    charge and (b) the charge of every cover offer that is still feasible
    for it (pairing + endpoint degrees).  Distinct edges are covered by
    distinct positions, flat matching costs distribute exactly over their
    requirement edges, and additive models charge each covered edge its own
    route — so the per-edge minima sum to an admissible bound.
    """

    name = "cheapest_edge"

    def __init__(self, tables: BoundTables, cost_model, acg, statistics=None) -> None:
        super().__init__(statistics)
        self._tables = tables
        self._cost_model = cost_model
        self._acg = acg

    def _compute(self, residual: DiGraph) -> float:
        cost_model = self._cost_model
        acg = self._acg
        offers = self._tables.offers
        degrees: dict[Node, tuple[int, int, int]] = {}

        def degrees_of(node: Node) -> tuple[int, int, int]:
            cached = degrees.get(node)
            if cached is None:
                cached = (
                    residual.out_degree(node),
                    residual.in_degree(node),
                    _paired_degree(residual, node),
                )
                degrees[node] = cached
            return cached

        total = 0.0
        for source, target in residual.edges():
            edge = (source, target)
            is_bidirectional = residual.has_edge(target, source)
            source_degrees = degrees_of(source)
            target_degrees = degrees_of(target)
            cheapest = cost_model.edge_remainder_cost(acg, edge)
            for offer in offers:
                if not offer.feasible(is_bidirectional, source_degrees, target_degrees):
                    continue
                if offer.flat_share is not None:
                    charge = offer.flat_share
                else:
                    charge = cost_model.edge_cover_cost(acg, edge, offer.hops)
                if charge < cheapest:
                    cheapest = charge
            total += cheapest
        return total


class PackingBound(ResidualBound):
    """Degree/capability packing bound via per-node-side dual prices.

    For flat cost models only: each primitive instance supplies a bounded
    number of paired-only and flexible edge slots at any one node side, at
    its full (binding-independent) cost; a remainder link supplies one
    flexible slot at the flat remainder charge.  Any dual price pair
    feasible against every such offer prices a node side's residual demand
    ``n_bi * y_bi + n_uni * y_uni`` below the total completion cost (LP
    weak duality), so the bound is the best candidate price applied to the
    most demanding node side.  Hub nodes — broadcast centres, gossip
    columns — are exactly where this beats per-edge accounting.

    Abstains (bound 0) when the cost model is not flat.
    """

    name = "packing"

    def __init__(self, tables: BoundTables, statistics=None) -> None:
        super().__init__(statistics)
        self._tables = tables

    def _compute(self, residual: DiGraph) -> float:
        if not self._tables.flat:
            return 0.0
        out_prices = self._tables.out_prices
        in_prices = self._tables.in_prices
        best = 0.0
        for node in residual.nodes():
            out_degree = residual.out_degree(node)
            in_degree = residual.in_degree(node)
            if not out_degree and not in_degree:
                continue
            paired = _paired_degree(residual, node)
            if out_degree:
                bi, uni = paired, out_degree - paired
                for y_bi, y_uni in out_prices:
                    demand = bi * y_bi + uni * y_uni
                    if demand > best:
                        best = demand
            if in_degree:
                bi, uni = paired, in_degree - paired
                for y_bi, y_uni in in_prices:
                    demand = bi * y_bi + uni * y_uni
                    if demand > best:
                        best = demand
        return best


class ExactSmallBound(ResidualBound):
    """Exact optimum of small residuals via a memoized mini branch-and-bound.

    Residuals at or below ``max_edges`` edges are solved outright: the
    solver enumerates *every* matching of every primitive (no enumeration
    clipping, no timeout — unlike the outer search) and recurses on the
    sub-residual, memoizing each solved edge set by its structural
    fingerprint.  The memo doubles as a dynamic program: permuted matching
    orders collapse onto the same sub-residual entry, and entries are
    shared across the whole outer search.  The returned value is the true
    minimum completion cost, which bounds the outer search's (enumeration-
    limited) completions from below.  Above the threshold the bound
    abstains (returns 0), so it is meant to be stacked with the cheap
    bounds.
    """

    name = "exact_small"

    def __init__(
        self,
        library,
        cost_model,
        acg: ApplicationGraph,
        max_edges: int,
        statistics=None,
        floor: ResidualBound | None = None,
    ) -> None:
        super().__init__(statistics)
        self._library = library
        self._cost_model = cost_model
        self._acg = acg
        self.max_edges = max_edges
        self._floor = floor
        # additive models price the same covered edge set differently per
        # binding, so exactness requires enumerating every distinct mapping
        self._deduplicate = all(
            _flat_matching_cost(cost_model, entry.primitive) is not None
            for entry in library.entries()
        )

    def _compute(self, residual: DiGraph) -> float:
        if residual.num_edges == 0:
            return 0.0
        if residual.num_edges > self.max_edges:
            return 0.0
        if self._statistics is not None:
            self._statistics.exact_residuals_solved += 1
        cost_model = self._cost_model
        acg = self._acg
        best = cost_model.remainder_cost(residual, acg)
        for entry in self._library.sorted_for_search():
            primitive = entry.primitive
            if primitive.num_requirement_edges > residual.num_edges:
                continue
            if primitive.size > residual.num_nodes:
                continue
            matcher = VF2Matcher(
                primitive.representation,
                residual,
                MatcherOptions(
                    induced=False,
                    timeout_seconds=None,
                    deduplicate_by_edges=self._deduplicate,
                ),
            )
            for mapping in matcher.find_all(limit=None):
                matching = Matching.from_mapping(primitive, mapping)
                cost = cost_model.matching_cost(matching, acg)
                if cost >= best:
                    continue
                sub_residual = matching.subtract_from(residual)
                if self._floor is not None:
                    floor = self._floor.value(sub_residual)
                    if cost + floor >= best:
                        continue
                total = cost + self.value(sub_residual)
                if total < best:
                    best = total
        return best


class StackedBound(ResidualBound):
    """Pointwise maximum of several bounds, evaluated lazily cheap-first."""

    name = "stacked"

    def __init__(self, parts: list[ResidualBound]) -> None:
        super().__init__(statistics=None)
        self.parts = parts

    def value(self, residual: DiGraph) -> float:
        """Maximum of the part bounds (each part memoizes its own values)."""
        return max(part.value(residual) for part in self.parts)

    def prune_reason(self, residual: DiGraph, target: float) -> str | None:
        """First part (cheapest first) whose bound reaches ``target``."""
        if target == float("inf"):
            return None
        for part in self.parts:
            if part.value(residual) >= target:
                return part.name
        return None


def build_lower_bound(
    name: str,
    library,
    cost_model,
    acg: ApplicationGraph,
    exact_small_max_edges: int = 10,
    statistics=None,
) -> ResidualBound:
    """Construct the residual bound selected by ``name``.

    ``statistics`` (a :class:`SearchStatistics`) receives the bound-cache
    hit/miss counters and the number of residuals the exact solver handled.
    Raises :class:`DecompositionError` for unknown names.
    """
    if name not in BOUND_NAMES:
        raise DecompositionError(
            f"unknown lower bound {name!r}; expected one of {', '.join(BOUND_NAMES)}"
        )
    if name == "cost_model":
        return CostModelBound(cost_model, acg, statistics)
    tables = bound_tables(library, cost_model)
    if name == "cheapest_edge":
        return CheapestEdgeBound(tables, cost_model, acg, statistics)
    if name == "packing":
        return PackingBound(tables, statistics)
    cheapest = CheapestEdgeBound(tables, cost_model, acg, statistics)
    if name == "exact_small":
        return ExactSmallBound(
            library, cost_model, acg, exact_small_max_edges, statistics, floor=cheapest
        )
    exact = ExactSmallBound(
        library, cost_model, acg, exact_small_max_edges, statistics, floor=cheapest
    )
    return StackedBound([cheapest, PackingBound(tables, statistics), exact])
