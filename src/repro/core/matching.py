"""Matchings: a library primitive instantiated on application-graph vertices.

Definition 4 of the paper calls a subgraph isomorphism from the input graph
to one of the library graphs a *matching* and assigns a cost to it.  A
matching binds the primitive's local vertex labels (1..n) to concrete cores
of the Application Characterization Graph, which immediately yields

* the set of ACG edges the matching *covers* (and that are subtracted from
  the graph before the decomposition recurses),
* the physical links of the primitive's implementation graph expressed in
  core identifiers (what the synthesized topology will contain), and
* the route every covered ACG edge takes over those links (what the cost
  model charges energy for, and what the routing table records).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from functools import cached_property

from repro.core.graph import ApplicationGraph, DiGraph, Edge, Node
from repro.core.isomorphism import IsomorphismMapping
from repro.core.primitives import CommunicationPrimitive
from repro.exceptions import DecompositionError


@dataclass(frozen=True)
class Matching:
    """One instantiation of a library primitive inside an application graph."""

    primitive: CommunicationPrimitive
    assignment: tuple[tuple[Node, Node], ...]
    """Sorted ``(primitive_node, core)`` pairs."""

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(
        cls, primitive: CommunicationPrimitive, mapping: IsomorphismMapping
    ) -> "Matching":
        """Build a matching from a VF2 isomorphism mapping."""
        return cls.from_dict(primitive, mapping.as_dict())

    @classmethod
    def from_dict(
        cls, primitive: CommunicationPrimitive, mapping: Mapping[Node, Node]
    ) -> "Matching":
        """Build a matching from a primitive-node -> core dict (validated)."""
        expected = set(primitive.representation.nodes())
        provided = set(mapping)
        if expected != provided:
            raise DecompositionError(
                f"matching for {primitive.name!r} must bind exactly the primitive "
                f"nodes {sorted(expected)}, got {sorted(provided, key=repr)}"
            )
        cores = list(mapping.values())
        if len(set(cores)) != len(cores):
            raise DecompositionError(
                f"matching for {primitive.name!r} maps two primitive nodes to the same core"
            )
        ordered = tuple(sorted(mapping.items(), key=lambda kv: repr(kv[0])))
        return cls(primitive=primitive, assignment=ordered)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[Node, Node]:
        """Plain-dict view of the primitive-node -> core binding."""
        return dict(self.assignment)

    @cached_property
    def _binding_table(self) -> dict[Node, Node]:
        # cached_property writes straight into the instance __dict__, which
        # sidesteps the frozen dataclass' __setattr__.
        return dict(self.assignment)

    def core_of(self, primitive_node: Node) -> Node:
        """The core a primitive node is bound to."""
        try:
            return self._binding_table[primitive_node]
        except KeyError:
            raise DecompositionError(
                f"primitive node {primitive_node!r} is not bound by this matching"
            ) from None

    def cores(self) -> list[Node]:
        """All cores used by this matching."""
        return [core for _, core in self.assignment]

    @cached_property
    def _covered_edges(self) -> frozenset[Edge]:
        binding = self._binding_table
        return frozenset(
            (binding[source], binding[target])
            for source, target in self.primitive.representation.edges()
        )

    def covered_edges(self) -> frozenset[Edge]:
        """ACG edges that are images of the primitive's requirement edges.

        The set is immutable and queried on every candidate-inheritance
        filter of the decomposition search, so it is computed once per
        matching and cached.
        """
        return self._covered_edges

    def implementation_links(self) -> list[Edge]:
        """Physical (directed) links of the implementation graph, in core IDs."""
        binding = self.as_dict()
        return [
            (binding[source], binding[target])
            for source, target in self.primitive.implementation.edges()
        ]

    def physical_links(self) -> set[frozenset[Node]]:
        """Undirected physical channels (two opposite edges share one link)."""
        return {frozenset(edge) for edge in self.implementation_links()}

    def route_in_cores(self, source_core: Node, target_core: Node) -> tuple[Node, ...]:
        """Route of the covered ACG edge ``source_core -> target_core`` in core IDs."""
        binding = self.as_dict()
        inverse = {core: node for node, core in binding.items()}
        if source_core not in inverse or target_core not in inverse:
            raise DecompositionError(
                f"cores ({source_core!r}, {target_core!r}) are not part of this matching"
            )
        route = self.primitive.route_for(inverse[source_core], inverse[target_core])
        return tuple(binding[node] for node in route)

    def routes_in_cores(self) -> dict[Edge, tuple[Node, ...]]:
        """All covered ACG edges with their routes expressed in core IDs."""
        binding = self.as_dict()
        routes: dict[Edge, tuple[Node, ...]] = {}
        for (source, target), route in self.primitive.internal_routes.items():
            key = (binding[source], binding[target])
            routes[key] = tuple(binding[node] for node in route)
        return routes

    # ------------------------------------------------------------------
    # graph operations
    # ------------------------------------------------------------------
    def verify_against(self, graph: DiGraph) -> None:
        """Raise if the matching's covered edges are not all present in ``graph``."""
        for source, target in self.covered_edges():
            if not graph.has_edge(source, target):
                raise DecompositionError(
                    f"matching {self.describe()} covers edge ({source!r} -> {target!r}) "
                    "which is not present in the graph"
                )

    def subtract_from(self, graph: DiGraph) -> DiGraph:
        """Definition 2: remove the covered edges, keep all vertices."""
        self.verify_against(graph)
        subgraph = graph.edge_induced_subgraph(self.covered_edges())
        return graph.graph_difference(subgraph)

    def covered_volume(self, acg: ApplicationGraph) -> float:
        """Total communication volume (bits) absorbed by this matching."""
        return sum(acg.volume(source, target) for source, target in self.covered_edges())

    def sort_key(self) -> tuple:
        """Canonical ordering key used for symmetry breaking in the search.

        Two matchings commute inside a decomposition (subtracting A then B
        leaves the same residual graph as B then A), so the branch-and-bound
        only explores matchings in non-decreasing canonical order along a
        branch; this removes the factorial blow-up of permuted but otherwise
        identical decompositions.
        """
        return self._sort_key

    @cached_property
    def _sort_key(self) -> tuple:
        return (
            self.primitive.primitive_id or 0,
            self.primitive.name,
            tuple(sorted(repr(core) for _, core in self.assignment)),
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line description in the paper's output format.

        The listings in Section 5 look like
        ``1: MGG4,  Mapping: (1 1), (2 5), (3 9), (4 13)``.
        """
        mapping_text = ", ".join(f"({node} {core})" for node, core in self.assignment)
        identifier = self.primitive.primitive_id
        prefix = f"{identifier}: " if identifier is not None else ""
        return f"{prefix}{self.primitive.name},  Mapping: {mapping_text}"

    def __repr__(self) -> str:
        return f"<Matching {self.describe()}>"


@dataclass(frozen=True)
class RemainderGraph:
    """The part of the ACG no library primitive could absorb.

    The paper keeps the remainder graph ``R(V_R, E_R)`` as an explicit term
    of the decomposition (Equation 2); its edges are implemented as direct
    point-to-point links in the synthesized architecture.
    """

    graph: DiGraph

    @property
    def num_edges(self) -> int:
        """Number of uncovered ACG edges."""
        return self.graph.num_edges

    @property
    def is_empty(self) -> bool:
        """True when every ACG edge was covered by a primitive."""
        return self.graph.num_edges == 0

    def edges(self) -> list[Edge]:
        """The uncovered edges, implemented as point-to-point links."""
        return self.graph.edges()

    def describe(self) -> str:
        """One-line listing in the paper's Section-5 output format."""
        if self.is_empty:
            return "0: Remaining Graph: (empty)"
        edge_text = ", ".join(f"({source} {target})" for source, target in self.edges())
        return f"0: Remaining Graph: {edge_text}"
