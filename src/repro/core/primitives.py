"""Generic communication primitives and their optimal implementations.

Section 3 of the paper builds a *communication library* out of frequently
encountered communication primitives.  Every primitive has two graphs
(Figure 1):

representation graph
    The communication *requirement* the primitive captures, i.e. the pattern
    the decomposition algorithm searches for inside the application graph.
    For gossiping among ``n`` nodes it is the complete directed graph; for a
    one-to-``k`` broadcast it is a star of ``k`` outgoing edges; paths and
    loops represent chained point-to-point traffic.

implementation graph
    The physical channel structure that solves the primitive's communication
    problem in the minimum number of rounds with the minimum number of edges
    (a Minimum Gossip Graph or Minimum Broadcast Graph for gossip/broadcast;
    the structure itself for paths and loops), together with the optimal
    schedule and the internal routes every requirement edge follows.

The internal routes are what Section 4.2's bandwidth argument relies on: if
requirement edges ``e13`` and ``e14`` are both routed over implementation
link ``(1, 3)``, that link must provide the sum of both bandwidths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from repro.core.graph import DiGraph, Edge, Node
from repro.core.schedules import (
    CommunicationSchedule,
    binomial_broadcast_schedule,
    broadcast_round_lower_bound,
    gossip_round_lower_bound,
    hypercube_gossip_schedule,
    pair_exchange_schedule,
    ring_schedule,
)
from repro.exceptions import LibraryError


class PrimitiveKind(Enum):
    """The classes of communication problems the library understands."""

    GOSSIP = "gossip"
    BROADCAST = "broadcast"
    MULTICAST = "multicast"
    PATH = "path"
    LOOP = "loop"
    POINT_TO_POINT = "point_to_point"


@dataclass
class CommunicationPrimitive:
    """One entry of the communication library.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"MGG4"`` or ``"G1to3"``.
    kind:
        The communication problem the primitive solves.
    representation:
        Pattern graph searched for in the application graph.
    implementation:
        Optimal physical topology realizing the primitive.  Edges are
        directed channels; bidirectional links appear as two opposite edges.
    schedule:
        Optimal round schedule on the implementation graph.
    internal_routes:
        For every representation edge ``(u, v)``, the node sequence
        ``(u, ..., v)`` the corresponding traffic follows inside the
        implementation graph.
    """

    name: str
    kind: PrimitiveKind
    representation: DiGraph
    implementation: DiGraph
    schedule: CommunicationSchedule
    internal_routes: dict[Edge, tuple[Node, ...]] = field(default_factory=dict)
    primitive_id: int | None = None

    # ------------------------------------------------------------------
    # derived properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes in the primitive."""
        return self.representation.num_nodes

    @property
    def num_requirement_edges(self) -> int:
        """Edges of the requirement (representation) graph."""
        return self.representation.num_edges

    @property
    def num_implementation_edges(self) -> int:
        """Directed edges of the implementation graph."""
        return self.implementation.num_edges

    @property
    def num_physical_links(self) -> int:
        """Number of physical links: opposite directed edges share a link."""
        seen: set[frozenset[Node]] = set()
        for source, target in self.implementation.edges():
            seen.add(frozenset((source, target)))
        return len(seen)

    @property
    def num_rounds(self) -> int:
        """Rounds of the primitive's optimal communication schedule."""
        return self.schedule.num_rounds

    def diameter(self) -> int:
        """Longest internal route length (hops) over all requirement edges."""
        if not self.internal_routes:
            return 0
        return max(len(route) - 1 for route in self.internal_routes.values())

    def route_for(self, source: Node, target: Node) -> tuple[Node, ...]:
        """The implementation path serving requirement edge ``source -> target``."""
        try:
            return self.internal_routes[(source, target)]
        except KeyError as error:
            raise LibraryError(
                f"primitive {self.name!r} has no internal route for "
                f"({source!r} -> {target!r})"
            ) from error

    def implementation_edge_load(self) -> dict[Edge, int]:
        """How many requirement edges are routed over each implementation edge."""
        load: dict[Edge, int] = {edge: 0 for edge in self.implementation.edges()}
        for route in self.internal_routes.values():
            for hop in zip(route, route[1:]):
                load[hop] = load.get(hop, 0) + 1
        return load

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raise :class:`LibraryError` if broken."""
        rep_nodes = set(self.representation.nodes())
        imp_nodes = set(self.implementation.nodes())
        if rep_nodes != imp_nodes:
            raise LibraryError(
                f"primitive {self.name!r}: representation nodes {rep_nodes} differ "
                f"from implementation nodes {imp_nodes}"
            )
        for edge in self.representation.edges():
            if edge not in self.internal_routes:
                raise LibraryError(
                    f"primitive {self.name!r}: requirement edge {edge} has no route"
                )
        for (source, target), route in self.internal_routes.items():
            if not route or route[0] != source or route[-1] != target:
                raise LibraryError(
                    f"primitive {self.name!r}: route {route} does not connect "
                    f"{source!r} to {target!r}"
                )
            for hop_source, hop_target in zip(route, route[1:]):
                if not self.implementation.has_edge(hop_source, hop_target):
                    raise LibraryError(
                        f"primitive {self.name!r}: route {route} uses missing "
                        f"implementation edge ({hop_source!r} -> {hop_target!r})"
                    )
        try:
            self.schedule.validate_against_graph(self.implementation)
        except Exception as error:  # ScheduleError -> LibraryError for callers
            raise LibraryError(
                f"primitive {self.name!r}: invalid schedule: {error}"
            ) from error
        self._validate_schedule_completes()

    def _validate_schedule_completes(self) -> None:
        nodes = self.representation.nodes()
        if self.kind is PrimitiveKind.GOSSIP:
            if not self.schedule.completes_gossip(nodes):
                raise LibraryError(f"primitive {self.name!r}: schedule does not gossip")
            if self.schedule.num_rounds > gossip_round_lower_bound(len(nodes)):
                raise LibraryError(
                    f"primitive {self.name!r}: gossip schedule is not round-optimal"
                )
        elif self.kind in (PrimitiveKind.BROADCAST, PrimitiveKind.MULTICAST):
            root = _broadcast_root(self.representation)
            if not self.schedule.completes_broadcast(root, nodes):
                raise LibraryError(
                    f"primitive {self.name!r}: schedule does not broadcast from {root!r}"
                )
            if self.kind is PrimitiveKind.BROADCAST and (
                self.schedule.num_rounds > broadcast_round_lower_bound(len(nodes))
            ):
                raise LibraryError(
                    f"primitive {self.name!r}: broadcast schedule is not round-optimal"
                )

    def __repr__(self) -> str:
        return (
            f"<CommunicationPrimitive {self.name} kind={self.kind.value} "
            f"size={self.size} rep_edges={self.num_requirement_edges} "
            f"impl_edges={self.num_implementation_edges} rounds={self.num_rounds}>"
        )


def _broadcast_root(representation: DiGraph) -> Node:
    """The unique source node of a broadcast/multicast representation graph."""
    sources = [node for node in representation.nodes() if representation.in_degree(node) == 0]
    if len(sources) != 1:
        raise LibraryError("broadcast representation graph must have exactly one source")
    return sources[0]


# ----------------------------------------------------------------------
# shortest-path routing inside an implementation graph
# ----------------------------------------------------------------------
def _bfs_route(graph: DiGraph, source: Node, target: Node) -> tuple[Node, ...]:
    """Deterministic BFS shortest path (insertion-order neighbour expansion)."""
    if source == target:
        return (source,)
    parents: dict[Node, Node] = {}
    visited = {source}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        for successor in graph.successors(node):
            if successor in visited:
                continue
            visited.add(successor)
            parents[successor] = node
            if successor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return tuple(path)
            queue.append(successor)
    raise LibraryError(f"implementation graph has no route from {source!r} to {target!r}")


def derive_internal_routes(
    representation: DiGraph, implementation: DiGraph
) -> dict[Edge, tuple[Node, ...]]:
    """Route every representation edge over the implementation graph (BFS)."""
    return {
        (source, target): _bfs_route(implementation, source, target)
        for source, target in representation.edges()
    }


# ----------------------------------------------------------------------
# primitive builders
# ----------------------------------------------------------------------
def _default_nodes(count: int) -> list[int]:
    """Primitive-local node labels 1..count, matching the paper's figures."""
    return list(range(1, count + 1))


def make_gossip_primitive(size: int, name: str | None = None) -> CommunicationPrimitive:
    """Gossip (all-to-all) among ``size`` nodes with a hypercube MGG implementation.

    ``size`` must be a power of two (2, 4, 8, ...).  For ``size == 4`` the
    implementation graph is the 4-cycle MGG-4 of Figure 1 with the exact
    round structure quoted in Section 4.5: (1,3) and (2,4) exchange first,
    then (1,2) and (3,4).
    """
    if size < 2 or size & (size - 1):
        raise LibraryError("gossip primitives are provided for power-of-two sizes only")
    nodes = _default_nodes(size)
    representation = DiGraph(name=f"gossip-{size}-rep")
    for source in nodes:
        for target in nodes:
            if source != target:
                representation.add_edge(source, target)

    implementation = DiGraph(name=f"MGG{size}")
    if size == 2:
        schedule = pair_exchange_schedule(nodes[0], nodes[1])
    else:
        schedule = hypercube_gossip_schedule(nodes)
    # The implementation links are exactly the exchange pairs of the schedule
    # (the hypercube edges); every exchange is a full-duplex physical link.
    for round_ in schedule.rounds:
        for transfer in round_:
            implementation.add_edge(transfer.sender, transfer.receiver, exist_ok=True)
    for node in nodes:
        implementation.add_node(node, exist_ok=True)

    routes = derive_internal_routes(representation, implementation)
    primitive = CommunicationPrimitive(
        name=name or f"MGG{size}",
        kind=PrimitiveKind.GOSSIP,
        representation=representation,
        implementation=implementation,
        schedule=schedule,
        internal_routes=routes,
    )
    primitive.validate()
    return primitive


def make_broadcast_primitive(
    num_receivers: int, name: str | None = None
) -> CommunicationPrimitive:
    """Broadcast from node 1 to ``num_receivers`` other nodes.

    The representation graph is the out-star (the requirement "node 1 sends
    to everybody"); the implementation graph is the binomial broadcast tree,
    which reaches all ``num_receivers + 1`` nodes in ``ceil(log2(n))`` rounds
    with only ``n - 1`` links — a Minimum Broadcast Graph.
    """
    if num_receivers < 1:
        raise LibraryError("a broadcast primitive needs at least one receiver")
    size = num_receivers + 1
    nodes = _default_nodes(size)
    root = nodes[0]

    representation = DiGraph(name=f"broadcast-1to{num_receivers}-rep")
    for node in nodes:
        representation.add_node(node, exist_ok=True)
    for receiver in nodes[1:]:
        representation.add_edge(root, receiver)

    schedule = binomial_broadcast_schedule(nodes)
    implementation = DiGraph(name=f"MBG{size}")
    for node in nodes:
        implementation.add_node(node, exist_ok=True)
    for round_ in schedule.rounds:
        for transfer in round_:
            implementation.add_edge(transfer.sender, transfer.receiver, exist_ok=True)

    routes = derive_internal_routes(representation, implementation)
    primitive = CommunicationPrimitive(
        name=name or f"G1to{num_receivers}",
        kind=PrimitiveKind.BROADCAST,
        representation=representation,
        implementation=implementation,
        schedule=schedule,
        internal_routes=routes,
    )
    primitive.validate()
    return primitive


def make_path_primitive(size: int, name: str | None = None) -> CommunicationPrimitive:
    """A directed path 1 -> 2 -> ... -> size (chained point-to-point traffic)."""
    if size < 2:
        raise LibraryError("a path primitive needs at least two nodes")
    nodes = _default_nodes(size)
    representation = DiGraph(name=f"path-{size}-rep")
    for source, target in zip(nodes, nodes[1:]):
        representation.add_edge(source, target)
    implementation = representation.copy()
    implementation.name = f"P{size}"
    schedule = ring_schedule(nodes, closed=False)
    routes = derive_internal_routes(representation, implementation)
    primitive = CommunicationPrimitive(
        name=name or f"P{size}",
        kind=PrimitiveKind.PATH,
        representation=representation,
        implementation=implementation,
        schedule=schedule,
        internal_routes=routes,
    )
    primitive.validate()
    return primitive


def make_loop_primitive(size: int, name: str | None = None) -> CommunicationPrimitive:
    """A directed loop 1 -> 2 -> ... -> size -> 1 (cyclic shift traffic)."""
    if size < 3:
        raise LibraryError("a loop primitive needs at least three nodes")
    nodes = _default_nodes(size)
    representation = DiGraph(name=f"loop-{size}-rep")
    for source, target in zip(nodes, nodes[1:]):
        representation.add_edge(source, target)
    representation.add_edge(nodes[-1], nodes[0])
    implementation = representation.copy()
    implementation.name = f"L{size}"
    schedule = ring_schedule(nodes, closed=True)
    routes = derive_internal_routes(representation, implementation)
    primitive = CommunicationPrimitive(
        name=name or f"L{size}",
        kind=PrimitiveKind.LOOP,
        representation=representation,
        implementation=implementation,
        schedule=schedule,
        internal_routes=routes,
    )
    primitive.validate()
    return primitive


def make_multicast_primitive(
    num_receivers: int, name: str | None = None
) -> CommunicationPrimitive:
    """One-to-many multicast: like broadcast but without the round-optimality claim.

    Useful as a library extension when the application contains fan-outs that
    should be implemented with a simple tree rather than a full MBG.
    """
    if num_receivers < 1:
        raise LibraryError("a multicast primitive needs at least one receiver")
    size = num_receivers + 1
    nodes = _default_nodes(size)
    root = nodes[0]
    representation = DiGraph(name=f"multicast-1to{num_receivers}-rep")
    for receiver in nodes[1:]:
        representation.add_edge(root, receiver)
    schedule = binomial_broadcast_schedule(nodes)
    implementation = DiGraph(name=f"MC{size}")
    for node in nodes:
        implementation.add_node(node, exist_ok=True)
    for round_ in schedule.rounds:
        for transfer in round_:
            implementation.add_edge(transfer.sender, transfer.receiver, exist_ok=True)
    routes = derive_internal_routes(representation, implementation)
    primitive = CommunicationPrimitive(
        name=name or f"M1to{num_receivers}",
        kind=PrimitiveKind.MULTICAST,
        representation=representation,
        implementation=implementation,
        schedule=schedule,
        internal_routes=routes,
    )
    primitive.validate()
    return primitive
