"""Routing-table generation from a decomposition (Section 4.5).

The optimal schedules of the library primitives tell every node how its
messages reach nodes it is not directly connected to inside the primitive
(e.g. on MGG-4, node 1 reaches node 4 through node 3).  The synthesis flow
replays those internal routes — expressed in core identifiers by the
matchings — and installs them into a destination-indexed next-hop table.
Remainder edges become direct single-hop routes, and (optionally) all other
router pairs are filled in with shortest paths so the resulting table is a
total routing function.

Because several primitives may pass traffic for the same destination through
the same intermediate router, naive installation could create conflicting
entries.  Flows are therefore installed *weakly*: while walking a flow's
route, if the current router already knows a next hop for the destination,
the flow defers to that entry (which, having been installed from a complete
route, is guaranteed to reach the destination).  This keeps the table a
consistent destination-based function while preserving the schedule-derived
routes wherever possible.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.arch.topology import Topology
from repro.core.decomposition import DecompositionResult
from repro.exceptions import RoutingError
from repro.routing.shortest_path import bfs_shortest_path
from repro.routing.table import RoutingTable

NodeId = Hashable


def install_flow_weakly(
    table: RoutingTable, path: Sequence[NodeId], max_hops: int | None = None
) -> list[NodeId]:
    """Install a flow's route, deferring to existing entries on conflicts.

    Returns the route the flow will actually follow according to the final
    table (which may deviate from ``path`` after the first conflicting
    router).
    """
    nodes = list(path)
    if len(nodes) < 2:
        return nodes
    destination = nodes[-1]
    topology = table.topology
    if max_hops is None:
        max_hops = 4 * max(topology.num_routers, 1)

    actual = [nodes[0]]
    current = nodes[0]
    planned_index = 0
    while current != destination:
        if table.has_route(current, destination) and current != destination:
            next_hop = table.next_hop(current, destination)
        else:
            # follow the planned path from this router onwards
            try:
                planned_index = nodes.index(current, planned_index)
                next_hop = nodes[planned_index + 1]
            except (ValueError, IndexError):
                # the flow deviated from the planned path; fall back to a
                # shortest path from here to the destination
                fallback = bfs_shortest_path(topology, current, destination)
                next_hop = fallback[1]
            table.set_next_hop(current, destination, next_hop)
        current = next_hop
        actual.append(current)
        if len(actual) > max_hops:
            raise RoutingError(
                f"flow towards {destination!r} does not converge: {actual}"
            )
    return actual


def build_routing_table(
    decomposition: DecompositionResult,
    topology: Topology,
    fill_all_pairs: bool = False,
) -> RoutingTable:
    """Build the destination-based routing table for a synthesized topology.

    Parameters
    ----------
    decomposition:
        The decomposition whose matchings define the schedule-derived routes.
    topology:
        The synthesized topology (must contain every channel the routes use).
    fill_all_pairs:
        When true, router pairs with no application traffic also get
        (shortest-path) routes, making the table a total function.
    """
    table = RoutingTable(topology)

    # 1. schedule-derived routes for every covered application edge
    for matching in decomposition.matchings:
        for (source, target), route in sorted(
            matching.routes_in_cores().items(), key=lambda item: (repr(item[0][0]), repr(item[0][1]))
        ):
            install_flow_weakly(table, route)

    # 2. direct routes for the remainder (point-to-point) edges
    for source, target in decomposition.remainder.edges():
        install_flow_weakly(table, (source, target))

    # 3. optional all-pairs completion with shortest paths
    if fill_all_pairs:
        for source in topology.routers():
            for destination in topology.routers():
                if source == destination or table.has_route(source, destination):
                    continue
                install_flow_weakly(table, bfs_shortest_path(topology, source, destination))

    return table


def routes_for_traffic(
    table: RoutingTable, pairs: Iterable[tuple[NodeId, NodeId]]
) -> dict[tuple[NodeId, NodeId], list[NodeId]]:
    """Resolve the actual route of every traffic pair under the final table."""
    return {
        (source, destination): table.route(source, destination)
        for source, destination in pairs
        if source != destination
    }
