"""Topology synthesis: from a decomposition to a customized architecture.

This is the "gluing" step of Section 3: the implementation graphs of all
chosen primitives are instantiated on the cores the matchings bound them to,
their links merged into a single customized topology, the remainder edges
added as direct point-to-point links, a routing table generated from the
primitives' optimal schedules (Section 4.5), and the design constraints of
Section 4.2 checked on the result.

The high-level entry point is :class:`TopologySynthesizer` (or the
:func:`synthesize_architecture` convenience function), which packages
everything a downstream user needs into a :class:`SynthesizedArchitecture`:
the topology, the routing table, the constraint report, the deadlock report,
and the decomposition it was built from.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.arch.custom import ChannelOrigin, CustomTopology
from repro.core.constraints import ConstraintChecker, ConstraintReport, DesignConstraints
from repro.core.decomposition import DecompositionResult
from repro.core.graph import ApplicationGraph
from repro.core.routing_table import build_routing_table
from repro.exceptions import SynthesisError
from repro.routing.deadlock import DeadlockReport, analyze_deadlock
from repro.routing.table import RoutingTable

NodeId = Hashable


@dataclass
class SynthesisOptions:
    """Options controlling how the customized architecture is assembled."""

    flit_width_bits: int = 32
    bidirectional_links: bool = False
    """Instantiate every primitive link as a full-duplex channel pair.

    The default (False) instantiates exactly the directed channels of the
    primitives' implementation graphs — gossip graphs already contain both
    directions (their schedules are exchanges) while loops, paths and
    broadcast trees are inherently one-way.  Setting this to True forces a
    full-duplex pair for every link, which adds wiring but makes every
    synthesized topology strongly connected.
    """
    fill_all_pairs_routing: bool = False
    default_link_length_mm: float = 2.0
    check_constraints: bool = True
    check_deadlock: bool = True


@dataclass
class SynthesizedArchitecture:
    """Everything the synthesis flow produces for one application."""

    acg: ApplicationGraph
    decomposition: DecompositionResult
    topology: CustomTopology
    routing_table: RoutingTable
    constraint_report: ConstraintReport | None
    deadlock_report: DeadlockReport | None

    @property
    def is_feasible(self) -> bool:
        """True when all checked constraints hold (unchecked counts as holding)."""
        constraints_ok = self.constraint_report is None or self.constraint_report.satisfied
        deadlock_ok = self.deadlock_report is None or self.deadlock_report.is_deadlock_free
        return constraints_ok and deadlock_ok

    def describe(self) -> str:
        """Multi-line human-readable summary of the synthesized design."""
        lines = [
            f"Synthesized architecture for {self.acg.name or 'application'!s}",
            f"  primitives used: {self.decomposition.primitives_used()}",
            f"  remainder edges: {self.decomposition.remainder.num_edges}",
            f"  routers: {self.topology.num_routers}, physical links: "
            f"{self.topology.num_physical_links}",
            f"  routing entries: {self.routing_table.num_entries}",
        ]
        if self.constraint_report is not None:
            lines.append(f"  constraints: {self.constraint_report.describe()}")
        if self.deadlock_report is not None:
            lines.append(f"  deadlock: {self.deadlock_report.describe()}")
        return "\n".join(lines)


class TopologySynthesizer:
    """Glues a decomposition into a customized topology and routing table."""

    def __init__(
        self,
        options: SynthesisOptions | None = None,
        constraints: DesignConstraints | None = None,
    ) -> None:
        self.options = options or SynthesisOptions()
        self.constraints = constraints or DesignConstraints()

    # ------------------------------------------------------------------
    # individual steps
    # ------------------------------------------------------------------
    def build_topology(
        self, acg: ApplicationGraph, decomposition: DecompositionResult
    ) -> CustomTopology:
        """Instantiate primitive implementation links + remainder links."""
        name = f"custom_{acg.name}" if acg.name else "custom"
        topology = CustomTopology(name=name, flit_width_bits=self.options.flit_width_bits)

        for node in acg.nodes():
            if acg.has_position(node):
                position = acg.position(node)
                topology.add_router(node, position.x, position.y)
            else:
                topology.add_router(node)

        for index, matching in enumerate(decomposition.matchings):
            origin = ChannelOrigin(kind="primitive", label=f"{matching.primitive.name}#{index}")
            for source, target in matching.implementation_links():
                length = self._link_length(acg, source, target)
                topology.add_channel_with_origin(
                    source,
                    target,
                    origin,
                    length_mm=length,
                    bidirectional=self.options.bidirectional_links,
                )

        remainder_origin = ChannelOrigin(kind="remainder", label="remainder")
        for source, target in decomposition.remainder.edges():
            length = self._link_length(acg, source, target)
            topology.add_channel_with_origin(
                source, target, remainder_origin, length_mm=length, bidirectional=False
            )

        if topology.num_channels == 0 and acg.num_edges > 0:
            raise SynthesisError(
                "synthesis produced no channels although the application communicates"
            )
        return topology

    def _link_length(self, acg: ApplicationGraph, source: NodeId, target: NodeId) -> float:
        if acg.has_position(source) and acg.has_position(target):
            return acg.link_length(source, target)
        return self.options.default_link_length_mm

    # ------------------------------------------------------------------
    # full flow
    # ------------------------------------------------------------------
    def synthesize(
        self, acg: ApplicationGraph, decomposition: DecompositionResult
    ) -> SynthesizedArchitecture:
        """Topology + routing + constraint and deadlock checks."""
        topology = self.build_topology(acg, decomposition)
        table = build_routing_table(
            decomposition, topology, fill_all_pairs=self.options.fill_all_pairs_routing
        )

        constraint_report = None
        if self.options.check_constraints:
            constraint_report = ConstraintChecker(self.constraints).check(topology, table, acg)

        deadlock_report = None
        if self.options.check_deadlock:
            deadlock_report = analyze_deadlock(table, acg.edges())

        return SynthesizedArchitecture(
            acg=acg,
            decomposition=decomposition,
            topology=topology,
            routing_table=table,
            constraint_report=constraint_report,
            deadlock_report=deadlock_report,
        )


def synthesize_architecture(
    acg: ApplicationGraph,
    decomposition: DecompositionResult,
    options: SynthesisOptions | None = None,
    constraints: DesignConstraints | None = None,
) -> SynthesizedArchitecture:
    """Module-level convenience wrapper around :class:`TopologySynthesizer`."""
    return TopologySynthesizer(options=options, constraints=constraints).synthesize(
        acg, decomposition
    )
