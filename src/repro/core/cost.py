"""Cost assignment for matchings, remainders and whole decompositions.

Section 4.3 of the paper assigns to every matching ``M`` the energy it
implies (Equation 5):

    C(M) = sum over implementation edges e_ij of  E_bit(l_ij) * v(e_ij)

i.e. every covered application edge is routed over the primitive's
implementation graph, and the bits it carries are charged the Equation-1 bit
energy of that route, with the link lengths ``l_ij`` taken from the initial
floorplan.  The remainder graph (unmatched edges) is charged the cost of the
dedicated point-to-point links that implement it.  The decomposition cost is
the sum of the matching costs plus the remainder cost (Equation 3).

Two interchangeable cost models are provided:

:class:`UnitCostModel`
    Abstract volume-times-hops cost used when no floorplan or technology data
    is available (and in the small illustrative examples such as Figure 2,
    where costs are small integers).

:class:`EnergyCostModel`
    The full Equation-5 cost: per-bit switch and link energies from a
    :class:`~repro.energy.technology.Technology`, link lengths from the
    floorplan positions attached to the ACG.

Both expose an *admissible lower bound* for an arbitrary residual graph,
which the branch-and-bound uses to prune ("current cost + minimum remaining
cost >= best cost so far" in Figure 3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.graph import ApplicationGraph, DiGraph, Edge, Node
from repro.core.matching import Matching, RemainderGraph
from repro.energy.bit_energy import BitEnergyModel
from repro.energy.technology import DEFAULT_TECHNOLOGY, Technology
from repro.exceptions import DecompositionError


class CostModel(ABC):
    """Interface shared by all decomposition cost models."""

    #: multiplier applied to remainder (point-to-point) edges; values above 1
    #: model the extra dedicated wiring such ad-hoc links require and steer
    #: the search towards covering traffic with library primitives.
    remainder_penalty: float = 1.0

    # ------------------------------------------------------------------
    # per-piece costs
    # ------------------------------------------------------------------
    @abstractmethod
    def route_cost(self, acg: ApplicationGraph, edge: Edge, route: tuple[Node, ...]) -> float:
        """Cost of carrying the volume of ``edge`` over ``route`` (core IDs)."""

    def matching_cost(self, matching: Matching, acg: ApplicationGraph) -> float:
        """Equation 5: total cost of one matching."""
        total = 0.0
        for edge, route in matching.routes_in_cores().items():
            if not acg.has_edge(*edge):
                raise DecompositionError(
                    f"matching {matching.describe()} refers to missing ACG edge {edge}"
                )
            total += self.route_cost(acg, edge, route)
        return total

    def remainder_cost(self, remainder: RemainderGraph | DiGraph, acg: ApplicationGraph) -> float:
        """Cost of implementing the unmatched edges as direct links."""
        graph = remainder.graph if isinstance(remainder, RemainderGraph) else remainder
        total = 0.0
        for source, target in graph.edges():
            total += self.remainder_penalty * self.route_cost(
                acg, (source, target), (source, target)
            )
        return total

    def decomposition_cost(
        self,
        matchings: list[Matching],
        remainder: RemainderGraph | DiGraph,
        acg: ApplicationGraph,
    ) -> float:
        """Equation 3: sum of matching costs plus the remainder cost."""
        return sum(self.matching_cost(m, acg) for m in matchings) + self.remainder_cost(
            remainder, acg
        )

    # ------------------------------------------------------------------
    # bounding (see repro.core.bounds for the composable bound family)
    # ------------------------------------------------------------------
    def edge_cover_cost(self, acg: ApplicationGraph, edge: Edge, hops: int) -> float:
        """Admissible charge for covering ``edge`` at a position with ``hops``
        internal hops.

        The default ignores ``hops`` and charges the direct single-hop route
        — never more than any realizable implementation of the edge (for the
        energy model because the direct Manhattan wire is the shortest
        possible, for hop-count models because every route has at least one
        hop).  Models whose route cost is exactly linear in the hop count
        override this to exploit ``hops``.
        """
        del hops
        return self.route_cost(acg, edge, edge)

    def edge_remainder_cost(self, acg: ApplicationGraph, edge: Edge) -> float:
        """Exact cost contribution of leaving ``edge`` in the remainder."""
        return self.remainder_penalty * self.route_cost(acg, edge, edge)

    def flat_matching_cost(self, primitive) -> float | None:
        """Binding-independent total matching cost, or ``None``.

        Flat models (e.g. link count) charge a matching the same amount
        wherever it lands, which lets the bound subsystem precompute exact
        per-edge shares and packing prices once per (library, cost-model)
        pair.  Additive models return ``None``.
        """
        del primitive
        return None

    def flat_remainder_edge_cost(self) -> float | None:
        """Binding-independent per-edge remainder cost, or ``None``."""
        return None

    def lower_bound(self, residual: DiGraph, acg: ApplicationGraph) -> float:
        """Admissible lower bound on the cost of decomposing ``residual``.

        Every remaining edge must be carried over at least one link through
        at least two routers, whichever primitive (or direct link) ends up
        implementing it, so charging each edge its own single-hop cost never
        overestimates.
        """
        total = 0.0
        for source, target in residual.edges():
            total += self.route_cost(acg, (source, target), (source, target))
        return total


@dataclass
class UnitCostModel(CostModel):
    """Volume-weighted hop-count cost.

    ``cost(edge over route) = volume(edge) * hops(route)`` with a configurable
    penalty for remainder edges.  With unit volumes this reduces to counting
    edges, which reproduces the small integer costs of the paper's Figure 2
    walk-through.
    """

    remainder_penalty: float = 1.0
    use_volumes: bool = True

    def route_cost(self, acg: ApplicationGraph, edge: Edge, route: tuple[Node, ...]) -> float:
        """Volume-weighted hop count of one routed ACG edge."""
        hops = max(len(route) - 1, 1)
        volume = acg.volume(*edge) if (self.use_volumes and acg.has_edge(*edge)) else 1.0
        if not self.use_volumes:
            volume = 1.0
        return volume * hops

    def edge_cover_cost(self, acg: ApplicationGraph, edge: Edge, hops: int) -> float:
        """Exact ``volume * hops`` charge of covering ``edge`` at a position."""
        volume = acg.volume(*edge) if (self.use_volumes and acg.has_edge(*edge)) else 1.0
        return volume * max(hops, 1)


@dataclass
class LinkCountCostModel(CostModel):
    """Wiring-resource cost: physical links instantiated by the decomposition.

    Each matching is charged the number of *physical* links of its
    implementation graph (a full-duplex channel pair counts once) and every
    remainder edge is charged one dedicated link.  This accounting reproduces
    the integer costs printed in the paper's decomposition listings — e.g.
    the AES decomposition of Section 5.2 (four MGG-4 columns at 4 links each,
    two L4 rows at 4 links each, and a 4-edge remainder) totals
    ``4*4 + 2*4 + 4 = 28``, the paper's ``COST: 28``.

    Because an MGG-4 covers 12 requirement edges with only 4 links, the model
    strongly rewards recognising gossip patterns instead of covering them
    with loops/paths, which is exactly the behaviour the paper reports.
    """

    remainder_penalty: float = 1.0
    min_links_per_edge: float = 1.0 / 3.0
    """Admissible per-edge lower bound for *bidirectional* traffic: the best
    link-per-requirement-edge ratio over the default library is MGG-4's
    4 physical links / 12 requirement edges = 1/3."""
    min_links_per_directed_edge: float = 1.0
    """Admissible per-edge lower bound for edges whose reverse is absent:
    such edges can never be part of a gossip clique, and every other library
    primitive (broadcast, loop, path) needs at least one physical link per
    requirement edge, as does a remainder link."""

    def route_cost(self, acg: ApplicationGraph, edge: Edge, route: tuple[Node, ...]) -> float:
        # Per-edge route cost is unused by this model; see matching_cost.
        """Constant 1.0: this model charges links, not routes."""
        del acg, edge, route
        return 1.0

    def matching_cost(self, matching: Matching, acg: ApplicationGraph) -> float:
        """Physical links instantiated by the matching's implementation graph."""
        del acg
        return float(matching.primitive.num_physical_links)

    def remainder_cost(self, remainder: RemainderGraph | DiGraph, acg: ApplicationGraph) -> float:
        """One dedicated link per remainder edge (times the penalty)."""
        del acg
        graph = remainder.graph if isinstance(remainder, RemainderGraph) else remainder
        return self.remainder_penalty * graph.num_edges

    def flat_matching_cost(self, primitive) -> float:
        """Physical link count: the same wherever the matching lands."""
        return float(primitive.num_physical_links)

    def flat_remainder_edge_cost(self) -> float:
        """One dedicated link per remainder edge (times the penalty)."""
        return self.remainder_penalty * 1.0

    def lower_bound(self, residual: DiGraph, acg: ApplicationGraph) -> float:
        """Coarse per-edge link bound (the legacy ``"cost_model"`` bound).

        .. note:: ``min_links_per_edge`` hard-codes the default library's
           best ratio (MGG-4: 4 links / 12 requirement edges); libraries
           with a denser primitive (e.g. ``extended_library``'s MGG-8 at
           12/56) need the computed per-library offers of
           :mod:`repro.core.bounds` for an admissible per-edge charge —
           another reason ``lower_bound="cheapest_edge"`` supersedes this.
        """
        del acg
        total = 0.0
        for source, target in residual.edges():
            if residual.has_edge(target, source):
                total += self.min_links_per_edge
            else:
                total += self.min_links_per_directed_edge
        return total


@dataclass
class EnergyCostModel(CostModel):
    """Equation-5 energy cost with floorplan-derived link lengths.

    ``fallback_link_length_mm`` is used for core pairs that have no floorplan
    position (e.g. before placement); set it to the average tile pitch of the
    design for sensible estimates.
    """

    technology: Technology = DEFAULT_TECHNOLOGY
    remainder_penalty: float = 1.0
    fallback_link_length_mm: float = 2.0

    def __post_init__(self) -> None:
        self._bit_energy = BitEnergyModel(self.technology)

    def _segment_length(self, acg: ApplicationGraph, source: Node, target: Node) -> float:
        if acg.has_position(source) and acg.has_position(target):
            return acg.link_length(source, target)
        return self.fallback_link_length_mm

    def route_cost(self, acg: ApplicationGraph, edge: Edge, route: tuple[Node, ...]) -> float:
        """Volume x wire-length of one routed ACG edge (energy-proportional)."""
        if len(route) < 2:
            route = edge
        lengths = [
            self._segment_length(acg, hop_source, hop_target)
            for hop_source, hop_target in zip(route, route[1:])
        ]
        volume = acg.volume(*edge) if acg.has_edge(*edge) else 1.0
        return self._bit_energy.transfer_energy_pj(volume, lengths)

    def lower_bound(self, residual: DiGraph, acg: ApplicationGraph) -> float:
        """Charge every remaining edge its direct-link energy (never higher
        than any realizable implementation of that edge through the library,
        because any route has at least one link at least as long as the
        direct Manhattan distance is short — we use the direct distance,
        which is the minimum possible wire length between the two cores)."""
        total = 0.0
        for source, target in residual.edges():
            length = self._segment_length(acg, source, target)
            volume = acg.volume(source, target) if acg.has_edge(source, target) else 1.0
            total += self._bit_energy.transfer_energy_pj(volume, [length])
        return total


def default_cost_model(acg: ApplicationGraph, technology: Technology | None = None) -> CostModel:
    """Pick a cost model automatically.

    If the ACG carries floorplan positions for every core, the full energy
    model is used; otherwise the abstract unit-cost model is returned.
    """
    if acg.num_nodes and all(acg.has_position(node) for node in acg.nodes()):
        return EnergyCostModel(technology=technology or DEFAULT_TECHNOLOGY)
    return UnitCostModel()
