"""Design-constraint modelling and checking (Section 4.2).

The optimization problem of the paper minimises the decomposition cost
*subject to* two families of constraints:

* **bandwidth**: the bandwidth of every implementation link must be at least
  the sum of the bandwidth requirements of all application edges mapped onto
  it (the paper's example: requirement edges ``e13`` and ``e14`` both ride on
  implementation link ``e13``, so that link must provide ``b(e13)+b(e14)``),
* **wiring resources**: the bisection bandwidth of the customized
  architecture must not exceed the maximum bisection bandwidth the
  technology's global-wire metal layers can provide.

This module provides the constraint container, the per-channel load
calculation, and a checker that produces a structured report (and can raise
:class:`~repro.exceptions.ConstraintViolationError`).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.arch.metrics import bisection_bandwidth
from repro.arch.topology import Topology
from repro.core.graph import ApplicationGraph
from repro.exceptions import ConstraintViolationError, RoutingError
from repro.routing.table import RoutingTable

NodeId = Hashable
ChannelKey = tuple[NodeId, NodeId]


@dataclass(frozen=True)
class DesignConstraints:
    """The constraint set a synthesized architecture must satisfy.

    Attributes
    ----------
    link_capacity_bits_per_cycle:
        Maximum sustainable bandwidth of a single channel.  ``None`` means
        each channel uses its own declared capacity.
    max_bisection_bandwidth:
        Wiring-resource limit on the architecture's bisection bandwidth
        (bits/cycle).  ``None`` disables the check.
    max_router_degree:
        Maximum number of physical links per router (port count limit).
    require_connected_traffic:
        Every application edge must be routable on the architecture.
    """

    link_capacity_bits_per_cycle: float | None = None
    max_bisection_bandwidth: float | None = None
    max_router_degree: int | None = None
    require_connected_traffic: bool = True


@dataclass
class ConstraintReport:
    """Outcome of checking one architecture against the constraints."""

    satisfied: bool
    violations: list[str] = field(default_factory=list)
    channel_loads: dict[ChannelKey, float] = field(default_factory=dict)
    bisection_bandwidth: float | None = None
    max_router_degree: int = 0

    def raise_if_violated(self) -> None:
        """Raise :class:`ConstraintViolationError` unless every constraint holds."""
        if not self.satisfied:
            raise ConstraintViolationError(
                f"{len(self.violations)} design constraint(s) violated", self.violations
            )

    def describe(self) -> str:
        """One-line pass/fail summary listing any violations."""
        if self.satisfied:
            return "all design constraints satisfied"
        return "constraint violations:\n" + "\n".join(f"  - {v}" for v in self.violations)


def channel_bandwidth_loads(
    acg: ApplicationGraph, table: RoutingTable
) -> dict[ChannelKey, float]:
    """Aggregate bandwidth requirement carried by every channel.

    Every application edge is routed with the table and its ``b(e)`` is added
    to every channel on the route — exactly the aggregation Section 4.2 uses
    to size implementation links.
    """
    loads: dict[ChannelKey, float] = {}
    for source, target in acg.edges():
        requirement = acg.bandwidth(source, target)
        route = table.route(source, target)
        for hop in zip(route, route[1:]):
            loads[hop] = loads.get(hop, 0.0) + requirement
    return loads


def channel_volume_loads(
    acg: ApplicationGraph, table: RoutingTable
) -> dict[ChannelKey, float]:
    """Aggregate communication *volume* (bits) carried by every channel."""
    loads: dict[ChannelKey, float] = {}
    for source, target in acg.edges():
        volume = acg.volume(source, target)
        route = table.route(source, target)
        for hop in zip(route, route[1:]):
            loads[hop] = loads.get(hop, 0.0) + volume
    return loads


class ConstraintChecker:
    """Checks a (topology, routing table) pair against :class:`DesignConstraints`."""

    def __init__(self, constraints: DesignConstraints | None = None) -> None:
        self.constraints = constraints or DesignConstraints()

    def check(
        self,
        topology: Topology,
        table: RoutingTable,
        acg: ApplicationGraph,
    ) -> ConstraintReport:
        """Evaluate every design constraint of Section 4.2 on one architecture."""
        violations: list[str] = []
        loads: dict[ChannelKey, float] = {}

        # 1. routability of every application edge
        try:
            loads = channel_bandwidth_loads(acg, table)
        except RoutingError as error:
            if self.constraints.require_connected_traffic:
                violations.append(f"unroutable traffic: {error}")

        # 2. per-channel bandwidth
        for (source, target), load in loads.items():
            if topology.has_channel(source, target):
                declared = topology.channel(source, target).bandwidth_bits_per_cycle or 0.0
            else:
                violations.append(
                    f"route uses channel ({source!r} -> {target!r}) that the topology lacks"
                )
                continue
            capacity = (
                self.constraints.link_capacity_bits_per_cycle
                if self.constraints.link_capacity_bits_per_cycle is not None
                else declared
            )
            if load > capacity + 1e-9:
                violations.append(
                    f"channel ({source!r} -> {target!r}) overloaded: "
                    f"required {load:g} > capacity {capacity:g} bits/cycle"
                )

        # 3. wiring resources via bisection bandwidth
        bisection = None
        if topology.num_routers >= 2:
            bisection = bisection_bandwidth(topology).bandwidth_bits_per_cycle
            if (
                self.constraints.max_bisection_bandwidth is not None
                and bisection > self.constraints.max_bisection_bandwidth + 1e-9
            ):
                violations.append(
                    f"bisection bandwidth {bisection:g} exceeds the technology limit "
                    f"{self.constraints.max_bisection_bandwidth:g} bits/cycle"
                )

        # 4. router degree (port count)
        max_degree = topology.max_degree()
        if (
            self.constraints.max_router_degree is not None
            and max_degree > self.constraints.max_router_degree
        ):
            violations.append(
                f"router degree {max_degree} exceeds the limit "
                f"{self.constraints.max_router_degree}"
            )

        return ConstraintReport(
            satisfied=not violations,
            violations=violations,
            channel_loads=loads,
            bisection_bandwidth=bisection,
            max_router_degree=max_degree,
        )
