"""Core synthesis flow: graphs, library, decomposition, synthesis.

This package contains the paper's primary contribution — the decomposition-
based communication architecture synthesis — built on the substrates in the
sibling packages (:mod:`repro.energy`, :mod:`repro.arch`, :mod:`repro.routing`,
:mod:`repro.noc`, :mod:`repro.floorplan`).
"""

from repro.core.bounds import (
    BOUND_NAMES,
    CheapestEdgeBound,
    CostModelBound,
    ExactSmallBound,
    PackingBound,
    ResidualBound,
    StackedBound,
    build_lower_bound,
)
from repro.core.cost import (
    CostModel,
    EnergyCostModel,
    LinkCountCostModel,
    UnitCostModel,
    default_cost_model,
)
from repro.core.decomposition import (
    BranchAndBoundDecomposer,
    DecompositionConfig,
    DecompositionResult,
    GreedyDecomposer,
    SearchStrategy,
    decompose,
)
from repro.core.graph import ApplicationGraph, CorePosition, DiGraph, GraphStatistics
from repro.core.isomorphism import (
    VF2Matcher,
    are_isomorphic,
    find_all_subgraph_isomorphisms,
    find_subgraph_isomorphism,
    has_subgraph_isomorphic_to,
)
from repro.core.library import (
    CommunicationLibrary,
    aes_library,
    default_library,
    extended_library,
    minimal_library,
)
from repro.core.matching import Matching, RemainderGraph
from repro.core.primitives import (
    CommunicationPrimitive,
    PrimitiveKind,
    make_broadcast_primitive,
    make_gossip_primitive,
    make_loop_primitive,
    make_multicast_primitive,
    make_path_primitive,
)
from repro.core.constraints import ConstraintChecker, ConstraintReport, DesignConstraints
from repro.core.synthesis import (
    SynthesisOptions,
    SynthesizedArchitecture,
    TopologySynthesizer,
    synthesize_architecture,
)

__all__ = [
    "ApplicationGraph",
    "DiGraph",
    "CorePosition",
    "GraphStatistics",
    "VF2Matcher",
    "are_isomorphic",
    "find_subgraph_isomorphism",
    "find_all_subgraph_isomorphisms",
    "has_subgraph_isomorphic_to",
    "CommunicationPrimitive",
    "PrimitiveKind",
    "make_gossip_primitive",
    "make_broadcast_primitive",
    "make_path_primitive",
    "make_loop_primitive",
    "make_multicast_primitive",
    "CommunicationLibrary",
    "default_library",
    "aes_library",
    "extended_library",
    "minimal_library",
    "Matching",
    "RemainderGraph",
    "CostModel",
    "UnitCostModel",
    "LinkCountCostModel",
    "EnergyCostModel",
    "default_cost_model",
    "BOUND_NAMES",
    "ResidualBound",
    "CostModelBound",
    "CheapestEdgeBound",
    "PackingBound",
    "ExactSmallBound",
    "StackedBound",
    "build_lower_bound",
    "DecompositionConfig",
    "DecompositionResult",
    "SearchStrategy",
    "BranchAndBoundDecomposer",
    "GreedyDecomposer",
    "decompose",
    "DesignConstraints",
    "ConstraintChecker",
    "ConstraintReport",
    "SynthesisOptions",
    "SynthesizedArchitecture",
    "TopologySynthesizer",
    "synthesize_architecture",
]
