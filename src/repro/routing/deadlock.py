"""Deadlock analysis via the channel dependency graph (CDG).

Section 4.5 of the paper notes that "the cycles that can cause deadlock can
be detected and avoided by the algorithm, while it is also possible to
eliminate such cycles by introducing virtual channels".  The standard theory
(Dally & Seitz) says a deterministic routing function is deadlock-free iff
its channel dependency graph is acyclic: the CDG has one vertex per physical
channel and an edge from channel ``c1`` to channel ``c2`` whenever some
packet may hold ``c1`` while requesting ``c2`` (i.e. the routing function
forwards traffic arriving over ``c1`` onto ``c2``).

This module builds the CDG from a routing table and a set of traffic pairs,
detects cycles, and computes the minimum set of channels that need an extra
virtual channel to break every cycle (greedy feedback-edge heuristic).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from repro.core.graph import DiGraph
from repro.exceptions import DeadlockError
from repro.routing.table import RoutingTable

NodeId = Hashable
ChannelId = tuple[NodeId, NodeId]


def build_channel_dependency_graph(
    table: RoutingTable, pairs: Iterable[tuple[NodeId, NodeId]]
) -> DiGraph:
    """CDG induced by routing the given source/destination pairs."""
    cdg = DiGraph(name=f"cdg({table.topology.name})")
    for source, destination in pairs:
        if source == destination:
            continue
        path = table.route(source, destination)
        channels = list(zip(path, path[1:]))
        for channel in channels:
            cdg.add_node(channel, exist_ok=True)
        for held, requested in zip(channels, channels[1:]):
            if held != requested:
                cdg.add_edge(held, requested, exist_ok=True)
    return cdg


@dataclass(frozen=True)
class DeadlockReport:
    """Outcome of a deadlock analysis."""

    is_deadlock_free: bool
    cycle: tuple[ChannelId, ...]
    num_channels: int
    num_dependencies: int
    channels_needing_virtual_channels: tuple[ChannelId, ...] = ()

    def describe(self) -> str:
        if self.is_deadlock_free:
            return (
                f"deadlock-free: {self.num_channels} channels, "
                f"{self.num_dependencies} dependencies, no cycles"
            )
        cycle_text = " -> ".join(f"{c[0]}->{c[1]}" for c in self.cycle)
        return (
            f"NOT deadlock-free: cycle [{cycle_text}]; "
            f"{len(self.channels_needing_virtual_channels)} channel(s) need a virtual channel"
        )


def _feedback_channels(cdg: DiGraph) -> list[ChannelId]:
    """Greedy feedback-edge set: channels whose duplication breaks all cycles.

    Repeatedly find a cycle and remove the dependency edge leaving the
    highest-out-degree vertex on it; the *target* channel of that edge is the
    one that receives a virtual channel.
    """
    working = cdg.copy()
    chosen: list[ChannelId] = []
    while True:
        cycle = working.find_cycle()
        if cycle is None:
            return chosen
        # pick the dependency edge on the cycle whose source has max out-degree
        edges_on_cycle = list(zip(cycle, cycle[1:] + cycle[:1]))
        edges_on_cycle = [(a, b) for a, b in edges_on_cycle if working.has_edge(a, b)]
        if not edges_on_cycle:  # pragma: no cover - defensive
            return chosen
        source, target = max(edges_on_cycle, key=lambda e: working.out_degree(e[0]))
        working.remove_edge(source, target)
        chosen.append(target)


def analyze_deadlock(
    table: RoutingTable,
    pairs: Iterable[tuple[NodeId, NodeId]],
    raise_on_cycle: bool = False,
) -> DeadlockReport:
    """Analyse a routing table for deadlock freedom on the given traffic pairs."""
    pairs = list(pairs)
    cdg = build_channel_dependency_graph(table, pairs)
    cycle = cdg.find_cycle()
    if cycle is None:
        return DeadlockReport(
            is_deadlock_free=True,
            cycle=(),
            num_channels=cdg.num_nodes,
            num_dependencies=cdg.num_edges,
        )
    report = DeadlockReport(
        is_deadlock_free=False,
        cycle=tuple(cycle),
        num_channels=cdg.num_nodes,
        num_dependencies=cdg.num_edges,
        channels_needing_virtual_channels=tuple(_feedback_channels(cdg)),
    )
    if raise_on_cycle:
        raise DeadlockError(list(report.cycle))
    return report


def assert_deadlock_free(
    table: RoutingTable, pairs: Iterable[tuple[NodeId, NodeId]]
) -> None:
    """Raise :class:`DeadlockError` if the routing admits a dependency cycle."""
    analyze_deadlock(table, pairs, raise_on_cycle=True)
