"""Shortest-path computations over topologies.

Used to (a) fill routing tables for source/destination pairs that the
decomposition's schedules do not cover, (b) compute minimal routes inside
primitive implementation graphs, and (c) derive hop-count metrics.  Paths are
deterministic: ties are broken by the insertion order of routers/channels so
that repeated runs produce identical routing tables.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Hashable

from repro.arch.topology import Topology
from repro.exceptions import RoutingError

NodeId = Hashable


def bfs_shortest_path(topology: Topology, source: NodeId, target: NodeId) -> list[NodeId]:
    """Minimum-hop path from ``source`` to ``target`` (inclusive of both)."""
    if not topology.has_router(source):
        raise RoutingError(f"unknown source router {source!r}")
    if not topology.has_router(target):
        raise RoutingError(f"unknown target router {target!r}")
    if source == target:
        return [source]
    parents: dict[NodeId, NodeId] = {}
    visited = {source}
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in topology.neighbors_out(node):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            parents[neighbor] = node
            if neighbor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(neighbor)
    raise RoutingError(f"no route from {source!r} to {target!r} in {topology.name!r}")


def dijkstra_shortest_path(
    topology: Topology, source: NodeId, target: NodeId, weight: str = "length_mm"
) -> list[NodeId]:
    """Minimum-weight path where the weight is a channel attribute.

    ``weight`` may be ``"length_mm"`` (minimum wire length, hence minimum link
    energy) or ``"hops"`` (equivalent to BFS).
    """
    if weight not in ("length_mm", "hops"):
        raise RoutingError(f"unsupported weight {weight!r}")
    if not topology.has_router(source):
        raise RoutingError(f"unknown source router {source!r}")
    if not topology.has_router(target):
        raise RoutingError(f"unknown target router {target!r}")
    if source == target:
        return [source]

    def channel_weight(a: NodeId, b: NodeId) -> float:
        if weight == "hops":
            return 1.0
        return topology.channel(a, b).length_mm

    distances: dict[NodeId, float] = {source: 0.0}
    parents: dict[NodeId, NodeId] = {}
    counter = 0
    heap: list[tuple[float, int, NodeId]] = [(0.0, counter, source)]
    visited: set[NodeId] = set()
    while heap:
        distance, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            path = [target]
            while path[-1] != source:
                path.append(parents[path[-1]])
            path.reverse()
            return path
        for neighbor in topology.neighbors_out(node):
            if neighbor in visited:
                continue
            candidate = distance + channel_weight(node, neighbor)
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                parents[neighbor] = node
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    raise RoutingError(f"no route from {source!r} to {target!r} in {topology.name!r}")


def all_pairs_shortest_paths(
    topology: Topology, weight: str = "hops"
) -> dict[tuple[NodeId, NodeId], list[NodeId]]:
    """Shortest paths between every ordered pair of routers."""
    paths: dict[tuple[NodeId, NodeId], list[NodeId]] = {}
    for source in topology.routers():
        for target in topology.routers():
            if source == target:
                continue
            if weight == "hops":
                paths[(source, target)] = bfs_shortest_path(topology, source, target)
            else:
                paths[(source, target)] = dijkstra_shortest_path(
                    topology, source, target, weight=weight
                )
    return paths


def path_length_mm(topology: Topology, path: list[NodeId]) -> float:
    """Total wire length of a router path."""
    total = 0.0
    for source, target in zip(path, path[1:]):
        total += topology.channel(source, target).length_mm
    return total
