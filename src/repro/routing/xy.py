"""Dimension-ordered XY routing for the mesh baseline.

The paper's standard-mesh prototype uses deterministic routing; XY routing is
the canonical deadlock-free deterministic routing function for 2-D meshes:
a packet first travels along the X dimension (columns) until it is aligned
with its destination column, then along the Y dimension (rows).  Because the
turn set it uses contains no cycles, the resulting channel dependency graph
is acyclic and the routing is deadlock-free without virtual channels.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

from repro.arch.mesh import MeshTopology
from repro.exceptions import RoutingError
from repro.routing.table import RoutingTable

NodeId = Hashable


def xy_next_hop(mesh: MeshTopology, current: NodeId, destination: NodeId) -> NodeId:
    """The XY-routing next hop for a packet at ``current`` heading to ``destination``."""
    if current == destination:
        raise RoutingError("a packet at its destination needs no next hop")
    current_coords = mesh.coordinates(current)
    destination_coords = mesh.coordinates(destination)
    if current_coords.column != destination_coords.column:
        step = 1 if destination_coords.column > current_coords.column else -1
        return mesh.node_at(current_coords.row, current_coords.column + step)
    step = 1 if destination_coords.row > current_coords.row else -1
    return mesh.node_at(current_coords.row + step, current_coords.column)


def xy_routing_function(mesh: MeshTopology) -> "Callable[[NodeId, NodeId], NodeId]":
    """Precompute every XY decision into a flat per-(node, destination) table.

    XY routing is a pure function of the two routers' grid coordinates, so
    the whole decision table can be materialized once at construction and
    served as dict lookups — the simulator then never re-derives coordinates
    per nomination.  Pairs outside the precomputed set (e.g. routers added
    to the mesh afterwards) fall back to :func:`xy_next_hop`, preserving its
    error behaviour.
    """
    table: dict[tuple[NodeId, NodeId], NodeId] = {}
    routers = mesh.routers()
    for source in routers:
        for destination in routers:
            if source != destination:
                table[(source, destination)] = xy_next_hop(mesh, source, destination)

    def next_hop(current: NodeId, destination: NodeId) -> NodeId:
        hop = table.get((current, destination))
        if hop is not None:
            return hop
        return xy_next_hop(mesh, current, destination)

    return next_hop


def xy_route(mesh: MeshTopology, source: NodeId, destination: NodeId) -> list[NodeId]:
    """The full XY path from ``source`` to ``destination`` (inclusive)."""
    path = [source]
    current = source
    while current != destination:
        current = xy_next_hop(mesh, current, destination)
        path.append(current)
    return path


def build_xy_routing_table(
    mesh: MeshTopology, pairs: Iterable[tuple[NodeId, NodeId]] | None = None
) -> RoutingTable:
    """Routing table with XY entries for the given pairs (default: all pairs)."""
    table = RoutingTable(mesh)
    if pairs is None:
        routers = mesh.routers()
        pairs = [(s, d) for s in routers for d in routers if s != d]
    for source, destination in pairs:
        table.install_path(xy_route(mesh, source, destination))
    return table
