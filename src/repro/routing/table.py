"""Deterministic table-based routing.

Section 4.5 of the paper generates a routing table as a by-product of the
topology synthesis: each node stores, for every destination it needs to talk
to, the neighbour it must forward packets to, derived from the primitives'
optimal schedules.  This module holds the table abstraction itself; the
table *construction* lives in :mod:`repro.core.routing_table` (synthesis) and
:mod:`repro.routing.xy` (mesh baseline).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass, field

from repro.arch.topology import Topology
from repro.exceptions import RoutingError

NodeId = Hashable


@dataclass
class RoutingTable:
    """Next-hop table: ``(current_router, destination) -> next router``."""

    topology: Topology
    _next_hop: dict[tuple[NodeId, NodeId], NodeId] = field(default_factory=dict)
    _version: int = 0
    """Mutation counter: bumped by every accepted :meth:`set_next_hop` (and
    therefore by :meth:`install_path`/:meth:`merge`), so consumers holding a
    :meth:`frozen_next_hop` snapshot can detect that it has gone stale."""

    @property
    def version(self) -> int:
        """Monotonic mutation counter (see :meth:`frozen_next_hop`)."""
        return self._version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def set_next_hop(self, router: NodeId, destination: NodeId, next_hop: NodeId) -> None:
        """Record one table entry; the hop must be an existing channel."""
        if not self.topology.has_router(router):
            raise RoutingError(f"unknown router {router!r}")
        if not self.topology.has_router(destination):
            raise RoutingError(f"unknown destination {destination!r}")
        if not self.topology.has_channel(router, next_hop):
            raise RoutingError(
                f"cannot forward from {router!r} to {next_hop!r}: no such channel"
            )
        existing = self._next_hop.get((router, destination))
        if existing is not None and existing != next_hop:
            raise RoutingError(
                f"conflicting next hops for ({router!r} -> {destination!r}): "
                f"{existing!r} vs {next_hop!r}"
            )
        if existing is None:
            self._next_hop[(router, destination)] = next_hop
            self._version += 1

    def install_path(self, path: Iterable[NodeId]) -> None:
        """Install the entries implied by a full source→destination path."""
        nodes = list(path)
        if len(nodes) < 2:
            return
        destination = nodes[-1]
        for current, upcoming in zip(nodes, nodes[1:]):
            self.set_next_hop(current, destination, upcoming)

    def merge(self, other: "RoutingTable") -> None:
        """Merge entries from another table over the same topology."""
        for (router, destination), next_hop in other._next_hop.items():
            self.set_next_hop(router, destination, next_hop)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def next_hop(self, router: NodeId, destination: NodeId) -> NodeId:
        if router == destination:
            raise RoutingError("a packet at its destination needs no next hop")
        try:
            return self._next_hop[(router, destination)]
        except KeyError as error:
            raise RoutingError(
                f"router {router!r} has no route towards {destination!r}"
            ) from error

    def has_route(self, router: NodeId, destination: NodeId) -> bool:
        return router == destination or (router, destination) in self._next_hop

    def frozen_next_hop(self) -> "Callable[[NodeId, NodeId], NodeId]":
        """Snapshot the table into a flat, validation-free routing function.

        The returned callable answers from a plain dict copied at freeze
        time — no topology lookups, no attribute chases — which is what the
        simulator engines want as their routing source.  Later mutations of
        this table are deliberately not visible through the snapshot: a
        frozen function is a point-in-time copy, and consumers that mutate
        the table afterwards must re-freeze (and, for a live
        :class:`~repro.noc.network.Network`, assign the new function to
        ``network.routing`` so its route memo is dropped too; see
        :meth:`~repro.noc.network.Network.sync_topology` for the matching
        channel-level contract).  The snapshot carries the table's
        :attr:`version` at freeze time as ``table_version`` and whether it
        has gone stale is ``table.version != frozen.table_version``.  Raises
        the same :class:`RoutingError` messages as :meth:`next_hop` for
        missing entries.
        """
        entries = dict(self._next_hop)

        def next_hop(router: NodeId, destination: NodeId) -> NodeId:
            try:
                return entries[(router, destination)]
            except KeyError:
                if router == destination:
                    raise RoutingError(
                        "a packet at its destination needs no next hop"
                    ) from None
                raise RoutingError(
                    f"router {router!r} has no route towards {destination!r}"
                ) from None

        next_hop.table_version = self._version  # type: ignore[attr-defined]
        return next_hop

    def route(self, source: NodeId, destination: NodeId, max_hops: int | None = None) -> list[NodeId]:
        """Follow the table from ``source`` to ``destination``; detect loops."""
        if max_hops is None:
            max_hops = 4 * max(self.topology.num_routers, 1)
        path = [source]
        current = source
        while current != destination:
            current = self.next_hop(current, destination)
            path.append(current)
            if len(path) > max_hops:
                raise RoutingError(
                    f"routing loop detected while going from {source!r} to {destination!r}: {path}"
                )
        return path

    def destinations_of(self, router: NodeId) -> list[NodeId]:
        return [dest for (src, dest) in self._next_hop if src == router]

    def entries(self) -> dict[tuple[NodeId, NodeId], NodeId]:
        return dict(self._next_hop)

    @property
    def num_entries(self) -> int:
        return len(self._next_hop)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate_pairs(self, pairs: Iterable[tuple[NodeId, NodeId]]) -> None:
        """Check that every (source, destination) pair is fully routable."""
        problems: list[str] = []
        for source, destination in pairs:
            try:
                self.route(source, destination)
            except RoutingError as error:
                problems.append(str(error))
        if problems:
            raise RoutingError("routing table incomplete: " + "; ".join(problems))

    def used_channels(self) -> set[tuple[NodeId, NodeId]]:
        """All channels that appear as a next hop for some destination."""
        return {(router, next_hop) for (router, _), next_hop in self._next_hop.items()}

    def describe(self) -> str:
        lines = [f"Routing table for {self.topology.name!r} ({self.num_entries} entries)"]
        for (router, destination), next_hop in sorted(
            self._next_hop.items(), key=lambda item: (repr(item[0][0]), repr(item[0][1]))
        ):
            lines.append(f"  at {router!r}: to {destination!r} via {next_hop!r}")
        return "\n".join(lines)
