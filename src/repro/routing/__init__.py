"""Routing substrate: shortest paths, table routing, the routing-policy
registry (XY/YX, turn models, dateline, up*/down*, shortest path) and
deadlock analysis."""

from repro.routing.deadlock import (
    DeadlockReport,
    analyze_deadlock,
    assert_deadlock_free,
    build_channel_dependency_graph,
)
from repro.routing.policies import (
    POLICIES,
    PolicySpec,
    build_policy_table,
    get_policy,
    policy_names,
    register_policy,
    supported_policies,
)
from repro.routing.shortest_path import (
    all_pairs_shortest_paths,
    bfs_shortest_path,
    dijkstra_shortest_path,
    path_length_mm,
)
from repro.routing.table import RoutingTable
from repro.routing.xy import build_xy_routing_table, xy_next_hop, xy_route

__all__ = [
    "RoutingTable",
    "POLICIES",
    "PolicySpec",
    "register_policy",
    "policy_names",
    "get_policy",
    "build_policy_table",
    "supported_policies",
    "bfs_shortest_path",
    "dijkstra_shortest_path",
    "all_pairs_shortest_paths",
    "path_length_mm",
    "xy_next_hop",
    "xy_route",
    "build_xy_routing_table",
    "DeadlockReport",
    "analyze_deadlock",
    "assert_deadlock_free",
    "build_channel_dependency_graph",
]
