"""Routing-policy registry: deterministic policies over topology families.

Every policy compiles down to the flat :class:`~repro.routing.table.RoutingTable`
next-hop form the event engine already consumes (``(current, destination) ->
next hop``), so the simulator never knows which policy produced its table.
Policies are *deterministic and memoryless by construction*: the next hop is
a pure function of the current router and the destination, never of the
packet's history, which is what makes the channel-dependency-graph (CDG)
deadlock analysis of :mod:`repro.routing.deadlock` exact.

Built-in policies
-----------------
``xy`` / ``yx``
    Dimension-ordered routing for grid fabrics (columns first / rows
    first).  Deadlock-free by construction (acyclic turn set).
``west_first`` / ``odd_even``
    Deterministic minimal variants of the classic turn models: each uses
    only turns its model permits (west-first forbids turns into west;
    odd-even forbids EN/ES turns at even columns and NW/SW turns at odd
    columns), so both are deadlock-free by construction while exercising
    different link sets than XY/YX.
``dateline``
    Shortest-direction routing around wraparound fabrics (torus, ring,
    spidergon rings).  Minimal on the torus/ring, but the wrap cycles
    make its CDG cyclic without virtual channels — the deadlock gate
    records ``vc_channels_needed`` instead of pretending otherwise.
``up_down``
    Generic up*/down* routing for arbitrary (irregular) fabrics: a BFS
    spanning tree orients every channel, packets climb zero or more
    "up" channels then descend "down" channels only.  Deadlock-free by
    construction on any connected bidirectional fabric.
``shortest_path``
    Destination-rooted BFS trees: hop-minimal on every fabric, but with
    no deadlock guarantee — the canonical "let the CDG gate decide"
    policy.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass

from repro.arch.families import RingTopology, TorusTopology
from repro.arch.mesh import MeshTopology
from repro.arch.topology import Topology
from repro.exceptions import RoutingError
from repro.plugins import Registry
from repro.routing.table import RoutingTable
from repro.routing.xy import xy_next_hop

NodeId = Hashable
NextHopFunction = Callable[[Topology, NodeId, NodeId], NodeId]


# ----------------------------------------------------------------------
# grid policies (dimension-ordered and turn-model variants)
# ----------------------------------------------------------------------
def _require_grid(topology: Topology) -> MeshTopology:
    if not isinstance(topology, MeshTopology):
        raise RoutingError(
            f"topology {topology.name!r} has no grid coordinates; "
            "dimension-ordered policies need a mesh-family fabric"
        )
    return topology


def _vertical_step(mesh: MeshTopology, current, destination) -> NodeId:
    coords = mesh.coordinates(current)
    step = 1 if mesh.coordinates(destination).row > coords.row else -1
    return mesh.node_at(coords.row + step, coords.column)


def _horizontal_step(mesh: MeshTopology, current, destination) -> NodeId:
    coords = mesh.coordinates(current)
    step = 1 if mesh.coordinates(destination).column > coords.column else -1
    return mesh.node_at(coords.row, coords.column + step)


def _xy_next(topology: Topology, current: NodeId, destination: NodeId) -> NodeId:
    return xy_next_hop(_require_grid(topology), current, destination)


def _yx_next(topology: Topology, current: NodeId, destination: NodeId) -> NodeId:
    mesh = _require_grid(topology)
    if mesh.row_of(current) != mesh.row_of(destination):
        return _vertical_step(mesh, current, destination)
    return _horizontal_step(mesh, current, destination)


def _west_first_next(topology: Topology, current: NodeId, destination: NodeId) -> NodeId:
    """Deterministic west-first: westbound packets go column-first (all west
    hops up front, as the turn model demands), east/aligned packets go
    row-first then east — no turn into west is ever taken."""
    mesh = _require_grid(topology)
    current_coords = mesh.coordinates(current)
    destination_coords = mesh.coordinates(destination)
    if destination_coords.column < current_coords.column:
        return _horizontal_step(mesh, current, destination)  # west, then rows
    if current_coords.row != destination_coords.row:
        return _vertical_step(mesh, current, destination)  # rows, then east
    return _horizontal_step(mesh, current, destination)


def _odd_even_next(topology: Topology, current: NodeId, destination: NodeId) -> NodeId:
    """Deterministic odd-even: eastbound packets flush their row offset at
    odd columns only (EN/ES turns are forbidden at even columns), westbound
    packets go column-first (NW/SW turns never occur)."""
    mesh = _require_grid(topology)
    current_coords = mesh.coordinates(current)
    destination_coords = mesh.coordinates(destination)
    if current_coords.column == destination_coords.column:
        return _vertical_step(mesh, current, destination)
    if destination_coords.column < current_coords.column:
        return _horizontal_step(mesh, current, destination)
    if current_coords.row == destination_coords.row:
        return _horizontal_step(mesh, current, destination)
    if current_coords.column % 2 == 1:
        return _vertical_step(mesh, current, destination)
    return _horizontal_step(mesh, current, destination)


# ----------------------------------------------------------------------
# dateline (wraparound) policy
# ----------------------------------------------------------------------
def _wrap_step(position: int, target: int, size: int) -> int:
    """Direction (+1/-1) of the shorter way around a size-``size`` cycle."""
    forward = (target - position) % size
    return 1 if forward <= size - forward else -1


def _dateline_next(topology: Topology, current: NodeId, destination: NodeId) -> NodeId:
    if isinstance(topology, TorusTopology):
        current_coords = topology.coordinates(current)
        destination_coords = topology.coordinates(destination)
        if current_coords.column != destination_coords.column:
            step = _wrap_step(
                current_coords.column, destination_coords.column, topology.columns
            )
            return topology.node_at(
                current_coords.row, (current_coords.column + step) % topology.columns
            )
        step = _wrap_step(current_coords.row, destination_coords.row, topology.rows)
        return topology.node_at(
            (current_coords.row + step) % topology.rows, current_coords.column
        )
    if isinstance(topology, RingTopology):
        index = topology.index_of(current)
        step = _wrap_step(index, topology.index_of(destination), topology.ring_size)
        return topology.node_at_index((index + step) % topology.ring_size)
    raise RoutingError(
        f"topology {topology.name!r} has no wraparound dimension; "
        "dateline routing needs a torus- or ring-family fabric"
    )


# ----------------------------------------------------------------------
# generic policies for irregular fabrics
# ----------------------------------------------------------------------
def _bfs_labels(topology: Topology) -> dict[NodeId, tuple[int, int]]:
    """``node -> (level, discovery index)`` of a deterministic BFS tree.

    The root is the first router in insertion order; neighbor expansion
    follows channel insertion order, so labels — and therefore the whole
    up*/down* orientation — are reproducible across runs.
    """
    routers = topology.routers()
    root = routers[0]
    labels: dict[NodeId, tuple[int, int]] = {root: (0, 0)}
    queue: deque[NodeId] = deque([root])
    index = 1
    while queue:
        node = queue.popleft()
        level = labels[node][0]
        for neighbor in topology.neighbors_out(node):
            if neighbor not in labels:
                labels[neighbor] = (level + 1, index)
                index += 1
                queue.append(neighbor)
    if len(labels) != topology.num_routers:
        missing = [node for node in routers if node not in labels]
        raise RoutingError(
            f"topology {topology.name!r} is not connected from {root!r}: "
            f"unreachable routers {missing[:4]!r}"
        )
    return labels


def _up_down_destination_tree(
    topology: Topology,
    destination: NodeId,
    labels: dict[NodeId, tuple[int, int]],
) -> dict[NodeId, NodeId]:
    """Next hops towards one destination under the up*/down* discipline.

    A channel ``a -> b`` is a *down* channel when ``b``'s (level, index)
    label is larger than ``a``'s.  Routers that can reach the destination
    over down channels alone follow the shortest such chain (computed by a
    reverse BFS from the destination); every other router climbs its
    lowest-label up neighbor, which strictly decreases the label and
    terminates at a down-capable router (the root can always descend the
    BFS tree).  Because a packet that ever takes a down channel stays on a
    pure-down chain, no route takes an up channel after a down one — the
    classic acyclicity argument, so the policy is deadlock-free.
    """
    next_hop: dict[NodeId, NodeId] = {}
    down_reachable = {destination}
    queue: deque[NodeId] = deque([destination])
    while queue:
        node = queue.popleft()
        for upstream in topology.neighbors_in(node):
            if upstream in down_reachable or labels[upstream] >= labels[node]:
                continue  # already routed, or the hop would not be "down"
            down_reachable.add(upstream)
            next_hop[upstream] = node
            queue.append(upstream)
    for node in topology.routers():
        if node == destination or node in down_reachable:
            continue
        up_neighbors = [
            neighbor
            for neighbor in topology.neighbors_out(node)
            if labels[neighbor] < labels[node]
        ]
        if not up_neighbors:
            raise RoutingError(
                f"router {node!r} has no up channel towards the root; "
                f"up*/down* routing needs bidirectional tree links in "
                f"{topology.name!r}"
            )
        # prefer an up neighbor that can already descend; else climb fastest
        candidates = sorted(
            up_neighbors,
            key=lambda neighbor: (neighbor not in down_reachable, labels[neighbor]),
        )
        next_hop[node] = candidates[0]
    return next_hop


def _pairs_by_destination(
    topology: Topology, pairs: Iterable[tuple[NodeId, NodeId]] | None
) -> dict[NodeId, set[NodeId] | None]:
    """``destination -> wanted sources`` (``None`` meaning every router)."""
    if pairs is None:
        return {destination: None for destination in topology.routers()}
    grouped: dict[NodeId, set[NodeId] | None] = {}
    for source, destination in pairs:
        if source != destination:
            grouped.setdefault(destination, set()).add(source)  # type: ignore[union-attr]
    return grouped


def _install_destination_tree(
    table: RoutingTable,
    destination: NodeId,
    tree: dict[NodeId, NodeId],
    sources: set[NodeId] | None,
) -> None:
    """Install one destination tree, restricted to the wanted sources' routes.

    Each wanted source's next-hop chain is walked once (stopping early at
    routers already collected), so the restriction costs the routed paths'
    total length rather than rescanning the whole tree per router.
    """
    if sources is None:
        for router, hop in tree.items():
            table.set_next_hop(router, destination, hop)
        return
    on_route: set[NodeId] = set()
    for source in sources:
        current = source
        while current in tree and current not in on_route:
            on_route.add(current)
            current = tree[current]
    for router in on_route:
        table.set_next_hop(router, destination, tree[router])


def _build_up_down_table(
    topology: Topology, pairs: Iterable[tuple[NodeId, NodeId]] | None
) -> RoutingTable:
    labels = _bfs_labels(topology)
    table = RoutingTable(topology)
    for destination, sources in _pairs_by_destination(topology, pairs).items():
        tree = _up_down_destination_tree(topology, destination, labels)
        _install_destination_tree(table, destination, tree, sources)
    return table


def _bfs_destination_tree(topology: Topology, destination: NodeId) -> dict[NodeId, NodeId]:
    """Hop-minimal next hops towards one destination (reverse BFS).

    Rooting the BFS at the destination makes the table *consistent*: every
    router stores exactly one next hop per destination, so paths from
    different sources through a shared router agree (per-pair forward BFS
    would not guarantee that).
    """
    next_hop: dict[NodeId, NodeId] = {}
    seen = {destination}
    queue: deque[NodeId] = deque([destination])
    while queue:
        node = queue.popleft()
        for upstream in topology.neighbors_in(node):
            if upstream in seen:
                continue
            seen.add(upstream)
            next_hop[upstream] = node
            queue.append(upstream)
    return next_hop


def _build_shortest_path_table(
    topology: Topology, pairs: Iterable[tuple[NodeId, NodeId]] | None
) -> RoutingTable:
    table = RoutingTable(topology)
    for destination, sources in _pairs_by_destination(topology, pairs).items():
        tree = _bfs_destination_tree(topology, destination)
        if sources is not None:
            unreachable = [source for source in sources if source not in tree]
            if unreachable:
                raise RoutingError(
                    f"no route from {unreachable[0]!r} to {destination!r} "
                    f"in {topology.name!r}"
                )
        _install_destination_tree(table, destination, tree, sources)
    return table


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicySpec:
    """One named routing policy: table construction + applicability."""

    name: str
    description: str
    deadlock_free_by_construction: bool
    """True when the policy's turn/orientation discipline guarantees an
    acyclic CDG on every fabric it supports (the property suite asserts
    exactly this)."""
    builder: Callable[[Topology, Iterable[tuple[NodeId, NodeId]] | None], RoutingTable]
    supports: Callable[[Topology], bool]
    minimal_families: tuple[str, ...] = ()
    """Family names on which the policy is hop-minimal (matches BFS)."""

    def build(
        self,
        topology: Topology,
        pairs: Iterable[tuple[NodeId, NodeId]] | None = None,
    ) -> RoutingTable:
        """Compile the policy into a flat next-hop table for ``topology``."""
        if not self.supports(topology):
            raise RoutingError(
                f"routing policy {self.name!r} does not support "
                f"topology {topology.name!r}"
            )
        return self.builder(topology, pairs)


#: the routing-policy registry: one :class:`repro.plugins.Registry` cell
#: of the plugin fabric (third-party policies register here, directly or
#: through the ``repro.plugins`` entry-point group)
POLICIES: Registry[PolicySpec] = Registry("routing policy")


def register_policy(spec: PolicySpec) -> PolicySpec:
    """Register (or replace) a routing policy under its name."""
    return POLICIES.register(spec.name, spec)


def policy_names() -> list[str]:
    """All registered policy names, sorted (after plugin discovery)."""
    return POLICIES.names()


def get_policy(name: str) -> PolicySpec:
    """Look a policy up by name.

    Raises :class:`~repro.exceptions.UnknownPluginError` (a
    :class:`~repro.exceptions.ConfigurationError`) listing the available
    policies and the nearest match when the name is unknown.
    """
    return POLICIES.get(name)


def build_policy_table(
    policy: str,
    topology: Topology,
    pairs: Iterable[tuple[NodeId, NodeId]] | None = None,
) -> RoutingTable:
    """Compile the named policy into a routing table over ``topology``."""
    return get_policy(policy).build(topology, pairs)


def supported_policies(topology: Topology) -> list[str]:
    """Names of every registered policy applicable to ``topology``."""
    return [name for name in policy_names() if POLICIES.get(name).supports(topology)]


def _next_hop_builder(next_hop: NextHopFunction):
    """Lift a memoryless next-hop function into a table builder."""

    def build(
        topology: Topology, pairs: Iterable[tuple[NodeId, NodeId]] | None
    ) -> RoutingTable:
        table = RoutingTable(topology)
        if pairs is None:
            routers = topology.routers()
            pairs = [(s, d) for s in routers for d in routers if s != d]
        max_hops = 4 * max(topology.num_routers, 1)
        for source, destination in pairs:
            if source == destination:
                continue
            path = [source]
            while path[-1] != destination:
                path.append(next_hop(topology, path[-1], destination))
                if len(path) > max_hops:
                    raise RoutingError(
                        f"policy next-hop function loops going from "
                        f"{source!r} to {destination!r}: {path[:8]}..."
                    )
            table.install_path(path)
        return table

    return build


def _is_grid(topology: Topology) -> bool:
    return isinstance(topology, MeshTopology)


def _is_wraparound(topology: Topology) -> bool:
    return isinstance(topology, (TorusTopology, RingTopology))


def _any_topology(topology: Topology) -> bool:
    return True


register_policy(
    PolicySpec(
        name="xy",
        description="dimension-ordered: columns first, then rows",
        deadlock_free_by_construction=True,
        builder=_next_hop_builder(_xy_next),
        supports=_is_grid,
        minimal_families=("mesh",),
    )
)

register_policy(
    PolicySpec(
        name="yx",
        description="dimension-ordered: rows first, then columns",
        deadlock_free_by_construction=True,
        builder=_next_hop_builder(_yx_next),
        supports=_is_grid,
        minimal_families=("mesh",),
    )
)

register_policy(
    PolicySpec(
        name="west_first",
        description="west-first turn model, deterministic minimal variant",
        deadlock_free_by_construction=True,
        builder=_next_hop_builder(_west_first_next),
        supports=_is_grid,
        minimal_families=("mesh",),
    )
)

register_policy(
    PolicySpec(
        name="odd_even",
        description="odd-even turn model, deterministic minimal variant",
        deadlock_free_by_construction=True,
        builder=_next_hop_builder(_odd_even_next),
        supports=_is_grid,
        minimal_families=("mesh",),
    )
)

register_policy(
    PolicySpec(
        name="dateline",
        description="shortest way around wraparound fabrics (needs VCs)",
        deadlock_free_by_construction=False,
        builder=_next_hop_builder(_dateline_next),
        supports=_is_wraparound,
        minimal_families=("torus", "ring"),
    )
)

register_policy(
    PolicySpec(
        name="up_down",
        description="up*/down* over a BFS spanning tree (any fabric)",
        deadlock_free_by_construction=True,
        builder=_build_up_down_table,
        supports=_any_topology,
        minimal_families=("fat_tree",),
    )
)

register_policy(
    PolicySpec(
        name="shortest_path",
        description="destination-rooted BFS, hop-minimal, no deadlock guarantee",
        deadlock_free_by_construction=False,
        builder=_build_shortest_path_table,
        supports=_any_topology,
        minimal_families=(
            "mesh",
            "torus",
            "ring",
            "spidergon",
            "fat_tree",
            "long_range_mesh",
        ),
    )
)
