"""Graph interchange: read/write workloads and fabrics in named formats.

The package round-trips the two graph kinds the flow works with —
:class:`~repro.core.graph.ApplicationGraph` workloads (ACGs) and
:class:`~repro.arch.topology.Topology` fabrics — through a registry of
:class:`~repro.io.base.GraphFormat` specs (Pajek ``.net``, Graphviz DOT,
weighted edge list out of the box; plugins add more through the
``repro.plugins`` entry-point group).  The facade functions here pick
the format by explicit name or by file extension and guarantee, for the
built-in formats, that export→import preserves the workload
``structural_fingerprint`` and the topology ``signature`` exactly.
"""

from __future__ import annotations

from pathlib import Path

from repro.arch.topology import Topology
from repro.core.graph import ApplicationGraph
from repro.io import dot, edgelist, pajek  # noqa: F401  (register the formats)
from repro.io.base import (
    FORMATS,
    GraphFormat,
    detect_format,
    format_names,
    get_format,
    register_format,
)

__all__ = [
    "FORMATS",
    "GraphFormat",
    "detect_format",
    "format_names",
    "get_format",
    "register_format",
    "read_workload",
    "write_workload",
    "read_topology",
    "write_topology",
]


def _resolve(path: str | Path, fmt: str | None) -> GraphFormat:
    """The format named ``fmt``, or the one claiming ``path``'s extension."""
    return get_format(fmt) if fmt else detect_format(path)


def read_workload(
    path: str | Path, fmt: str | None = None, name: str | None = None
) -> ApplicationGraph:
    """Read an ACG from ``path`` (format by name or file extension)."""
    acg = _resolve(path, fmt).read_workload(Path(path))
    if name:
        acg.name = name
    return acg


def write_workload(acg: ApplicationGraph, path: str | Path, fmt: str | None = None) -> None:
    """Write an ACG to ``path`` (format by name or file extension)."""
    _resolve(path, fmt).write_workload(acg, Path(path))


def read_topology(path: str | Path, fmt: str | None = None) -> Topology:
    """Read a fabric from ``path`` (format by name or file extension)."""
    return _resolve(path, fmt).read_topology(Path(path))


def write_topology(topology: Topology, path: str | Path, fmt: str | None = None) -> None:
    """Write a fabric to ``path`` (format by name or file extension)."""
    _resolve(path, fmt).write_topology(topology, Path(path))
