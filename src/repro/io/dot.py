"""Graphviz DOT reader/writer for workloads and topologies.

The writer emits a plain ``digraph`` — one node statement per core or
router, one edge statement per communication or channel — so the files
render directly with ``dot``/``neato``.  Repro attributes ride as
ordinary DOT attributes: ``repro_kind`` on the graph (plus
``flit_width_bits``/``name`` for topologies), ``x``/``y`` on positioned
nodes, ``volume``/``bandwidth`` on workload edges and
``length_mm``/``width_bits``/``bandwidth`` on channels.

The reader parses the digraph subset the writer emits (quoted or bare
identifiers, one statement per line or ``;``-separated, ``[]`` attribute
lists, ``//`` and ``#`` comments).  It is not a full DOT parser —
subgraphs, edge chains and HTML labels are out of scope and raise
:class:`~repro.exceptions.WorkloadError`.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.arch.topology import Topology
from repro.core.graph import ApplicationGraph
from repro.exceptions import WorkloadError
from repro.io.base import GraphFormat, format_float, parse_number, register_format

_ID = r'"(?:[^"\\]|\\.)*"|[A-Za-z0-9_.+-]+'
_EDGE_RE = re.compile(rf"^({_ID})\s*->\s*({_ID})\s*(?:\[(.*)\])?$")
_NODE_RE = re.compile(rf"^({_ID})\s*(?:\[(.*)\])?$")
_ATTR_RE = re.compile(rf"([A-Za-z_][A-Za-z0-9_]*)\s*=\s*({_ID})")
_HEADER_RE = re.compile(rf"^\s*(?:strict\s+)?digraph\s*({_ID})?\s*\{{", re.IGNORECASE)


def _quote(label: object) -> str:
    """A DOT identifier: always double-quoted, quotes/backslashes escaped."""
    text = str(label).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{text}"'


def _unquote(token: str) -> str:
    """Undo :func:`_quote` (bare identifiers pass through)."""
    token = token.strip()
    if token.startswith('"') and token.endswith('"'):
        return re.sub(r"\\(.)", r"\1", token[1:-1])
    return token


def _attrs_text(attrs: dict[str, object]) -> str:
    """Attribute mapping -> `` [k="v", ...]`` (empty string when empty)."""
    if not attrs:
        return ""
    body = ", ".join(f"{key}={_quote(value)}" for key, value in attrs.items())
    return f" [{body}]"


def _strip_line_comment(line: str) -> str:
    """Drop a trailing ``//`` or ``#`` comment, respecting quoted strings."""
    in_quote = False
    index = 0
    while index < len(line):
        char = line[index]
        if in_quote:
            if char == "\\":
                index += 1
            elif char == '"':
                in_quote = False
        elif char == '"':
            in_quote = True
        elif char == "#" or (char == "/" and line[index + 1 : index + 2] == "/"):
            return line[:index]
        index += 1
    return line


def _split_statements(line: str) -> list[str]:
    """Split on ``;`` separators that sit outside quoted strings."""
    statements: list[str] = []
    current: list[str] = []
    in_quote = False
    index = 0
    while index < len(line):
        char = line[index]
        if in_quote:
            if char == "\\" and index + 1 < len(line):
                current.append(char)
                index += 1
                char = line[index]
            elif char == '"':
                in_quote = False
        elif char == '"':
            in_quote = True
        elif char == ";":
            statements.append("".join(current))
            current = []
            index += 1
            continue
        current.append(char)
        index += 1
    statements.append("".join(current))
    return statements


def _parse(path: str | Path):
    """Parse a digraph file into (graph_attrs, nodes, edges).

    ``nodes`` maps label -> attrs (insertion-ordered); ``edges`` is a list
    of ``(source, target, attrs)``.
    """
    text = Path(path).read_text(encoding="utf-8")
    header = _HEADER_RE.match(text)
    stripped = text.rstrip()
    if not header or not stripped.endswith("}"):
        raise WorkloadError(f"not a DOT digraph: {path}")
    graph_attrs: dict[str, str] = {}
    if header.group(1):
        graph_attrs["name"] = _unquote(header.group(1))
    nodes: dict[str, dict[str, str]] = {}
    edges: list[tuple[str, str, dict[str, str]]] = []
    body = stripped[header.end() : -1]
    for raw_line in body.splitlines():
        line = _strip_line_comment(raw_line).strip()
        if not line:
            continue
        for statement in filter(None, (s.strip() for s in _split_statements(line))):
            edge_match = _EDGE_RE.match(statement)
            if edge_match:
                attrs = _parse_attrs(edge_match.group(3))
                edges.append(
                    (_unquote(edge_match.group(1)), _unquote(edge_match.group(2)), attrs)
                )
                continue
            node_match = _NODE_RE.match(statement)
            if node_match:
                label = _unquote(node_match.group(1))
                attrs = _parse_attrs(node_match.group(2))
                if label in ("graph", "node", "edge"):
                    if label == "graph":
                        graph_attrs.update(attrs)
                    continue
                nodes.setdefault(label, {}).update(attrs)
                continue
            raise WorkloadError(f"unsupported DOT statement: {statement!r}")
    return graph_attrs, nodes, edges


def _parse_attrs(text: str | None) -> dict[str, str]:
    """An ``[...]`` attribute body -> mapping (values unquoted)."""
    if not text:
        return {}
    return {key: _unquote(value) for key, value in _ATTR_RE.findall(text)}


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def write_workload(acg: ApplicationGraph, path: str | Path) -> None:
    """Write an ACG as a DOT digraph (volumes/bandwidths as edge attrs)."""
    lines = [f"digraph {_quote(acg.name or 'workload')} {{"]
    lines.append('  graph [repro_kind="workload"];')
    for node in acg.nodes():
        attrs: dict[str, object] = {}
        if acg.has_position(node):
            position = acg.position(node)
            attrs = {"x": format_float(position.x), "y": format_float(position.y)}
        lines.append(f"  {_quote(node)}{_attrs_text(attrs)};")
    for source, target in acg.edges():
        attrs = {
            "volume": format_float(acg.volume(source, target)),
            "bandwidth": format_float(acg.bandwidth(source, target)),
        }
        lines.append(f"  {_quote(source)} -> {_quote(target)}{_attrs_text(attrs)};")
    lines.append("}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_workload(path: str | Path) -> ApplicationGraph:
    """Read a DOT digraph into an ACG.

    Arbitrary digraphs import too: unknown attributes are ignored and
    missing volumes default to 1 (bandwidth 0).
    """
    _graph_attrs, nodes, edges = _parse(path)
    acg = ApplicationGraph(name=Path(path).stem)
    for label, attrs in nodes.items():
        acg.add_node(label, exist_ok=True)
        if "x" in attrs and "y" in attrs:
            acg.set_position(label, parse_number(attrs["x"]), parse_number(attrs["y"]))
    for source, target, attrs in edges:
        acg.add_communication(
            source,
            target,
            volume=parse_number(attrs.get("volume", "1")),
            bandwidth=parse_number(attrs.get("bandwidth", "0")),
        )
    return acg


# ----------------------------------------------------------------------
# topologies
# ----------------------------------------------------------------------
def write_topology(topology: Topology, path: str | Path) -> None:
    """Write a fabric as a DOT digraph (channel attrs on the edges)."""
    lines = [f"digraph {_quote(topology.name or 'topology')} {{"]
    lines.append(
        f'  graph [repro_kind="topology", '
        f'flit_width_bits="{int(topology.flit_width_bits)}"];'
    )
    for node in topology.routers():
        attrs: dict[str, object] = {}
        if topology.has_position(node):
            position = topology.position(node)
            attrs = {"x": format_float(position.x), "y": format_float(position.y)}
        lines.append(f"  {_quote(node)}{_attrs_text(attrs)};")
    for channel in topology.channels():
        attrs = {
            "length_mm": format_float(channel.length_mm),
            "width_bits": str(int(channel.width_bits)),
            "bandwidth": format_float(channel.bandwidth_bits_per_cycle),
        }
        lines.append(
            f"  {_quote(channel.source)} -> {_quote(channel.target)}{_attrs_text(attrs)};"
        )
    lines.append("}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_topology(path: str | Path) -> Topology:
    """Read a DOT fabric written by :func:`write_topology`.

    Plain digraphs import as unit-length fabrics at the default flit width.
    """
    graph_attrs, nodes, edges = _parse(path)
    topology = Topology(
        name=graph_attrs.get("name") or Path(path).stem,
        flit_width_bits=int(graph_attrs.get("flit_width_bits", 32)),
    )
    for label, attrs in nodes.items():
        if "x" in attrs and "y" in attrs:
            topology.add_router(label, parse_number(attrs["x"]), parse_number(attrs["y"]))
        else:
            topology.add_router(label)
    for source, target, attrs in edges:
        length = parse_number(attrs["length_mm"]) if "length_mm" in attrs else None
        width = int(parse_number(attrs["width_bits"])) if "width_bits" in attrs else None
        bandwidth = parse_number(attrs["bandwidth"]) if "bandwidth" in attrs else None
        topology.add_channel(
            source,
            target,
            length_mm=length,
            width_bits=width,
            bandwidth_bits_per_cycle=bandwidth,
        )
    return topology


FORMAT = register_format(
    GraphFormat(
        name="dot",
        description="Graphviz DOT digraph (renders directly with dot/neato)",
        extensions=(".dot", ".gv"),
        read_workload=read_workload,
        write_workload=write_workload,
        read_topology=read_topology,
        write_topology=write_topology,
        notes=(
            "Reader covers the emitted digraph subset (no subgraphs or edge "
            "chains); repro data rides as plain node/edge attributes."
        ),
    )
)
