"""Weighted edge-list reader/writer for workloads and topologies.

The body is the simplest possible interchange: one line per directed
edge, ``source target`` plus numeric attribute columns, with node names
shell-quoted so spaces survive.  Metadata that a bare edge list cannot
express rides in ``#%`` directive lines (ordinary ``#`` comments to any
other tool):

* ``#% repro-edgelist kind=<workload|topology> ...`` — payload kind,
  optional display name and (topologies) flit width;
* ``#% node <name> [x=<mm> y=<mm>]`` — declares a node explicitly,
  preserving isolated nodes, insertion order and floorplan positions.

Workload edge columns are ``volume bandwidth``; topology edge columns
are ``length_mm width_bits bandwidth``.  Floats are written with
``repr`` so they parse back bit-identical.
"""

from __future__ import annotations

import shlex
from pathlib import Path

from repro.arch.topology import Topology
from repro.core.graph import ApplicationGraph
from repro.exceptions import WorkloadError
from repro.io.base import GraphFormat, format_float, parse_number, register_format

_DIRECTIVE_PREFIX = "#%"


def _parse_keyvals(fields: list[str]) -> dict[str, str]:
    """``key=value`` fields -> mapping (fields without ``=`` are skipped)."""
    result: dict[str, str] = {}
    for field in fields:
        key, eq, value = field.partition("=")
        if eq:
            result[key] = value
    return result


def _parse_file(path: str | Path):
    """Parse the file into (header, nodes, edges) without interpreting kinds."""
    header: dict[str, str] = {}
    nodes: list[tuple[str, tuple[float, float] | None]] = []
    edges: list[tuple[str, str, list[str]]] = []
    for raw_line in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(_DIRECTIVE_PREFIX):
            try:
                fields = shlex.split(line[len(_DIRECTIVE_PREFIX) :])
            except ValueError as error:
                raise WorkloadError(f"malformed directive line: {raw_line!r}") from error
            if not fields:
                continue
            if fields[0] == "repro-edgelist":
                header.update(_parse_keyvals(fields[1:]))
            elif fields[0] == "node":
                if len(fields) < 2:
                    raise WorkloadError(f"malformed node directive: {raw_line!r}")
                keyvals = _parse_keyvals(fields[2:])
                coords = None
                if "x" in keyvals and "y" in keyvals:
                    coords = (parse_number(keyvals["x"]), parse_number(keyvals["y"]))
                nodes.append((fields[1], coords))
            continue
        if line.startswith("#"):
            continue
        try:
            fields = shlex.split(line)
        except ValueError as error:
            raise WorkloadError(f"malformed edge line: {raw_line!r}") from error
        if len(fields) < 2:
            raise WorkloadError(f"malformed edge line: {raw_line!r}")
        edges.append((fields[0], fields[1], fields[2:]))
    return header, nodes, edges


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def write_workload(acg: ApplicationGraph, path: str | Path) -> None:
    """Write an ACG as a weighted edge list (volume + bandwidth columns)."""
    lines = [f"{_DIRECTIVE_PREFIX} repro-edgelist kind=workload"]
    for node in acg.nodes():
        line = f"{_DIRECTIVE_PREFIX} node {shlex.quote(str(node))}"
        if acg.has_position(node):
            position = acg.position(node)
            line += f" x={format_float(position.x)} y={format_float(position.y)}"
        lines.append(line)
    for source, target in acg.edges():
        lines.append(
            f"{shlex.quote(str(source))} {shlex.quote(str(target))} "
            f"{format_float(acg.volume(source, target))} "
            f"{format_float(acg.bandwidth(source, target))}"
        )
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_workload(path: str | Path) -> ApplicationGraph:
    """Read a weighted edge list into an ACG.

    Files without directives work too: nodes are implied by the edges and
    missing columns default to volume 1, bandwidth 0.
    """
    _header, nodes, edges = _parse_file(path)
    acg = ApplicationGraph(name=Path(path).stem)
    for label, coords in nodes:
        acg.add_node(label, exist_ok=True)
        if coords is not None:
            acg.set_position(label, coords[0], coords[1])
    for source, target, extra in edges:
        volume = parse_number(extra[0]) if len(extra) > 0 else 1.0
        bandwidth = parse_number(extra[1]) if len(extra) > 1 else 0.0
        acg.add_communication(source, target, volume=volume, bandwidth=bandwidth)
    return acg


# ----------------------------------------------------------------------
# topologies
# ----------------------------------------------------------------------
def write_topology(topology: Topology, path: str | Path) -> None:
    """Write a fabric as an edge list (length/width/bandwidth columns)."""
    lines = [
        f"{_DIRECTIVE_PREFIX} repro-edgelist kind=topology "
        f"flit_width_bits={int(topology.flit_width_bits)} "
        f"name={shlex.quote(str(topology.name))}"
    ]
    for node in topology.routers():
        line = f"{_DIRECTIVE_PREFIX} node {shlex.quote(str(node))}"
        if topology.has_position(node):
            position = topology.position(node)
            line += f" x={format_float(position.x)} y={format_float(position.y)}"
        lines.append(line)
    for channel in topology.channels():
        lines.append(
            f"{shlex.quote(str(channel.source))} {shlex.quote(str(channel.target))} "
            f"{format_float(channel.length_mm)} {int(channel.width_bits)} "
            f"{format_float(channel.bandwidth_bits_per_cycle)}"
        )
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_topology(path: str | Path) -> Topology:
    """Read an edge-list fabric written by :func:`write_topology`."""
    header, nodes, edges = _parse_file(path)
    topology = Topology(
        name=header.get("name") or Path(path).stem,
        flit_width_bits=int(header.get("flit_width_bits", 32)),
    )
    for label, coords in nodes:
        if coords is not None:
            topology.add_router(label, coords[0], coords[1])
        else:
            topology.add_router(label)
    for source, target, extra in edges:
        length = parse_number(extra[0]) if len(extra) > 0 else None
        width = int(parse_number(extra[1])) if len(extra) > 1 else None
        bandwidth = parse_number(extra[2]) if len(extra) > 2 else None
        topology.add_channel(
            source,
            target,
            length_mm=length,
            width_bits=width,
            bandwidth_bits_per_cycle=bandwidth,
        )
    return topology


FORMAT = register_format(
    GraphFormat(
        name="edgelist",
        description="weighted edge list (#% directives carry metadata)",
        extensions=(".edges", ".edgelist", ".wel"),
        read_workload=read_workload,
        write_workload=write_workload,
        read_topology=read_topology,
        write_topology=write_topology,
        notes=(
            "#% directive lines are plain comments to other tools; files "
            "without them import with edge-implied nodes and default weights."
        ),
    )
)
