"""The interchange-format registry and the helpers every format shares.

A :class:`GraphFormat` bundles the four operations a format must support
— read/write an :class:`~repro.core.graph.ApplicationGraph` workload and
read/write a :class:`~repro.arch.topology.Topology` fabric — plus the
file extensions it claims.  Formats register in :data:`FORMATS` (one
:class:`repro.plugins.Registry` cell, so third-party formats arrive via
the ``repro.plugins`` entry-point group) and callers go through the
:mod:`repro.io` facade functions, which detect the format from the file
extension when it is not pinned.

Round-trip contract (asserted format-by-format in
``tests/io/test_roundtrip.py``): ``read(write(graph))`` preserves the
workload :meth:`~repro.dse.pipeline.Scenario.structural_fingerprint` and
the topology :meth:`~repro.arch.topology.Topology.signature` exactly —
node names are stringified, float attributes survive via ``repr`` (which
round-trips IEEE doubles), and isolated nodes are kept.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.arch.topology import Topology
from repro.core.graph import ApplicationGraph
from repro.exceptions import WorkloadError
from repro.plugins import Registry


@dataclass(frozen=True)
class GraphFormat:
    """One named interchange format and its four read/write operations."""

    name: str
    description: str
    extensions: tuple[str, ...]
    """File suffixes (with the dot) this format claims for detection."""
    read_workload: Callable[[Path], ApplicationGraph]
    write_workload: Callable[[ApplicationGraph, Path], None]
    read_topology: Callable[[Path], Topology]
    write_topology: Callable[[Topology, Path], None]
    notes: str = ""
    """Interoperability caveats for the docs' format matrix (e.g. which
    attribute columns are repro extensions to the published format)."""


#: the interchange-format registry (plugin-fabric cell: third-party
#: formats register here, directly or via the entry-point group)
FORMATS: Registry[GraphFormat] = Registry("interchange format")


def register_format(spec: GraphFormat) -> GraphFormat:
    """Register (or replace) an interchange format under its name."""
    return FORMATS.register(spec.name, spec)


def format_names() -> list[str]:
    """All registered format names, sorted (after plugin discovery)."""
    return FORMATS.names()


def get_format(name: str) -> GraphFormat:
    """Look a format up by name (uniform unknown-name errors)."""
    return FORMATS.get(name)


def detect_format(path: str | Path) -> GraphFormat:
    """The format claiming ``path``'s extension.

    Raises the registry's uniform unknown-name error (listing the
    registered formats and their extensions) when no format claims it.
    """
    suffix = Path(path).suffix.lower()
    for name in FORMATS.names():
        spec = FORMATS.get(name)
        if suffix in spec.extensions:
            return spec
    raise FORMATS.unknown(suffix or str(path))


# ----------------------------------------------------------------------
# shared serialization helpers
# ----------------------------------------------------------------------
def format_float(value: float) -> str:
    """A float as text that parses back to the identical double (``repr``)."""
    return repr(float(value))


def parse_number(text: str) -> float:
    """Parse a float field, raising :class:`WorkloadError` on garbage."""
    try:
        return float(text)
    except ValueError as error:
        raise WorkloadError(f"expected a number, got {text!r}") from error


def require_positions(graph: ApplicationGraph) -> None:
    """No-op placeholder kept for symmetry; positions are always optional."""
