"""Pajek ``.net`` reader/writer for workloads and topologies.

The baseline dialect is the one Pajek itself accepts: a ``*Vertices``
section numbering the nodes (quoted labels, optional ``x y``
coordinates) followed by ``*Arcs`` lines ``source target weight``.
Repro extends it backward-compatibly:

* a leading ``% repro key=value ...`` directive records the payload kind
  (``workload`` or ``topology``) and, for topologies, the flit width —
  plain Pajek tools treat the line as a comment;
* workload arcs may carry a 4th column with the bandwidth requirement
  (written only when some edge has a non-zero bandwidth);
* topology arcs carry ``length_mm width_bits bandwidth`` columns.

Legacy behaviour of :func:`repro.workloads.pajek.read_pajek` is
preserved: ``*Edges`` sections are read as bidirectional arcs, ``%``
comment lines are skipped, and an arc line with fewer than two fields
raises :class:`~repro.exceptions.WorkloadError`.
"""

from __future__ import annotations

import shlex
from pathlib import Path

from repro.arch.topology import Topology
from repro.core.graph import ApplicationGraph
from repro.exceptions import WorkloadError
from repro.io.base import GraphFormat, format_float, parse_number, register_format

_DIRECTIVE_PREFIX = "% repro"


def _quote(label: object) -> str:
    """A Pajek vertex label: double-quoted, embedded quotes escaped."""
    text = str(label).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{text}"'


def _parse_directive(line: str) -> dict[str, str]:
    """``% repro key=value ...`` -> its key/value mapping (shlex-quoted)."""
    fields = shlex.split(line[len(_DIRECTIVE_PREFIX) :])
    directive: dict[str, str] = {}
    for field in fields:
        key, _, value = field.partition("=")
        directive[key] = value
    return directive


def _split_vertex_line(line: str, raw_line: str) -> tuple[int, str, tuple[float, float] | None]:
    """One ``*Vertices`` line -> (index, label, optional coordinates)."""
    try:
        tokens = shlex.split(line)
    except ValueError as error:
        raise WorkloadError(f"malformed Pajek vertex line: {raw_line!r}") from error
    if not tokens:
        raise WorkloadError(f"malformed Pajek vertex line: {raw_line!r}")
    try:
        index = int(tokens[0])
    except ValueError as error:
        raise WorkloadError(f"malformed Pajek vertex line: {raw_line!r}") from error
    rest = tokens[1:]
    coords: tuple[float, float] | None = None
    if len(rest) >= 3:
        try:
            coords = (float(rest[-2]), float(rest[-1]))
            rest = rest[:-2]
        except ValueError:
            coords = None
    label = " ".join(rest) if rest else str(index)
    return index, label, coords


def _iter_sections(text: str):
    """Yield ``(section, directive, line, raw_line)`` for payload lines."""
    section = None
    directive: dict[str, str] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("%"):
            if line.startswith(_DIRECTIVE_PREFIX):
                directive.update(_parse_directive(line))
            continue
        lowered = line.lower()
        if lowered.startswith("*vertices"):
            section = "vertices"
            continue
        if lowered.startswith("*arcs"):
            section = "arcs"
            continue
        if lowered.startswith("*edges"):
            section = "edges"
            continue
        yield section, directive, line, raw_line


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def write_workload(acg: ApplicationGraph, path: str | Path) -> None:
    """Write an ACG as Pajek ``.net`` (volumes as arc weights)."""
    nodes = acg.nodes()
    index_of = {node: index + 1 for index, node in enumerate(nodes)}
    with_bandwidth = any(acg.bandwidth(s, t) != 0.0 for s, t in acg.edges())
    lines = [f"{_DIRECTIVE_PREFIX} kind=workload"]
    lines.append(f"*Vertices {len(nodes)}")
    for node in nodes:
        line = f"{index_of[node]} {_quote(node)}"
        if acg.has_position(node):
            position = acg.position(node)
            line += f" {format_float(position.x)} {format_float(position.y)}"
        lines.append(line)
    lines.append("*Arcs")
    for source, target in acg.edges():
        line = (
            f"{index_of[source]} {index_of[target]} "
            f"{format_float(acg.volume(source, target))}"
        )
        if with_bandwidth:
            line += f" {format_float(acg.bandwidth(source, target))}"
        lines.append(line)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_workload(path: str | Path) -> ApplicationGraph:
    """Read a Pajek ``.net`` file into an ACG.

    ``*Edges`` sections are treated as bidirectional arcs; labels default
    to the vertex index; coordinates become core positions.
    """
    text = Path(path).read_text(encoding="utf-8")
    acg = ApplicationGraph(name=Path(path).stem)
    labels: dict[int, str] = {}
    for section, _directive, line, raw_line in _iter_sections(text):
        if section == "vertices":
            index, label, coords = _split_vertex_line(line, raw_line)
            labels[index] = label
            acg.add_node(label, exist_ok=True)
            if coords is not None:
                acg.set_position(label, coords[0], coords[1])
        elif section in ("arcs", "edges"):
            parts = line.split()
            if len(parts) < 2:
                raise WorkloadError(f"malformed Pajek arc line: {raw_line!r}")
            source = labels.get(_as_index(parts[0]), parts[0])
            target = labels.get(_as_index(parts[1]), parts[1])
            volume = parse_number(parts[2]) if len(parts) > 2 else 1.0
            bandwidth = parse_number(parts[3]) if len(parts) > 3 else 0.0
            acg.add_communication(source, target, volume=volume, bandwidth=bandwidth)
            if section == "edges":
                acg.add_communication(target, source, volume=volume, bandwidth=bandwidth)
    return acg


def _as_index(token: str) -> int | None:
    """The vertex index a token names, or ``None`` for non-numeric tokens."""
    try:
        return int(token)
    except ValueError:
        return None


# ----------------------------------------------------------------------
# topologies
# ----------------------------------------------------------------------
def write_topology(topology: Topology, path: str | Path) -> None:
    """Write a fabric as Pajek ``.net`` with repro channel-attribute columns."""
    routers = topology.routers()
    index_of = {node: index + 1 for index, node in enumerate(routers)}
    lines = [
        f"{_DIRECTIVE_PREFIX} kind=topology "
        f"flit_width_bits={int(topology.flit_width_bits)} "
        f"name={shlex.quote(str(topology.name))}"
    ]
    lines.append(f"*Vertices {len(routers)}")
    for node in routers:
        line = f"{index_of[node]} {_quote(node)}"
        if topology.has_position(node):
            position = topology.position(node)
            line += f" {format_float(position.x)} {format_float(position.y)}"
        lines.append(line)
    lines.append("*Arcs")
    for channel in topology.channels():
        lines.append(
            f"{index_of[channel.source]} {index_of[channel.target]} "
            f"{format_float(channel.length_mm)} {int(channel.width_bits)} "
            f"{format_float(channel.bandwidth_bits_per_cycle)}"
        )
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_topology(path: str | Path) -> Topology:
    """Read a Pajek ``.net`` fabric written by :func:`write_topology`.

    Plain Pajek files (no repro directive) are accepted too: arcs become
    unit-length channels at the default flit width.
    """
    text = Path(path).read_text(encoding="utf-8")
    labels: dict[int, str] = {}
    vertices: list[tuple[str, tuple[float, float] | None]] = []
    arcs: list[tuple[str, str, list[str]]] = []
    flit_width = 32
    name = Path(path).stem
    for section, directive, line, raw_line in _iter_sections(text):
        if directive.get("kind") not in (None, "", "topology", "workload"):
            raise WorkloadError(f"unknown repro payload kind {directive['kind']!r}")
        if "flit_width_bits" in directive:
            flit_width = int(directive["flit_width_bits"])
        if directive.get("name"):
            name = directive["name"]
        if section == "vertices":
            index, label, coords = _split_vertex_line(line, raw_line)
            labels[index] = label
            vertices.append((label, coords))
        elif section in ("arcs", "edges"):
            parts = line.split()
            if len(parts) < 2:
                raise WorkloadError(f"malformed Pajek arc line: {raw_line!r}")
            source = labels.get(_as_index(parts[0]), parts[0])
            target = labels.get(_as_index(parts[1]), parts[1])
            arcs.append((source, target, parts[2:]))
            if section == "edges":
                arcs.append((target, source, parts[2:]))
    topology = Topology(name=name, flit_width_bits=flit_width)
    for label, coords in vertices:
        if coords is not None:
            topology.add_router(label, coords[0], coords[1])
        else:
            topology.add_router(label)
    for source, target, extra in arcs:
        length = parse_number(extra[0]) if len(extra) > 0 else None
        width = int(parse_number(extra[1])) if len(extra) > 1 else None
        bandwidth = parse_number(extra[2]) if len(extra) > 2 else None
        topology.add_channel(
            source,
            target,
            length_mm=length,
            width_bits=width,
            bandwidth_bits_per_cycle=bandwidth,
        )
    return topology


FORMAT = register_format(
    GraphFormat(
        name="pajek",
        description="Pajek .net (vertices/arcs; repro attribute columns)",
        extensions=(".net", ".pajek"),
        read_workload=read_workload,
        write_workload=write_workload,
        read_topology=read_topology,
        write_topology=write_topology,
        notes=(
            "Coordinates and the 4th/5th arc columns are repro extensions; "
            "plain Pajek tools read the files, repro reads plain Pajek files."
        ),
    )
)
