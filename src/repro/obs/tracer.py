"""Hierarchical span tracing: nestable, contextvar-scoped, free when off.

A *span* is one named, timed slice of work with arbitrary key/value
attributes; spans nest through a :mod:`contextvars` variable, so the
parent of a span is whatever span is active on the current logical call
stack — across ``with`` blocks, generators and threads alike.  The
default tracer is the no-op :data:`NULL_TRACER`: every instrumentation
point in the search, the DSE pipeline and the NoC engines calls
``get_tracer().span(...)`` unconditionally, and pays only a contextvar
read plus an empty context manager until a session installs a real
:class:`Tracer` (see :mod:`repro.obs.session`;
``scripts/bench_simulator.py`` gates that disabled-path overhead).

Spans serialize to plain JSON-able event dicts (:meth:`Span.as_event`),
which is how process-pool workers ship their spans back to the sweep
coordinator: the worker exports events, the coordinator
:meth:`Tracer.adopt`\\ s them and re-parents the worker's root spans
under its own sweep span.  Span ids embed the producing process id, so
ids from different workers never collide.
"""

from __future__ import annotations

import itertools
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass, field

#: the ``type`` tag of a span event dict (metric events use ``"metric"``)
SPAN_EVENT = "span"

#: process-wide span id sequence; combined with the pid for uniqueness
_SEQUENCE = itertools.count(1)


def _new_span_id() -> str:
    """A span id unique across this process and any pool worker."""
    return f"{os.getpid():x}.{next(_SEQUENCE):x}"


@dataclass
class Span:
    """One finished, named, timed slice of work.

    ``start_s`` is wall-clock (``time.time``) so spans from different
    processes merge on a common axis; ``duration_s`` is measured with the
    monotonic ``time.perf_counter`` so it is immune to clock steps.
    """

    name: str
    span_id: str
    parent_id: str | None
    start_s: float
    duration_s: float
    attributes: dict[str, object] = field(default_factory=dict)

    def as_event(self) -> dict[str, object]:
        """This span as a plain JSON-serializable event dict."""
        return {
            "type": SPAN_EVENT,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_event(cls, event: dict[str, object]) -> "Span":
        """Inverse of :meth:`as_event` (unknown keys are ignored)."""
        return cls(
            name=str(event["name"]),
            span_id=str(event["span_id"]),
            parent_id=(None if event.get("parent_id") is None else str(event["parent_id"])),
            start_s=float(event["start_s"]),  # type: ignore[arg-type]
            duration_s=float(event["duration_s"]),  # type: ignore[arg-type]
            attributes=dict(event.get("attributes") or {}),  # type: ignore[arg-type]
        )


class _ActiveSpan:
    """A span in flight: the context-manager handle :meth:`Tracer.span` returns."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attributes", "_start_wall",
                 "_start_perf", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = _new_span_id()
        parent = _ACTIVE_SPAN.get()
        self.parent_id = parent.span_id if parent is not None else None
        self.attributes = attributes

    def annotate(self, **attributes: object) -> None:
        """Attach (or overwrite) attributes on this span while it is open."""
        self.attributes.update(attributes)

    def __enter__(self) -> "_ActiveSpan":
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        self._token = _ACTIVE_SPAN.set(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = time.perf_counter() - self._start_perf
        _ACTIVE_SPAN.reset(self._token)
        self._tracer._finish(
            Span(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start_s=self._start_wall,
                duration_s=duration,
                attributes=self.attributes,
            )
        )


class _NullSpan:
    """The shared no-op span handle: enters, exits and annotates for free."""

    __slots__ = ()

    #: a null span has no identity for children to re-parent under
    span_id = None
    name = ""

    def annotate(self, **attributes: object) -> None:
        """No-op."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = _NullSpan()

#: the innermost open span on this logical call stack (None outside any)
_ACTIVE_SPAN: ContextVar["_ActiveSpan | None"] = ContextVar("repro_obs_active_span",
                                                            default=None)


class Tracer:
    """Collects finished spans; ``with tracer.span("name"): ...`` to record one."""

    #: real tracers record; instrumentation may guard attribute building on this
    enabled = True

    def __init__(self) -> None:
        self._finished: list[Span] = []

    def span(self, name: str, **attributes: object) -> _ActiveSpan:
        """Open a span named ``name``; use as a context manager."""
        return _ActiveSpan(self, name, attributes)

    def _finish(self, span: Span) -> None:
        self._finished.append(span)

    def finished_spans(self) -> list[Span]:
        """All spans recorded so far, in completion order (children first)."""
        return list(self._finished)

    def export_events(self) -> list[dict[str, object]]:
        """Finished spans as plain event dicts (picklable, JSON-able)."""
        return [span.as_event() for span in self._finished]

    def adopt(self, events: list[dict[str, object]], parent_id: str | None = None) -> int:
        """Ingest span events exported by another tracer (e.g. a pool worker).

        Root spans of the batch — spans whose parent is absent from the
        batch itself — are re-parented under ``parent_id``, which is how a
        worker's span tree reattaches beneath the coordinator's sweep span.
        Returns the number of spans adopted.
        """
        spans = [Span.from_event(event) for event in events
                 if event.get("type") == SPAN_EVENT]
        known = {span.span_id for span in spans}
        for span in spans:
            if span.parent_id is None or span.parent_id not in known:
                span.parent_id = parent_id
            self._finished.append(span)
        return len(spans)

    def clear(self) -> None:
        """Drop every recorded span (tests and long-lived sessions)."""
        self._finished.clear()


class NullTracer:
    """The no-op tracer: same surface as :class:`Tracer`, records nothing."""

    enabled = False

    def span(self, name: str, **attributes: object) -> _NullSpan:
        """Return the shared no-op span handle."""
        return NULL_SPAN

    def finished_spans(self) -> list[Span]:
        """Always empty."""
        return []

    def export_events(self) -> list[dict[str, object]]:
        """Always empty."""
        return []

    def adopt(self, events: list[dict[str, object]], parent_id: str | None = None) -> int:
        """Discard the events (nothing to attach them to)."""
        return 0

    def clear(self) -> None:
        """No-op."""


NULL_TRACER = NullTracer()


def current_span() -> "_ActiveSpan | _NullSpan":
    """The innermost open span, or the no-op span outside any."""
    active = _ACTIVE_SPAN.get()
    return active if active is not None else NULL_SPAN


def annotate(**attributes: object) -> None:
    """Attach attributes to the innermost open span (no-op outside any)."""
    current_span().annotate(**attributes)
