"""Unified observability: span tracing, metrics and simulator probes.

Zero-dependency (stdlib-only core, plus the in-repo plugin kernel for
the exporter registry), and free when off: every instrumentation point
across the decomposition search, the DSE pipeline/runner and both NoC
engines goes through :func:`get_tracer` / :func:`get_session`, which
answer no-op objects until a caller installs an :class:`ObsSession`.
The three pillars:

* **tracer** (:mod:`repro.obs.tracer`) — hierarchical contextvar-nested
  spans, serializable across process-pool workers;
* **metrics** (:mod:`repro.obs.metrics`) — labelled counters / gauges /
  histograms on the :class:`~repro.plugins.Registry` kernel, rendered by
  the pluggable exporters in :mod:`repro.obs.export`;
* **probes** (:mod:`repro.obs.probes`) — opt-in per-router / per-channel
  simulator instrumentation whose figures are bit-identical across both
  engines.

See ``docs/observability.md`` for the API tour, the exporter formats and
the measured overhead numbers.
"""

from repro.obs.export import (
    EXPORTERS,
    STAGE_SPAN_NAMES,
    ExporterSpec,
    exporter_names,
    get_exporter,
    read_event_log,
    register_exporter,
    render_jsonl,
    render_prometheus,
    render_summary,
    render_trace_summary,
    write_event_log,
)
from repro.obs.metrics import (
    METRIC_EVENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.probes import SimulatorProbe
from repro.obs.session import (
    NULL_SESSION,
    ObsSession,
    get_session,
    get_tracer,
    use_session,
)
from repro.obs.tracer import (
    NULL_TRACER,
    SPAN_EVENT,
    NullTracer,
    Span,
    Tracer,
    annotate,
    current_span,
)

__all__ = [
    "SPAN_EVENT",
    "METRIC_EVENT",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "annotate",
    "current_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SimulatorProbe",
    "ObsSession",
    "NULL_SESSION",
    "get_session",
    "get_tracer",
    "use_session",
    "EXPORTERS",
    "ExporterSpec",
    "register_exporter",
    "get_exporter",
    "exporter_names",
    "render_jsonl",
    "render_prometheus",
    "render_summary",
    "render_trace_summary",
    "STAGE_SPAN_NAMES",
    "write_event_log",
    "read_event_log",
]
