"""Observability sessions: one switch for tracing, metrics and probes.

An :class:`ObsSession` bundles the three observability pillars — a span
tracer, a metrics registry and the capture-probes flag the simulate
stage consults — and installs them on the current logical call stack
through a :mod:`contextvars` variable.  Everything instrumented calls
:func:`get_tracer` / :func:`get_session`; with no session installed they
answer the no-op :data:`~repro.obs.tracer.NULL_TRACER` and the inert
:data:`NULL_SESSION`, so instrumentation costs (almost) nothing until a
caller opts in::

    from repro.obs import ObsSession, use_session, write_event_log

    session = ObsSession.enabled()
    with use_session(session):
        result = run_sweep(scenarios)
    write_event_log("trace.jsonl", session.events())

The contextvar scoping is what makes sessions safe under the process
pool: a worker process starts with no session and builds its own when
the sweep payload says tracing is on (see
:mod:`repro.dse.runner`), shipping the resulting events back by value.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


@dataclass
class ObsSession:
    """One observability configuration: tracer + metrics + probe switch."""

    tracer: Tracer | NullTracer = NULL_TRACER
    metrics: MetricsRegistry | None = None
    capture_probes: bool = False
    """When true, the simulate stage attaches a
    :class:`~repro.obs.probes.SimulatorProbe` to every simulator it runs
    and flushes the probe's figures into ``metrics``."""

    @classmethod
    def enabled(cls) -> "ObsSession":
        """A fully-on session: live tracer, fresh metrics registry, probes."""
        return cls(tracer=Tracer(), metrics=MetricsRegistry(), capture_probes=True)

    @property
    def active(self) -> bool:
        """True when any pillar is on (what the runner ships to workers)."""
        return self.tracer.enabled or self.metrics is not None or self.capture_probes

    def events(self, extra: Iterable[dict[str, object]] = ()) -> list[dict[str, object]]:
        """Every event this session holds: spans, metrics, then ``extra``."""
        events = list(self.tracer.export_events())
        if self.metrics is not None:
            events.extend(self.metrics.snapshot_events())
        events.extend(extra)
        return events


#: the inert default: no tracing, no metrics, no probes
NULL_SESSION = ObsSession()

_SESSION: ContextVar[ObsSession] = ContextVar("repro_obs_session", default=NULL_SESSION)


def get_session() -> ObsSession:
    """The session installed on this logical call stack (default: inert)."""
    return _SESSION.get()


def get_tracer() -> Tracer | NullTracer:
    """The installed session's tracer (default: the no-op tracer)."""
    return _SESSION.get().tracer


@contextmanager
def use_session(session: ObsSession) -> Iterator[ObsSession]:
    """Install ``session`` for the duration of the ``with`` block."""
    token = _SESSION.set(session)
    try:
        yield session
    finally:
        _SESSION.reset(token)
