"""Pluggable event-log exporters and the trace summary renderer.

Spans and metrics share one currency — plain JSON-able *event dicts*
(``{"type": "span", ...}`` / ``{"type": "metric", ...}``) — and an
exporter is just a function from an event list to text.  The built-in
three (``jsonl``: the raw event log, ``prometheus``: the text exposition
format, ``summary``: aligned tables) live in the :data:`EXPORTERS`
registry, which is a normal plugin-fabric cell: third-party sinks
register through the ``repro.plugins`` entry-point group and become
reachable from ``python -m repro.dse stats --format NAME`` with no edit
inside ``repro.*``; unknown names raise the uniform
:class:`~repro.exceptions.UnknownPluginError`.

:func:`render_trace_summary` is the ``python -m repro.dse trace`` view:
top spans by total/self time, the DSE stage wall breakdown, and the hot
routers/channels the simulator probes measured.
"""

from __future__ import annotations

import json
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.obs.metrics import METRIC_EVENT
from repro.obs.tracer import SPAN_EVENT
from repro.plugins import Registry

#: the DSE pipeline stages, in pipeline order (the stage-breakdown rows)
STAGE_SPAN_NAMES = (
    "dse.decompose",
    "dse.synthesize",
    "dse.route",
    "dse.simulate",
    "dse.score",
)


@dataclass(frozen=True)
class ExporterSpec:
    """One named way to render an event log as text."""

    name: str
    description: str
    render: Callable[[Sequence[dict]], str]


#: the exporter registry (plugin-fabric cell: third-party sinks register
#: here, directly or via the ``repro.plugins`` entry-point group)
EXPORTERS: Registry[ExporterSpec] = Registry("metrics exporter")


def register_exporter(spec: ExporterSpec) -> ExporterSpec:
    """Register (or replace) an exporter under its name."""
    return EXPORTERS.register(spec.name, spec)


def get_exporter(name: str) -> ExporterSpec:
    """Look an exporter up by name (uniform unknown-name errors)."""
    return EXPORTERS.get(name)


def exporter_names() -> list[str]:
    """All registered exporter names, sorted (after plugin discovery)."""
    return EXPORTERS.names()


# ----------------------------------------------------------------------
# the event log on disk
# ----------------------------------------------------------------------
def write_event_log(path: str | Path, events: Iterable[dict]) -> Path:
    """Write events as JSONL (one event per line); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_event_log(path: str | Path) -> list[dict]:
    """Read a JSONL event log back (blank lines are skipped)."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _spans(events: Sequence[dict]) -> list[dict]:
    return [event for event in events if event.get("type") == SPAN_EVENT]


def _metrics(events: Sequence[dict]) -> list[dict]:
    return [event for event in events if event.get("type") == METRIC_EVENT]


# ----------------------------------------------------------------------
# built-in exporters
# ----------------------------------------------------------------------
def render_jsonl(events: Sequence[dict]) -> str:
    """The raw event log: one sorted-key JSON object per line."""
    return "\n".join(json.dumps(event, sort_keys=True) for event in events)


def _prometheus_name(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prometheus_labels(labels: dict, extra: dict | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(f'{_prometheus_name(str(key))}="{merged[key]}"'
                     for key in sorted(merged))
    return "{" + inner + "}"


def render_prometheus(events: Sequence[dict]) -> str:
    """Metric events in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms expand into the
    conventional cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
    series.  Span events are skipped (they are not metrics).
    """
    lines: list[str] = []
    typed: set[str] = set()
    for event in _metrics(events):
        name = _prometheus_name(str(event["name"]))
        kind = event.get("kind")
        labels = dict(event.get("labels") or {})
        if kind in ("counter", "gauge"):
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name}{_prometheus_labels(labels)} {event['value']:g}")
        elif kind == "histogram":
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound in sorted(int(b) for b in (event.get("buckets") or {})):
                cumulative += int(event["buckets"][str(bound)])
                lines.append(
                    f"{name}_bucket{_prometheus_labels(labels, {'le': bound})} {cumulative}"
                )
            lines.append(
                f"{name}_bucket{_prometheus_labels(labels, {'le': '+Inf'})} "
                f"{event.get('count', 0)}"
            )
            lines.append(f"{name}_sum{_prometheus_labels(labels)} {event.get('sum', 0):g}")
            lines.append(f"{name}_count{_prometheus_labels(labels)} {event.get('count', 0)}")
    return "\n".join(lines)


def _aggregate_spans(events: Sequence[dict]) -> list[dict]:
    """Per-name span aggregates: count, total, self (minus children), max."""
    spans = _spans(events)
    child_total: dict[str, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_total[parent] = child_total.get(parent, 0.0) + float(span["duration_s"])
    by_name: dict[str, dict] = {}
    for span in spans:
        duration = float(span["duration_s"])
        own = max(0.0, duration - child_total.get(span["span_id"], 0.0))
        row = by_name.setdefault(
            span["name"],
            {"span": span["name"], "count": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0},
        )
        row["count"] += 1
        row["total_s"] += duration
        row["self_s"] += own
        row["max_s"] = max(row["max_s"], duration)
    return sorted(by_name.values(), key=lambda row: -row["total_s"])


def render_summary(events: Sequence[dict]) -> str:
    """Aligned tables over the whole event log: spans, then metrics."""
    # imported lazily: repro.experiments pulls in the comparison module,
    # which builds on the DSE pipeline this package instruments
    from repro.experiments.reporting import format_table

    sections: list[str] = []
    aggregated = _aggregate_spans(events)
    if aggregated:
        sections.append(format_table(aggregated, title="spans (by total wall)"))
    metric_rows = []
    for event in _metrics(events):
        labels = dict(event.get("labels") or {})
        row: dict[str, object] = {
            "metric": event["name"],
            "kind": event.get("kind", ""),
            "labels": ",".join(f"{key}={labels[key]}" for key in sorted(labels)) or "-",
        }
        if event.get("kind") == "histogram":
            row["count"] = event.get("count", 0)
            row["mean"] = (
                float(event.get("sum", 0.0)) / event["count"] if event.get("count") else 0.0
            )
            row["max"] = event.get("max", 0.0)
        else:
            row["value"] = event.get("value", 0.0)
        metric_rows.append(row)
    if metric_rows:
        sections.append(format_table(metric_rows, title="metrics"))
    if not sections:
        return "(no events)"
    return "\n\n".join(sections)


register_exporter(
    ExporterSpec(
        name="jsonl",
        description="raw JSONL event log (one span/metric event per line)",
        render=render_jsonl,
    )
)
register_exporter(
    ExporterSpec(
        name="prometheus",
        description="Prometheus text exposition format (metric events only)",
        render=render_prometheus,
    )
)
register_exporter(
    ExporterSpec(
        name="summary",
        description="aligned per-sweep summary tables (spans + metrics)",
        render=render_summary,
    )
)


# ----------------------------------------------------------------------
# the `trace` CLI view
# ----------------------------------------------------------------------
def render_trace_summary(events: Sequence[dict], top: int = 10) -> str:
    """Top spans, DSE stage wall breakdown, and hot routers/channels.

    The ``python -m repro.dse trace`` view over an event log written by
    ``run --trace``: where the wall time went (by span name and by
    pipeline stage) and which routers/channels the simulator probes saw
    the most traffic on.
    """
    from repro.experiments.reporting import format_table

    sections: list[str] = []

    aggregated = _aggregate_spans(events)
    if aggregated:
        sections.append(
            format_table(aggregated[:top], title=f"top {min(top, len(aggregated))} spans")
        )
    else:
        sections.append("(no spans in this event log)")

    stage_rows = []
    stage_totals = {
        row["span"]: row for row in aggregated if row["span"] in STAGE_SPAN_NAMES
    }
    stage_wall = sum(row["total_s"] for row in stage_totals.values())
    for name in STAGE_SPAN_NAMES:
        row = stage_totals.get(name)
        if row is None:
            continue
        stage_rows.append(
            {
                "stage": name.removeprefix("dse."),
                "calls": row["count"],
                "total_s": row["total_s"],
                "share": f"{100.0 * row['total_s'] / stage_wall:.0f}%" if stage_wall else "-",
            }
        )
    if stage_rows:
        sections.append(format_table(stage_rows, title="DSE stage wall breakdown"))

    rung_spans = sorted(
        (span for span in _spans(events) if span["name"] == "search.rung"),
        key=lambda span: (
            int((span.get("attributes") or {}).get("index", 0)),
            float(span.get("start_s", 0.0) or 0.0),
        ),
    )
    if rung_spans:
        rung_rows = []
        for span in rung_spans:
            attributes = dict(span.get("attributes") or {})
            rung_rows.append(
                {
                    "rung": attributes.get("rung", "?"),
                    "cells": attributes.get("cells", ""),
                    "evaluated": attributes.get("evaluated", ""),
                    "promoted": attributes.get("promoted", "-"),
                    "pruned": attributes.get("pruned", "-"),
                    "total_s": float(span["duration_s"]),
                }
            )
        sections.append(
            format_table(rung_rows, title="guided search rungs (fidelity ladder)")
        )
        for span in _spans(events):
            if span["name"] != "search.sweep":
                continue
            attributes = dict(span.get("attributes") or {})
            saved = attributes.get("top_rung_saved")
            grid = attributes.get("grid_cells")
            evaluated = attributes.get("top_rung_evaluations")
            if saved is not None and grid:
                sections.append(
                    f"guided search: {evaluated} of {grid} design points "
                    f"reached the top rung ({saved} full-fidelity "
                    "evaluation(s) saved)"
                )
            break

    decompose_spans = [
        span for span in _spans(events) if span["name"] == "search.decompose"
    ]
    if decompose_spans:
        pruned_by: dict[str, int] = {}
        nodes_expanded = 0
        bound_hits = 0
        bound_misses = 0
        for span in decompose_spans:
            attributes = dict(span.get("attributes") or {})
            nodes_expanded += int(attributes.get("nodes_expanded", 0) or 0)
            bound_hits += int(attributes.get("bound_cache_hits", 0) or 0)
            bound_misses += int(attributes.get("bound_cache_misses", 0) or 0)
            for reason, count in (attributes.get("branches_pruned_by") or {}).items():
                pruned_by[reason] = pruned_by.get(reason, 0) + int(count)
        if pruned_by:
            total_pruned = sum(pruned_by.values())
            rows = [
                {
                    "pruned by": reason,
                    "subtrees": count,
                    "share": f"{100.0 * count / total_pruned:.0f}%",
                }
                for reason, count in sorted(pruned_by.items(), key=lambda kv: -kv[1])
            ]
            sections.append(
                format_table(
                    rows,
                    title=(
                        f"decomposition prune provenance ({len(decompose_spans)} "
                        f"search(es), {nodes_expanded} nodes expanded, bound cache "
                        f"{bound_hits}/{bound_hits + bound_misses} hits)"
                    ),
                )
            )

    metrics = _metrics(events)
    delivered = [
        event for event in metrics
        if event["name"] == "noc.router.delivered" and event.get("kind") == "counter"
    ]
    if delivered:
        latency_by_labels = {
            json.dumps(event.get("labels") or {}, sort_keys=True): event
            for event in metrics
            if event["name"] == "noc.router.avg_latency_cycles"
        }
        rows = []
        for event in sorted(delivered, key=lambda item: -float(item["value"])):
            labels = dict(event.get("labels") or {})
            latency = latency_by_labels.get(json.dumps(labels, sort_keys=True))
            rows.append(
                {
                    "router": labels.get("router", "?"),
                    "labels": ",".join(
                        f"{key}={labels[key]}" for key in sorted(labels) if key != "router"
                    ) or "-",
                    "delivered": float(event["value"]),
                    "avg_latency_cycles": float(latency["value"]) if latency else 0.0,
                }
            )
        sections.append(format_table(rows[:top], title=f"hot routers (top {top})"))

    utilization = [
        event for event in metrics if event["name"] == "noc.channel.utilization"
    ]
    if utilization:
        rows = [
            {
                "channel": (event.get("labels") or {}).get("channel", "?"),
                "labels": ",".join(
                    f"{key}={value}"
                    for key, value in sorted((event.get("labels") or {}).items())
                    if key != "channel"
                ) or "-",
                "utilization": float(event["value"]),
            }
            for event in sorted(utilization, key=lambda item: -float(item["value"]))
        ]
        sections.append(format_table(rows[:top], title=f"hot channels (top {top})"))

    return "\n\n".join(sections)
