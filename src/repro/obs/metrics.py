"""Metric instruments (counters, gauges, histograms) on the registry kernel.

A :class:`MetricsRegistry` is a labelled instrument store built on the
generic :class:`~repro.plugins.registry.Registry` kernel: every
``(name, labels)`` combination is one registered instrument, so lookups
share the kernel's uniform
:class:`~repro.exceptions.UnknownPluginError` contract (sorted available
names plus a nearest-match suggestion).  Instruments flatten to plain
*metric event* dicts (:meth:`MetricsRegistry.snapshot_events`), the same
event-log currency spans use, which is what the pluggable exporters in
:mod:`repro.obs.export` render.

Histograms bucket observations by the next power of two, so buckets are
exact integers and the serialized snapshot is bit-identical across
simulator engines and host machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plugins.registry import Registry

#: the ``type`` tag of a metric event dict (span events use ``"span"``)
METRIC_EVENT = "metric"


def _flat_key(name: str, labels: dict[str, str]) -> str:
    """The registry key of one instrument: ``name{label=value,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing count (packets delivered, cells evaluated)."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0
    kind = "counter"

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (add {amount})")
        self.value += amount

    def as_event(self) -> dict[str, object]:
        """This counter as a plain metric event dict."""
        return {
            "type": METRIC_EVENT,
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


@dataclass
class Gauge:
    """A point-in-time value that can go either way (utilization, queue depth)."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0
    kind = "gauge"

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observation."""
        self.value = float(value)

    def as_event(self) -> dict[str, object]:
        """This gauge as a plain metric event dict."""
        return {
            "type": METRIC_EVENT,
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


@dataclass
class Histogram:
    """A distribution bucketed by powers of two (latencies, occupancies).

    ``buckets`` maps the *upper bound* of each power-of-two bucket to its
    observation count; an observation ``v`` lands in the smallest bucket
    ``2**k >= max(v, 1)``.  Integer bounds keep snapshots bit-identical
    wherever they were produced.
    """

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    buckets: dict[int, int] = field(default_factory=dict)
    count: int = 0
    sum: float = 0.0
    max: float = 0.0
    kind = "histogram"

    def observe(self, value: float) -> None:
        """Record one observation."""
        bound = 1
        while bound < value:
            bound <<= 1
        self.buckets[bound] = self.buckets.get(bound, 0) + 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        """The arithmetic mean of the observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def as_event(self) -> dict[str, object]:
        """This histogram as a plain metric event dict (sorted buckets)."""
        return {
            "type": METRIC_EVENT,
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "buckets": {str(bound): self.buckets[bound] for bound in sorted(self.buckets)},
        }


#: every instrument shape the registry can hold
Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create store of labelled instruments with uniform errors.

    ``counter``/``gauge``/``histogram`` return the live instrument for the
    ``(name, labels)`` pair, creating it on first use; :meth:`get` looks an
    existing one up and raises the kernel's uniform
    :class:`~repro.exceptions.UnknownPluginError` for unknown keys —
    exactly like every other registry in repro.
    """

    def __init__(self) -> None:
        #: instruments keyed by ``name{label=value,...}``; discovery is off —
        #: metric instruments are created by measurement, not entry points
        self.instruments: Registry[Metric] = Registry("metric", discover=False)

    def _get_or_create(self, factory: type, name: str, labels: dict[str, object]):
        key = _flat_key(name, {k: str(v) for k, v in labels.items()})
        if key in self.instruments:
            return self.instruments.get(key)
        instrument = factory(name=name, labels={k: str(v) for k, v in labels.items()})
        return self.instruments.register(key, instrument)

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        return self._get_or_create(Histogram, name, labels)

    def get(self, name: str, **labels: object) -> Metric:
        """Look an existing instrument up (uniform unknown-name errors)."""
        return self.instruments.get(_flat_key(name, {k: str(v) for k, v in labels.items()}))

    def snapshot_events(self) -> list[dict[str, object]]:
        """Every instrument as a metric event dict, in sorted-key order."""
        return [instrument.as_event() for instrument in self.instruments.items().values()]

    def ingest(self, events: list[dict[str, object]]) -> int:
        """Merge metric events exported elsewhere (e.g. by a pool worker).

        Counters add, gauges take the incoming value, histograms merge
        buckets/count/sum/max.  Returns the number of events merged.
        """
        merged = 0
        for event in events:
            if event.get("type") != METRIC_EVENT:
                continue
            kind = event.get("kind")
            name = str(event["name"])
            labels = dict(event.get("labels") or {})
            if kind == "counter":
                self.counter(name, **labels).add(float(event["value"]))  # type: ignore[arg-type]
            elif kind == "gauge":
                self.gauge(name, **labels).set(float(event["value"]))  # type: ignore[arg-type]
            elif kind == "histogram":
                histogram = self.histogram(name, **labels)
                histogram.count += int(event.get("count", 0))  # type: ignore[arg-type]
                histogram.sum += float(event.get("sum", 0.0))  # type: ignore[arg-type]
                histogram.max = max(histogram.max, float(event.get("max", 0.0)))  # type: ignore[arg-type]
                for bound, count in (event.get("buckets") or {}).items():  # type: ignore[union-attr]
                    bound_int = int(bound)
                    histogram.buckets[bound_int] = (
                        histogram.buckets.get(bound_int, 0) + int(count)
                    )
            else:
                continue
            merged += 1
        return merged
