"""Opt-in simulator probes: per-router and per-channel visibility.

A :class:`SimulatorProbe` attaches to one
:class:`~repro.noc.simulator.NoCSimulator` and records, at the three
buffer-mutation points both engines share verbatim (injection, arrival,
local delivery):

* a per-router **occupancy histogram** — the router's buffered-packet
  count at every enqueue into it;
* a per-router **latency histogram** over the packets it delivered;
* per-channel **utilization**, read at summary time from the simulator's
  own busy-cycle statistics (no extra hot-path hook).

Because the engine-equivalence contract guarantees both engines perform
the identical injections, arrivals and deliveries (same cycles, same
within-cycle order), every probe figure is bit-identical across engines
— the hypothesis suite in ``tests/property/test_engine_equivalence.py``
asserts it.  When no probe is attached the engines pay one ``is None``
check per event; nothing else.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.obs.metrics import Histogram, MetricsRegistry

NodeId = Hashable


class SimulatorProbe:
    """Per-router occupancy/latency histograms and channel utilization."""

    def __init__(self) -> None:
        self.occupancy: dict[NodeId, Histogram] = {}
        """Per router: histogram of the buffered count at each enqueue."""
        self.latency: dict[NodeId, Histogram] = {}
        """Per destination router: histogram of delivered-packet latencies."""
        self.enqueues = 0
        """Total enqueue events observed (injections + arrivals)."""

    # ------------------------------------------------------------------
    # hot-path hooks (called by the simulator when a probe is attached)
    # ------------------------------------------------------------------
    def record_enqueue(self, node: NodeId, occupancy: int) -> None:
        """One packet entered ``node``'s buffers, which now hold ``occupancy``."""
        histogram = self.occupancy.get(node)
        if histogram is None:
            histogram = self.occupancy[node] = Histogram(
                "noc.router.occupancy", labels={"router": str(node)}
            )
        histogram.observe(occupancy)
        self.enqueues += 1

    def record_delivery(self, node: NodeId, latency: int) -> None:
        """``node`` delivered a packet that took ``latency`` cycles end to end."""
        histogram = self.latency.get(node)
        if histogram is None:
            histogram = self.latency[node] = Histogram(
                "noc.router.latency_cycles", labels={"router": str(node)}
            )
        histogram.observe(latency)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def report_figures(self, statistics) -> dict[str, float]:
        """The ``probe_*`` keys merged into :meth:`NoCSimulator.report`.

        Deterministic, engine-identical floats only — attaching a probe
        adds these keys but never changes any existing report figure.
        """
        delivered = [histogram.count for histogram in self.latency.values()]
        return {
            "probe_total_enqueues": float(self.enqueues),
            "probe_max_router_occupancy": float(
                max((histogram.max for histogram in self.occupancy.values()), default=0.0)
            ),
            "probe_hot_router_delivered": float(max(delivered, default=0)),
        }

    def router_rows(self) -> list[dict[str, object]]:
        """One reporting row per router that saw traffic, sorted by deliveries."""
        rows = []
        for node in sorted(set(self.occupancy) | set(self.latency), key=str):
            occupancy = self.occupancy.get(node)
            latency = self.latency.get(node)
            rows.append(
                {
                    "router": str(node),
                    "delivered": latency.count if latency else 0,
                    "avg_latency_cycles": latency.mean() if latency else 0.0,
                    "max_latency_cycles": latency.max if latency else 0.0,
                    "enqueues": occupancy.count if occupancy else 0,
                    "max_occupancy": occupancy.max if occupancy else 0.0,
                }
            )
        rows.sort(key=lambda row: (-row["delivered"], row["router"]))  # type: ignore[operator]
        return rows

    def channel_rows(self, statistics) -> list[dict[str, object]]:
        """Per-channel utilization rows from the simulator's statistics."""
        return [
            {
                "channel": f"{source!r}->{target!r}",
                "utilization": utilization,
                "busy_cycles": statistics.channel_busy_cycles.get((source, target), 0),
            }
            for (source, target), utilization in sorted(
                statistics.channel_utilization().items(),
                key=lambda item: (-item[1], str(item[0])),
            )
        ]

    def emit_metrics(self, metrics: MetricsRegistry, statistics=None, **labels: object) -> None:
        """Flush the probe's figures into a :class:`MetricsRegistry`.

        Emits per-router delivered counters, average-latency and
        max-occupancy gauges, and (when ``statistics`` is given)
        per-channel utilization gauges.  ``labels`` (e.g. the architecture
        name) are attached to every instrument.
        """
        for row in self.router_rows():
            router = row["router"]
            metrics.counter("noc.router.delivered", router=router, **labels).add(
                float(row["delivered"])  # type: ignore[arg-type]
            )
            metrics.gauge("noc.router.avg_latency_cycles", router=router, **labels).set(
                float(row["avg_latency_cycles"])  # type: ignore[arg-type]
            )
            metrics.gauge("noc.router.max_occupancy", router=router, **labels).set(
                float(row["max_occupancy"])  # type: ignore[arg-type]
            )
        if statistics is not None:
            for row in self.channel_rows(statistics):
                metrics.gauge(
                    "noc.channel.utilization", channel=row["channel"], **labels
                ).set(float(row["utilization"]))  # type: ignore[arg-type]
