"""Planar geometry helpers for the floorplanner."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FloorplanError


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle on the die, in millimetres."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise FloorplanError("rectangle dimensions must be positive")

    @property
    def x_max(self) -> float:
        return self.x + self.width

    @property
    def y_max(self) -> float:
        return self.y + self.height

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def overlaps(self, other: "Rectangle") -> bool:
        """True when the two rectangles share interior area (touching is fine)."""
        return not (
            self.x_max <= other.x + 1e-12
            or other.x_max <= self.x + 1e-12
            or self.y_max <= other.y + 1e-12
            or other.y_max <= self.y + 1e-12
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.x <= x <= self.x_max and self.y <= y <= self.y_max

    def translated(self, dx: float, dy: float) -> "Rectangle":
        return Rectangle(self.x + dx, self.y + dy, self.width, self.height)


def bounding_box(rectangles: list[Rectangle]) -> Rectangle:
    """Smallest rectangle enclosing all given rectangles."""
    if not rectangles:
        raise FloorplanError("bounding box of an empty set is undefined")
    x_min = min(rect.x for rect in rectangles)
    y_min = min(rect.y for rect in rectangles)
    x_max = max(rect.x_max for rect in rectangles)
    y_max = max(rect.y_max for rect in rectangles)
    return Rectangle(x_min, y_min, x_max - x_min, y_max - y_min)


def manhattan(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Manhattan distance between two points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
