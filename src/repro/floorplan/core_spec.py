"""Core (IP block) specifications consumed by the floorplanner.

The paper assumes "an initial floorplanning step has been performed and
optimized for chip area" and that "varying sizes and shapes of the cores"
are one of the reasons regular meshes waste area.  A :class:`CoreSpec`
describes one core's footprint; the placement algorithms in
:mod:`repro.floorplan.placement` turn a set of specs into coordinates.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from repro.exceptions import FloorplanError

NodeId = Hashable


@dataclass(frozen=True)
class CoreSpec:
    """Physical footprint of one core."""

    core_id: NodeId
    width_mm: float = 2.0
    height_mm: float = 2.0

    def __post_init__(self) -> None:
        if self.width_mm <= 0 or self.height_mm <= 0:
            raise FloorplanError(f"core {self.core_id!r} must have positive dimensions")

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    @property
    def aspect_ratio(self) -> float:
        return self.width_mm / self.height_mm


def uniform_cores(core_ids: Iterable[NodeId], size_mm: float = 2.0) -> list[CoreSpec]:
    """Identical square cores — the AES prototype's 16 identical nodes."""
    return [CoreSpec(core_id=core_id, width_mm=size_mm, height_mm=size_mm) for core_id in core_ids]


def heterogeneous_cores(
    sizes: dict[NodeId, tuple[float, float]]
) -> list[CoreSpec]:
    """Cores with individual (width, height) footprints."""
    return [
        CoreSpec(core_id=core_id, width_mm=width, height_mm=height)
        for core_id, (width, height) in sizes.items()
    ]


def total_area(cores: Iterable[CoreSpec]) -> float:
    return sum(core.area_mm2 for core in cores)
