"""Floorplanning substrate: core footprints, geometry and placement."""

from repro.floorplan.core_spec import CoreSpec, heterogeneous_cores, total_area, uniform_cores
from repro.floorplan.geometry import Rectangle, bounding_box, manhattan
from repro.floorplan.placement import (
    Floorplan,
    annealed_floorplan,
    floorplan_from_positions,
    grid_floorplan,
)

__all__ = [
    "CoreSpec",
    "uniform_cores",
    "heterogeneous_cores",
    "total_area",
    "Rectangle",
    "bounding_box",
    "manhattan",
    "Floorplan",
    "grid_floorplan",
    "annealed_floorplan",
    "floorplan_from_positions",
]
