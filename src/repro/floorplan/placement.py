"""Floorplanning: from core footprints to die coordinates.

The decomposition algorithm assumes core positions are known ("we assume that
an initial floorplanning step has been performed and optimized for chip
area"), because the energy cost of a matching depends on the physical link
lengths.  This module provides

* :class:`Floorplan` — the result object: one placed rectangle per core,
  total area, wirelength evaluation against an ACG;
* :func:`grid_floorplan` — row-major shelf packing, area-driven (the paper's
  "optimized for chip area" assumption; exact for identical cores such as
  the 16 AES nodes);
* :func:`annealed_floorplan` — an optional simulated-annealing refinement
  that swaps grid slots to reduce the volume-weighted wirelength of a given
  ACG while keeping the same (area-optimal) outline.  This is the hook for
  the paper's future-work remark about relaxing the fixed-floorplan
  assumption.
"""

from __future__ import annotations

import math
import random
from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.graph import ApplicationGraph
from repro.exceptions import FloorplanError
from repro.floorplan.core_spec import CoreSpec
from repro.floorplan.geometry import Rectangle, bounding_box, manhattan

NodeId = Hashable


@dataclass
class Floorplan:
    """Placed cores: rectangles and their centres."""

    placements: dict[NodeId, Rectangle] = field(default_factory=dict)

    def add(self, core_id: NodeId, rectangle: Rectangle) -> None:
        if core_id in self.placements:
            raise FloorplanError(f"core {core_id!r} is already placed")
        for other_id, other in self.placements.items():
            if rectangle.overlaps(other):
                raise FloorplanError(
                    f"core {core_id!r} overlaps core {other_id!r} in the floorplan"
                )
        self.placements[core_id] = rectangle

    def center(self, core_id: NodeId) -> tuple[float, float]:
        try:
            return self.placements[core_id].center
        except KeyError as error:
            raise FloorplanError(f"core {core_id!r} is not placed") from error

    def centers(self) -> dict[NodeId, tuple[float, float]]:
        return {core_id: rect.center for core_id, rect in self.placements.items()}

    def distance(self, first: NodeId, second: NodeId) -> float:
        return manhattan(self.center(first), self.center(second))

    @property
    def num_cores(self) -> int:
        return len(self.placements)

    def die_area_mm2(self) -> float:
        if not self.placements:
            return 0.0
        return bounding_box(list(self.placements.values())).area

    def utilization(self) -> float:
        """Fraction of the die bounding box occupied by core area."""
        die = self.die_area_mm2()
        if die == 0:
            return 0.0
        return sum(rect.area for rect in self.placements.values()) / die

    def wirelength(self, acg: ApplicationGraph) -> float:
        """Volume-weighted Manhattan wirelength of the ACG on this floorplan."""
        total = 0.0
        for source, target in acg.edges():
            total += acg.volume(source, target) * self.distance(source, target)
        return total

    def apply_to(self, acg: ApplicationGraph) -> None:
        """Write the core centres into the ACG as positions."""
        acg.apply_floorplan(self.centers())


# ----------------------------------------------------------------------
# placement algorithms
# ----------------------------------------------------------------------
def grid_floorplan(
    cores: Sequence[CoreSpec],
    columns: int | None = None,
    spacing_mm: float = 0.0,
) -> Floorplan:
    """Row-major shelf packing into a near-square grid.

    Cores are placed left-to-right, bottom-to-top; each row's height is the
    tallest core in it.  For identical cores this is the area-optimal square
    grid (e.g. the 4x4 arrangement of the AES prototype).
    """
    if not cores:
        raise FloorplanError("cannot floorplan an empty core list")
    if columns is None:
        columns = max(1, int(math.ceil(math.sqrt(len(cores)))))
    if columns < 1:
        raise FloorplanError("the grid needs at least one column")

    floorplan = Floorplan()
    x_cursor = 0.0
    y_cursor = 0.0
    row_height = 0.0
    for index, core in enumerate(cores):
        if index and index % columns == 0:
            x_cursor = 0.0
            y_cursor += row_height + spacing_mm
            row_height = 0.0
        rectangle = Rectangle(x_cursor, y_cursor, core.width_mm, core.height_mm)
        floorplan.add(core.core_id, rectangle)
        x_cursor += core.width_mm + spacing_mm
        row_height = max(row_height, core.height_mm)
    return floorplan


def floorplan_from_positions(
    positions: Mapping[NodeId, tuple[float, float]], core_size_mm: float = 2.0
) -> Floorplan:
    """Build a floorplan from explicit core centres (identical square cores)."""
    floorplan = Floorplan()
    half = core_size_mm / 2.0
    for core_id, (x, y) in positions.items():
        floorplan.add(core_id, Rectangle(x - half, y - half, core_size_mm, core_size_mm))
    return floorplan


def annealed_floorplan(
    cores: Sequence[CoreSpec],
    acg: ApplicationGraph,
    columns: int | None = None,
    iterations: int = 2000,
    initial_temperature: float = 1.0,
    seed: int = 0,
) -> Floorplan:
    """Wirelength-driven refinement of the grid floorplan by slot swapping.

    The outline (and hence the chip area) stays identical to the grid
    floorplan; only the assignment of cores to grid slots changes.  The cost
    being minimised is the volume-weighted Manhattan wirelength of the ACG,
    i.e. the floorplan is tuned to the application the topology will be
    synthesized for.  Requires identical core footprints (slot swapping would
    otherwise create overlaps).
    """
    if not cores:
        raise FloorplanError("cannot floorplan an empty core list")
    first = cores[0]
    if any(
        (core.width_mm, core.height_mm) != (first.width_mm, first.height_mm) for core in cores
    ):
        raise FloorplanError("annealed_floorplan requires identical core footprints")

    base = grid_floorplan(cores, columns=columns)
    slots = [base.placements[core.core_id] for core in cores]
    assignment = list(range(len(cores)))  # assignment[slot_index] = core index
    rng = random.Random(seed)

    def build(assign: Sequence[int]) -> Floorplan:
        plan = Floorplan()
        for slot_index, core_index in enumerate(assign):
            plan.add(cores[core_index].core_id, slots[slot_index])
        return plan

    def cost(assign: Sequence[int]) -> float:
        return build(assign).wirelength(acg)

    current_cost = cost(assignment)
    best_assignment = list(assignment)
    best_cost = current_cost
    temperature = initial_temperature * max(current_cost, 1.0)

    for step in range(max(iterations, 1)):
        i, j = rng.sample(range(len(cores)), 2)
        assignment[i], assignment[j] = assignment[j], assignment[i]
        candidate_cost = cost(assignment)
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            current_cost = candidate_cost
            if candidate_cost < best_cost:
                best_cost = candidate_cost
                best_assignment = list(assignment)
        else:
            assignment[i], assignment[j] = assignment[j], assignment[i]
        temperature *= 0.999

    return build(best_assignment)
