"""AES-128 and its distributed 16-node byte-slice execution model."""

from repro.aes.acg import (
    build_aes_acg,
    expected_aes_edges,
    expected_column_gossip_edges,
    expected_row_shift_edges,
)
from repro.aes.aes_core import (
    BLOCK_SIZE_BYTES,
    FIPS197_CIPHERTEXT,
    FIPS197_KEY,
    FIPS197_PLAINTEXT,
    decrypt_block,
    encrypt_block,
    encrypt_ecb,
    expand_key,
)
from repro.aes.distributed import (
    DistributedAES,
    DistributedTrace,
    column_nodes,
    coordinates_of,
    node_of,
    row_nodes,
)

__all__ = [
    "BLOCK_SIZE_BYTES",
    "encrypt_block",
    "decrypt_block",
    "encrypt_ecb",
    "expand_key",
    "FIPS197_PLAINTEXT",
    "FIPS197_KEY",
    "FIPS197_CIPHERTEXT",
    "DistributedAES",
    "DistributedTrace",
    "node_of",
    "coordinates_of",
    "column_nodes",
    "row_nodes",
    "build_aes_acg",
    "expected_aes_edges",
    "expected_column_gossip_edges",
    "expected_row_shift_edges",
]
