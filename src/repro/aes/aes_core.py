"""A complete AES-128 implementation (FIPS-197).

The paper uses the Advanced Encryption Standard as its driving application:
the AES operations are distributed over a network of 16 identical nodes,
each processing one byte of the 128-bit state.  This module provides the
reference (monolithic) cipher — key expansion, encryption and decryption —
which the distributed byte-slice model in :mod:`repro.aes.distributed` is
validated against: the distributed execution must produce bit-identical
ciphertexts while additionally emitting the communication trace that drives
the NoC simulation.

State convention (FIPS-197): the 16 input bytes fill the 4x4 state matrix
column by column, ``state[row][column] = input[row + 4 * column]``.
"""

from __future__ import annotations

from repro.exceptions import WorkloadError

BLOCK_SIZE_BYTES = 16
KEY_SIZE_BYTES = 16
NUM_ROUNDS = 10

# ----------------------------------------------------------------------
# S-boxes
# ----------------------------------------------------------------------
S_BOX = (
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
    0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
    0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
    0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
    0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
    0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
    0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
    0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
    0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
    0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
    0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
)

INV_S_BOX = tuple(S_BOX.index(value) for value in range(256))

RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


# ----------------------------------------------------------------------
# GF(2^8) arithmetic
# ----------------------------------------------------------------------
def xtime(value: int) -> int:
    """Multiply by x (i.e. by 2) in GF(2^8) modulo the AES polynomial."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def gf_multiply(a: int, b: int) -> int:
    """General multiplication in GF(2^8)."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = xtime(a)
    return result & 0xFF


# ----------------------------------------------------------------------
# state helpers
# ----------------------------------------------------------------------
State = list[list[int]]


def bytes_to_state(block: bytes) -> State:
    """Column-major 4x4 state from a 16-byte block."""
    if len(block) != BLOCK_SIZE_BYTES:
        raise WorkloadError(f"AES blocks are {BLOCK_SIZE_BYTES} bytes, got {len(block)}")
    return [[block[row + 4 * column] for column in range(4)] for row in range(4)]


def state_to_bytes(state: State) -> bytes:
    return bytes(state[row][column] for column in range(4) for row in range(4))


# ----------------------------------------------------------------------
# round transformations (operating on the 4x4 state in place)
# ----------------------------------------------------------------------
def sub_bytes(state: State) -> None:
    for row in range(4):
        for column in range(4):
            state[row][column] = S_BOX[state[row][column]]


def inv_sub_bytes(state: State) -> None:
    for row in range(4):
        for column in range(4):
            state[row][column] = INV_S_BOX[state[row][column]]


def shift_rows(state: State) -> None:
    """Row ``r`` is rotated left by ``r`` positions."""
    for row in range(1, 4):
        state[row] = state[row][row:] + state[row][:row]


def inv_shift_rows(state: State) -> None:
    for row in range(1, 4):
        state[row] = state[row][-row:] + state[row][:-row]


def mix_single_column(column: list[int]) -> list[int]:
    a0, a1, a2, a3 = column
    return [
        gf_multiply(a0, 2) ^ gf_multiply(a1, 3) ^ a2 ^ a3,
        a0 ^ gf_multiply(a1, 2) ^ gf_multiply(a2, 3) ^ a3,
        a0 ^ a1 ^ gf_multiply(a2, 2) ^ gf_multiply(a3, 3),
        gf_multiply(a0, 3) ^ a1 ^ a2 ^ gf_multiply(a3, 2),
    ]


def mix_columns(state: State) -> None:
    for column in range(4):
        mixed = mix_single_column([state[row][column] for row in range(4)])
        for row in range(4):
            state[row][column] = mixed[row]


def inv_mix_single_column(column: list[int]) -> list[int]:
    a0, a1, a2, a3 = column
    return [
        gf_multiply(a0, 14) ^ gf_multiply(a1, 11) ^ gf_multiply(a2, 13) ^ gf_multiply(a3, 9),
        gf_multiply(a0, 9) ^ gf_multiply(a1, 14) ^ gf_multiply(a2, 11) ^ gf_multiply(a3, 13),
        gf_multiply(a0, 13) ^ gf_multiply(a1, 9) ^ gf_multiply(a2, 14) ^ gf_multiply(a3, 11),
        gf_multiply(a0, 11) ^ gf_multiply(a1, 13) ^ gf_multiply(a2, 9) ^ gf_multiply(a3, 14),
    ]


def inv_mix_columns(state: State) -> None:
    for column in range(4):
        mixed = inv_mix_single_column([state[row][column] for row in range(4)])
        for row in range(4):
            state[row][column] = mixed[row]


def add_round_key(state: State, round_key: State) -> None:
    for row in range(4):
        for column in range(4):
            state[row][column] ^= round_key[row][column]


# ----------------------------------------------------------------------
# key schedule
# ----------------------------------------------------------------------
def expand_key(key: bytes) -> list[State]:
    """Expand a 128-bit key into the 11 round keys (each a 4x4 state)."""
    if len(key) != KEY_SIZE_BYTES:
        raise WorkloadError(f"AES-128 keys are {KEY_SIZE_BYTES} bytes, got {len(key)}")
    words: list[list[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 4 * (NUM_ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [S_BOX[value] for value in temp]
            temp[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])

    round_keys: list[State] = []
    for round_index in range(NUM_ROUNDS + 1):
        round_words = words[4 * round_index : 4 * round_index + 4]
        # word w holds one state *column*
        round_keys.append(
            [[round_words[column][row] for column in range(4)] for row in range(4)]
        )
    return round_keys


# ----------------------------------------------------------------------
# block encryption / decryption
# ----------------------------------------------------------------------
def encrypt_block(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128."""
    round_keys = expand_key(key)
    state = bytes_to_state(plaintext)
    add_round_key(state, round_keys[0])
    for round_index in range(1, NUM_ROUNDS):
        sub_bytes(state)
        shift_rows(state)
        mix_columns(state)
        add_round_key(state, round_keys[round_index])
    sub_bytes(state)
    shift_rows(state)
    add_round_key(state, round_keys[NUM_ROUNDS])
    return state_to_bytes(state)


def decrypt_block(ciphertext: bytes, key: bytes) -> bytes:
    """Decrypt one 16-byte block with AES-128."""
    round_keys = expand_key(key)
    state = bytes_to_state(ciphertext)
    add_round_key(state, round_keys[NUM_ROUNDS])
    inv_shift_rows(state)
    inv_sub_bytes(state)
    for round_index in range(NUM_ROUNDS - 1, 0, -1):
        add_round_key(state, round_keys[round_index])
        inv_mix_columns(state)
        inv_shift_rows(state)
        inv_sub_bytes(state)
    add_round_key(state, round_keys[0])
    return state_to_bytes(state)


def encrypt_ecb(plaintext: bytes, key: bytes) -> bytes:
    """ECB encryption of a multi-block message (length must be a multiple of 16)."""
    if len(plaintext) % BLOCK_SIZE_BYTES:
        raise WorkloadError("ECB input length must be a multiple of the block size")
    return b"".join(
        encrypt_block(plaintext[offset : offset + BLOCK_SIZE_BYTES], key)
        for offset in range(0, len(plaintext), BLOCK_SIZE_BYTES)
    )


#: FIPS-197 Appendix B example vector (plaintext, key, ciphertext)
FIPS197_PLAINTEXT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
FIPS197_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
FIPS197_CIPHERTEXT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
