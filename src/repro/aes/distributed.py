"""Distributed AES-128 over a network of 16 byte-slice nodes (Section 5.2).

The paper distributes the AES operations to 16 identical nodes, each
processing one byte of the 128-bit input block.  This module implements that
byte-slice execution model in a way that serves two purposes at once:

1. **functional correctness** — the distributed execution produces the same
   ciphertext as the monolithic reference in :mod:`repro.aes.aes_core`
   (tests assert bit-exactness against the FIPS-197 vector), and
2. **communication tracing** — every inter-node byte transfer is recorded as
   a :class:`~repro.noc.packet.Message`, grouped into *phases* that respect
   the data dependencies between AES steps (a node cannot MixColumns before
   it received the ShiftRows bytes of its column).  The phase list is what
   the NoC simulator replays to measure cycles/block on the mesh and on the
   customized architecture.

Node mapping (matches the paper's Figure 6a labels): the node that owns
state byte ``(row, column)`` is ``4 * row + column + 1``, so row ``r`` owns
nodes ``4r+1 .. 4r+4`` and column ``c`` owns nodes ``{c+1, c+5, c+9, c+13}``.
The inter-node traffic is then

* **ShiftRows** — row ``r`` rotates by ``r``: row 1 and row 3 become 4-node
  loops, row 2 becomes two disjoint swaps, row 0 stays silent; and
* **MixColumns** — every node needs the other three bytes of its column:
  all-to-all (gossip) within each column.

These are exactly the four column MGG-4s, the two row loops and the
remainder (row 2 swaps) that the paper's decomposition finds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aes.aes_core import (
    BLOCK_SIZE_BYTES,
    NUM_ROUNDS,
    S_BOX,
    expand_key,
    mix_single_column,
)
from repro.exceptions import WorkloadError
from repro.noc.packet import Message

BYTE_BITS = 8


def node_of(row: int, column: int) -> int:
    """Network node that owns state byte ``(row, column)`` (1-based, paper labels)."""
    if not (0 <= row < 4 and 0 <= column < 4):
        raise WorkloadError("state coordinates must be within the 4x4 grid")
    return 4 * row + column + 1


def coordinates_of(node: int) -> tuple[int, int]:
    """Inverse of :func:`node_of`."""
    if not 1 <= node <= 16:
        raise WorkloadError("AES byte-slice nodes are numbered 1..16")
    index = node - 1
    return index // 4, index % 4


def column_nodes(column: int) -> list[int]:
    """The four nodes holding state column ``column`` (e.g. column 0 -> [1, 5, 9, 13])."""
    return [node_of(row, column) for row in range(4)]


def row_nodes(row: int) -> list[int]:
    """The four nodes holding state row ``row`` (e.g. row 0 -> [1, 2, 3, 4])."""
    return [node_of(row, column) for column in range(4)]


@dataclass
class DistributedTrace:
    """The outcome of one distributed block encryption."""

    ciphertext: bytes
    phases: list[list[Message]] = field(default_factory=list)
    phase_labels: list[str] = field(default_factory=list)

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def num_messages(self) -> int:
        return sum(len(phase) for phase in self.phases)

    @property
    def total_bits(self) -> int:
        return sum(message.size_bits for phase in self.phases for message in phase)

    def messages(self) -> list[Message]:
        return [message for phase in self.phases for message in phase]

    def traffic_volumes(self) -> dict[tuple[int, int], int]:
        """Aggregate bits exchanged per (source, destination) pair for one block."""
        volumes: dict[tuple[int, int], int] = {}
        for message in self.messages():
            key = (message.source, message.destination)
            volumes[key] = volumes.get(key, 0) + message.size_bits
        return volumes


class DistributedAES:
    """Byte-slice distributed AES-128 encryption with communication tracing."""

    def __init__(self, key: bytes) -> None:
        self.round_keys = expand_key(key)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def encrypt_block(self, plaintext: bytes) -> DistributedTrace:
        """Encrypt one block, returning the ciphertext and the message phases."""
        if len(plaintext) != BLOCK_SIZE_BYTES:
            raise WorkloadError(f"AES blocks are {BLOCK_SIZE_BYTES} bytes")
        # byte_at[node] is the single state byte the node currently owns
        byte_at: dict[int, int] = {}
        for row in range(4):
            for column in range(4):
                byte_at[node_of(row, column)] = plaintext[row + 4 * column]

        trace = DistributedTrace(ciphertext=b"")

        # initial AddRoundKey (local, no communication)
        self._add_round_key(byte_at, 0)

        for round_index in range(1, NUM_ROUNDS + 1):
            self._sub_bytes(byte_at)
            shift_messages = self._shift_rows(byte_at)
            if shift_messages:
                trace.phases.append(shift_messages)
                trace.phase_labels.append(f"round{round_index}_shiftrows")
            if round_index != NUM_ROUNDS:
                mix_messages = self._mix_columns(byte_at)
                trace.phases.append(mix_messages)
                trace.phase_labels.append(f"round{round_index}_mixcolumns")
            self._add_round_key(byte_at, round_index)

        ciphertext = bytes(
            byte_at[node_of(row, column)] for column in range(4) for row in range(4)
        )
        trace.ciphertext = ciphertext
        return trace

    # ------------------------------------------------------------------
    # per-step node behaviour
    # ------------------------------------------------------------------
    def _add_round_key(self, byte_at: dict[int, int], round_index: int) -> None:
        key = self.round_keys[round_index]
        for row in range(4):
            for column in range(4):
                node = node_of(row, column)
                byte_at[node] ^= key[row][column]

    @staticmethod
    def _sub_bytes(byte_at: dict[int, int]) -> None:
        for node, value in byte_at.items():
            byte_at[node] = S_BOX[value]

    @staticmethod
    def _shift_rows(byte_at: dict[int, int]) -> list[Message]:
        """Row ``r`` rotates left by ``r``; returns the inter-node messages."""
        messages: list[Message] = []
        new_values: dict[int, int] = dict(byte_at)
        for row in range(1, 4):
            for column in range(4):
                source_column = (column + row) % 4
                sender = node_of(row, source_column)
                receiver = node_of(row, column)
                new_values[receiver] = byte_at[sender]
                if sender != receiver:
                    messages.append(
                        Message(
                            source=sender,
                            destination=receiver,
                            size_bits=BYTE_BITS,
                            tag=f"shiftrows_row{row}",
                        )
                    )
        byte_at.update(new_values)
        return messages

    @staticmethod
    def _mix_columns(byte_at: dict[int, int]) -> list[Message]:
        """Gossip within every column, then each node computes its output byte."""
        messages: list[Message] = []
        new_values: dict[int, int] = {}
        for column in range(4):
            nodes = column_nodes(column)
            column_bytes = [byte_at[node] for node in nodes]
            for sender in nodes:
                for receiver in nodes:
                    if sender != receiver:
                        messages.append(
                            Message(
                                source=sender,
                                destination=receiver,
                                size_bits=BYTE_BITS,
                                tag=f"mixcolumns_col{column}",
                            )
                        )
            mixed = mix_single_column(column_bytes)
            for row, node in enumerate(nodes):
                new_values[node] = mixed[row]
        byte_at.update(new_values)
        return messages

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def encrypt_blocks(self, plaintext: bytes) -> list[DistributedTrace]:
        """Encrypt a multiple-of-16-bytes message block by block."""
        if len(plaintext) % BLOCK_SIZE_BYTES:
            raise WorkloadError("input length must be a multiple of the block size")
        return [
            self.encrypt_block(plaintext[offset : offset + BLOCK_SIZE_BYTES])
            for offset in range(0, len(plaintext), BLOCK_SIZE_BYTES)
        ]
