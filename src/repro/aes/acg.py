"""The AES Application Characterization Graph of Figure 6a.

The ACG is derived directly from the distributed byte-slice execution: one
block encryption is traced and the per-pair byte counts become the edge
volumes.  The resulting structure is exactly the one the paper shows —
all-to-all traffic inside every state column (from MixColumns) plus the
row-rotation traffic of ShiftRows (rows 1 and 3 are 4-node loops, row 2 is
two disjoint swaps, row 0 is silent).
"""

from __future__ import annotations

from repro.aes.aes_core import FIPS197_KEY, FIPS197_PLAINTEXT
from repro.aes.distributed import DistributedAES, column_nodes, row_nodes
from repro.core.graph import ApplicationGraph
from repro.workloads.acg_builder import attach_grid_floorplan

#: number of blocks the prototype measurement averages over
DEFAULT_BLOCKS = 1


def build_aes_acg(
    key: bytes = FIPS197_KEY,
    plaintext: bytes = FIPS197_PLAINTEXT,
    blocks: int = DEFAULT_BLOCKS,
    bandwidth_fraction: float = 0.01,
    core_size_mm: float = 2.0,
    floorplanned: bool = True,
) -> ApplicationGraph:
    """ACG of the 16-node distributed AES (volumes in bits per ``blocks`` blocks).

    ``bandwidth_fraction`` converts volumes into bandwidth requirements
    (bits/cycle) for the constraint checks; the default corresponds to
    spreading a block's traffic over a few hundred cycles, which is the
    operating point of the paper's prototype.
    """
    trace = DistributedAES(key).encrypt_block(plaintext)
    acg = ApplicationGraph(name="aes_16")
    for node in range(1, 17):
        acg.add_node(node, exist_ok=True)
    for (source, destination), bits in sorted(trace.traffic_volumes().items()):
        volume = float(bits * blocks)
        acg.add_communication(
            source,
            destination,
            volume=volume,
            bandwidth=bandwidth_fraction * volume,
        )
    if floorplanned:
        attach_grid_floorplan(acg, core_size_mm=core_size_mm, columns=4)
    return acg


def expected_column_gossip_edges() -> set[tuple[int, int]]:
    """The 4 x 12 directed edges of the four column all-to-all patterns."""
    edges: set[tuple[int, int]] = set()
    for column in range(4):
        nodes = column_nodes(column)
        for source in nodes:
            for target in nodes:
                if source != target:
                    edges.add((source, target))
    return edges


def expected_row_shift_edges() -> set[tuple[int, int]]:
    """The directed edges contributed by ShiftRows (rows 1-3)."""
    edges: set[tuple[int, int]] = set()
    for row in range(1, 4):
        nodes = row_nodes(row)
        for column in range(4):
            sender = nodes[(column + row) % 4]
            receiver = nodes[column]
            if sender != receiver:
                edges.add((sender, receiver))
    return edges


def expected_aes_edges() -> set[tuple[int, int]]:
    """All directed edges of the Figure-6a ACG."""
    return expected_column_gossip_edges() | expected_row_shift_edges()
