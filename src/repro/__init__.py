"""repro: energy- and performance-driven NoC communication architecture
synthesis using a decomposition approach (DATE 2005 reproduction).

The public API is organised in subpackages:

* :mod:`repro.core` — ACGs, the communication library, the branch-and-bound
  decomposition, and topology synthesis (the paper's contribution).
* :mod:`repro.energy` — Equation-1 bit-energy model, technology points and
  traffic-driven power accounting.
* :mod:`repro.arch` — topology abstraction, the standard-fabric family
  registry (mesh, torus, ring, spidergon, fat tree, long-range mesh),
  customized topologies and structural metrics.
* :mod:`repro.routing` — shortest paths, table routing, the routing-policy
  registry (XY/YX, turn models, dateline, up*/down*, shortest path) and
  CDG deadlock analysis.
* :mod:`repro.noc` — cycle-based NoC simulator used for the prototype-style
  throughput / latency / energy comparison.
* :mod:`repro.floorplan` — simple floorplanner providing core coordinates.
* :mod:`repro.workloads` — TGFF-like and Pajek-like benchmark generators.
* :mod:`repro.aes` — AES-128 and its distributed 16-node byte-slice model.
* :mod:`repro.plugins` — the registry kernel behind every extension point
  and ``repro.plugins`` entry-point discovery for third-party packages.
* :mod:`repro.io` — graph interchange (Pajek, Graphviz DOT, weighted edge
  lists) with exact round-trips for workloads and fabrics.
* :mod:`repro.api` — the stable, lazily-imported facade for downstream code.
* :mod:`repro.experiments` — the experiments behind every figure and table.
* :mod:`repro.dse` — batch design-space exploration: scenario suites
  (including ``file:`` suites over interchange files), a cached sweep
  runner and Pareto-front reporting (``python -m repro.dse``).

Quickstart::

    from repro import ApplicationGraph, default_library, decompose, synthesize_architecture

    acg = ApplicationGraph.from_traffic({(1, 2): 128, (2, 1): 128, (1, 3): 64})
    result = decompose(acg, default_library())
    architecture = synthesize_architecture(acg, result)
    print(result.describe())
    print(architecture.describe())
"""

from repro.core import (
    ApplicationGraph,
    BranchAndBoundDecomposer,
    CommunicationLibrary,
    CommunicationPrimitive,
    CostModel,
    DecompositionConfig,
    DecompositionResult,
    DesignConstraints,
    DiGraph,
    EnergyCostModel,
    GreedyDecomposer,
    LinkCountCostModel,
    Matching,
    PrimitiveKind,
    RemainderGraph,
    SearchStrategy,
    SynthesisOptions,
    SynthesizedArchitecture,
    TopologySynthesizer,
    UnitCostModel,
    aes_library,
    decompose,
    default_library,
    extended_library,
    minimal_library,
    synthesize_architecture,
)
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ApplicationGraph",
    "DiGraph",
    "CommunicationPrimitive",
    "PrimitiveKind",
    "CommunicationLibrary",
    "default_library",
    "aes_library",
    "extended_library",
    "minimal_library",
    "Matching",
    "RemainderGraph",
    "CostModel",
    "UnitCostModel",
    "LinkCountCostModel",
    "EnergyCostModel",
    "DecompositionConfig",
    "DecompositionResult",
    "SearchStrategy",
    "BranchAndBoundDecomposer",
    "GreedyDecomposer",
    "decompose",
    "DesignConstraints",
    "SynthesisOptions",
    "SynthesizedArchitecture",
    "TopologySynthesizer",
    "synthesize_architecture",
]
