"""Customized (application-specific) topologies with provenance tracking.

The customized architecture of the paper is obtained by gluing together the
implementation graphs of all chosen primitives plus direct links for the
remainder edges (Section 3).  :class:`CustomTopology` extends the generic
:class:`~repro.arch.topology.Topology` with provenance: every channel knows
which primitive instance (or remainder edge) created it, which is useful for
reporting, debugging and for the ablation benchmarks that compare resource
usage across libraries.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.arch.topology import Channel, Topology

NodeId = Hashable


@dataclass(frozen=True)
class ChannelOrigin:
    """Where a channel of a customized topology came from."""

    kind: str
    """``"primitive"`` or ``"remainder"``."""
    label: str
    """Primitive name + matching index, or ``"remainder"``."""

    def __str__(self) -> str:
        return self.label


class CustomTopology(Topology):
    """Topology assembled from primitive implementation graphs + remainder links."""

    def __init__(self, name: str = "custom", flit_width_bits: int = 32) -> None:
        super().__init__(name=name, flit_width_bits=flit_width_bits)
        self._origins: dict[tuple[NodeId, NodeId], list[ChannelOrigin]] = {}

    def add_channel_with_origin(
        self,
        source: NodeId,
        target: NodeId,
        origin: ChannelOrigin,
        length_mm: float | None = None,
        width_bits: int | None = None,
        bandwidth_bits_per_cycle: float | None = None,
        bidirectional: bool = False,
    ) -> Channel:
        """Like :meth:`add_channel`, recording the origin of the channel."""
        channel = self.add_channel(
            source,
            target,
            length_mm=length_mm,
            width_bits=width_bits,
            bandwidth_bits_per_cycle=bandwidth_bits_per_cycle,
            bidirectional=False,
        )
        self._origins.setdefault((source, target), []).append(origin)
        if bidirectional:
            self.add_channel_with_origin(
                target,
                source,
                origin,
                length_mm=length_mm,
                width_bits=width_bits,
                bandwidth_bits_per_cycle=bandwidth_bits_per_cycle,
                bidirectional=False,
            )
        return channel

    def origins(self, source: NodeId, target: NodeId) -> list[ChannelOrigin]:
        """All origins that contributed the channel (may be several matchings)."""
        return list(self._origins.get((source, target), []))

    def channels_from_primitives(self) -> list[tuple[NodeId, NodeId]]:
        return [
            key
            for key, origins in self._origins.items()
            if any(origin.kind == "primitive" for origin in origins)
        ]

    def channels_from_remainder(self) -> list[tuple[NodeId, NodeId]]:
        return [
            key
            for key, origins in self._origins.items()
            if all(origin.kind == "remainder" for origin in origins)
        ]

    def provenance_summary(self) -> dict[str, int]:
        """Channel counts per origin label (e.g. ``{"MGG4#0": 8, "remainder": 3}``)."""
        counts: dict[str, int] = {}
        for origins in self._origins.values():
            for origin in origins:
                counts[origin.label] = counts.get(origin.label, 0) + 1
        return counts

    def describe(self) -> str:
        lines = [
            f"Customized topology {self.name!r}: {self.num_routers} routers, "
            f"{self.num_physical_links} physical links "
            f"({self.num_channels} directed channels)"
        ]
        for (source, target), origins in sorted(
            self._origins.items(), key=lambda item: (repr(item[0][0]), repr(item[0][1]))
        ):
            labels = ", ".join(str(origin) for origin in origins)
            lines.append(f"  {source!r} -> {target!r}  [{labels}]")
        return "\n".join(lines)
