"""Architecture substrate: topology abstraction, mesh baseline, customized
topologies and structural metrics."""

from repro.arch.custom import ChannelOrigin, CustomTopology
from repro.arch.mesh import MeshCoordinates, MeshTopology, build_mesh
from repro.arch.metrics import (
    BisectionResult,
    TopologyReport,
    all_pairs_hop_counts,
    average_hop_count,
    bisection_bandwidth,
    diameter,
    is_strongly_connected,
    topology_report,
)
from repro.arch.topology import Channel, Topology

__all__ = [
    "Topology",
    "Channel",
    "MeshTopology",
    "MeshCoordinates",
    "build_mesh",
    "CustomTopology",
    "ChannelOrigin",
    "TopologyReport",
    "BisectionResult",
    "topology_report",
    "diameter",
    "average_hop_count",
    "all_pairs_hop_counts",
    "bisection_bandwidth",
    "is_strongly_connected",
]
