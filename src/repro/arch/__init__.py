"""Architecture substrate: topology abstraction, standard fabric families
(mesh, torus, ring, spidergon, fat tree, long-range mesh), customized
topologies and structural metrics."""

from repro.arch.custom import ChannelOrigin, CustomTopology
from repro.arch.families import (
    FAMILIES,
    FamilySpec,
    FatTreeTopology,
    LongRangeMeshTopology,
    RingTopology,
    SpidergonTopology,
    TorusTopology,
    build_fabric,
    family_names,
    get_family,
    infrastructure_router,
    most_square_grid,
    pad_node_ids,
    register_family,
)
from repro.arch.mesh import MeshCoordinates, MeshTopology, build_mesh
from repro.arch.metrics import (
    BisectionResult,
    TopologyReport,
    all_pairs_hop_counts,
    average_hop_count,
    bisection_bandwidth,
    diameter,
    is_strongly_connected,
    topology_report,
)
from repro.arch.topology import Channel, Topology

__all__ = [
    "Topology",
    "FAMILIES",
    "Channel",
    "MeshTopology",
    "MeshCoordinates",
    "build_mesh",
    "CustomTopology",
    "ChannelOrigin",
    "FamilySpec",
    "TorusTopology",
    "RingTopology",
    "SpidergonTopology",
    "FatTreeTopology",
    "LongRangeMeshTopology",
    "register_family",
    "family_names",
    "get_family",
    "build_fabric",
    "most_square_grid",
    "pad_node_ids",
    "infrastructure_router",
    "TopologyReport",
    "BisectionResult",
    "topology_report",
    "diameter",
    "average_hop_count",
    "all_pairs_hop_counts",
    "bisection_bandwidth",
    "is_strongly_connected",
]
