"""Topology-family registry: declarative standard fabrics beyond the mesh.

The paper compares decomposition-synthesized custom NoCs against a
*standard* architecture; this module is what makes "standard" a family
axis rather than a hard-wired 2-D mesh.  A :class:`FamilySpec` names a
fabric family and knows how to instantiate it from a flat list of node
ids plus declarative parameters (tile pitch, flit width); the registry
(:func:`register_family` / :func:`get_family` / :func:`build_fabric`)
is what :func:`repro.dse.pipeline.build_baseline_fabric` and the DSE
``topology`` axis consume.

Built-in families
-----------------
``mesh``
    The classic ``rows x columns`` grid (:class:`~repro.arch.mesh.MeshTopology`);
    the shape is the most-square grid that fits the node count.
``torus``
    The mesh plus per-row/per-column wraparound channels
    (:class:`TorusTopology`); wrap wires are modelled with length
    ``tile_pitch * (dimension - 1)``.
``ring``
    A bidirectional cycle (:class:`RingTopology`), the cheapest
    connected fabric (degree 2 everywhere).
``spidergon``
    The octagon/Spidergon layout (:class:`SpidergonTopology`): a ring
    plus cross links connecting diametrically opposite routers.
``fat_tree``
    An ``arity``-ary switch tree (:class:`FatTreeTopology`): cores sit
    at the leaves, internal ``__sw*`` switch routers aggregate upward
    with link bandwidth doubling per level.
``long_range_mesh``
    A mesh augmented with a few deterministic long-range shortcut links
    (:class:`LongRangeMeshTopology`), the small-world-insertion fabric.

All builders are deterministic: the same node ids and parameters always
produce the same channels in the same insertion order, which is what
keeps routing tables, CDG analyses and DSE cache keys reproducible.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass

from repro.arch.mesh import MeshTopology
from repro.arch.topology import Topology
from repro.exceptions import SynthesisError
from repro.plugins import Registry

NodeId = Hashable


def most_square_grid(count: int) -> tuple[int, int]:
    """The ``(rows, columns)`` of the most-square grid holding ``count`` nodes.

    16 -> 4x4, 12 -> 3x4, 10 -> 3x4 (with padding); this is the shape rule
    the mesh baseline has always used.
    """
    if count < 1:
        raise SynthesisError("a grid needs at least one node")
    columns = max(1, math.ceil(math.sqrt(count)))
    rows = max(1, math.ceil(count / columns))
    return rows, columns


# ----------------------------------------------------------------------
# topology classes
# ----------------------------------------------------------------------
class TorusTopology(MeshTopology):
    """A 2-D torus: the mesh plus wraparound channels per row and column.

    Dimensions shorter than three routers get no wrap channel (the wrap
    would duplicate an existing mesh link or form a self-loop), so small
    tori degenerate gracefully towards the mesh.  Wrap wires are charged
    ``tile_pitch * (dimension - 1)`` of physical length.
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        tile_pitch_mm: float = 2.0,
        flit_width_bits: int = 32,
        node_ids: Sequence[NodeId] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(
            rows,
            columns,
            tile_pitch_mm=tile_pitch_mm,
            flit_width_bits=flit_width_bits,
            node_ids=node_ids,
            name=name or f"torus_{rows}x{columns}",
        )
        if columns >= 3:
            for row in range(rows):
                self.add_channel(
                    self.node_at(row, columns - 1),
                    self.node_at(row, 0),
                    length_mm=tile_pitch_mm * (columns - 1),
                    bidirectional=True,
                )
        if rows >= 3:
            for column in range(columns):
                self.add_channel(
                    self.node_at(rows - 1, column),
                    self.node_at(0, column),
                    length_mm=tile_pitch_mm * (rows - 1),
                    bidirectional=True,
                )

    def torus_hops(self, source: NodeId, target: NodeId) -> int:
        """Minimum hop count with wraparound taken into account."""
        source_coords = self.coordinates(source)
        target_coords = self.coordinates(target)
        row_delta = abs(source_coords.row - target_coords.row)
        column_delta = abs(source_coords.column - target_coords.column)
        if self.rows >= 3:
            row_delta = min(row_delta, self.rows - row_delta)
        if self.columns >= 3:
            column_delta = min(column_delta, self.columns - column_delta)
        return row_delta + column_delta


class RingTopology(Topology):
    """A bidirectional ring of routers placed on a circle.

    Every ring link is charged one tile pitch of wire; router positions
    sit on a circle whose circumference is ``count * tile_pitch`` so the
    floorplan area scales like the grid fabrics'.
    """

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        tile_pitch_mm: float = 2.0,
        flit_width_bits: int = 32,
        name: str | None = None,
    ) -> None:
        ids = list(node_ids)
        if len(ids) < 3:
            raise SynthesisError("a ring needs at least three routers")
        if len(set(ids)) != len(ids):
            raise SynthesisError("ring node ids must be unique")
        super().__init__(name=name or f"ring_{len(ids)}", flit_width_bits=flit_width_bits)
        self.tile_pitch_mm = tile_pitch_mm
        self._indices: dict[NodeId, int] = {}
        self._by_index: tuple[NodeId, ...] = tuple(ids)
        count = len(ids)
        radius = count * tile_pitch_mm / (2.0 * math.pi)
        for index, node in enumerate(ids):
            angle = 2.0 * math.pi * index / count
            self._indices[node] = index
            self.add_router(node, x=radius * math.cos(angle), y=radius * math.sin(angle))
        for index, node in enumerate(ids):
            self.add_channel(
                node, ids[(index + 1) % count], length_mm=tile_pitch_mm, bidirectional=True
            )

    @property
    def ring_size(self) -> int:
        return len(self._indices)

    def index_of(self, node: NodeId) -> int:
        try:
            return self._indices[node]
        except KeyError as error:
            raise SynthesisError(f"{node!r} is not a router of {self.name!r}") from error

    def node_at_index(self, index: int) -> NodeId:
        return self._by_index[index % self.ring_size]

    def ring_hops(self, source: NodeId, target: NodeId) -> int:
        """Minimum hop count around the ring (either direction)."""
        delta = abs(self.index_of(source) - self.index_of(target))
        return min(delta, self.ring_size - delta)


class SpidergonTopology(RingTopology):
    """Spidergon/octagon fabric: a ring plus diametral cross channels.

    Every router ``i`` additionally connects to router ``i + N/2`` (N
    even), halving the diameter relative to the plain ring at a cost of
    one long cross wire per router pair; cross wires are charged the
    circle diameter ``N * tile_pitch / pi``.
    """

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        tile_pitch_mm: float = 2.0,
        flit_width_bits: int = 32,
        name: str | None = None,
    ) -> None:
        ids = list(node_ids)
        if len(ids) < 4 or len(ids) % 2:
            raise SynthesisError("a spidergon needs an even number (>= 4) of routers")
        super().__init__(
            ids,
            tile_pitch_mm=tile_pitch_mm,
            flit_width_bits=flit_width_bits,
            name=name or f"spidergon_{len(ids)}",
        )
        half = len(ids) // 2
        cross_length = len(ids) * tile_pitch_mm / math.pi
        for index in range(half):
            self.add_channel(
                ids[index], ids[index + half], length_mm=cross_length, bidirectional=True
            )


class FatTreeTopology(Topology):
    """An ``arity``-ary fat tree: cores at the leaves, switches above.

    Internal switch routers are named ``__sw<level>_<index>`` (the same
    double-underscore convention as the baseline's ``__pad*`` fillers,
    so reports can filter them).  Upward links double their bandwidth
    capacity per level — the "fat" in fat tree — while keeping the flit
    width constant; their wire length grows one tile pitch per level.
    """

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        arity: int = 4,
        tile_pitch_mm: float = 2.0,
        flit_width_bits: int = 32,
        name: str | None = None,
    ) -> None:
        ids = list(node_ids)
        if not ids:
            raise SynthesisError("a fat tree needs at least one leaf")
        if len(set(ids)) != len(ids):
            raise SynthesisError("fat-tree node ids must be unique")
        if arity < 2:
            raise SynthesisError("fat-tree arity must be at least 2")
        super().__init__(
            name=name or f"fat_tree_{len(ids)}", flit_width_bits=flit_width_bits
        )
        self.tile_pitch_mm = tile_pitch_mm
        self.arity = arity
        self.leaves: tuple[NodeId, ...] = tuple(ids)
        for index, node in enumerate(ids):
            self.add_router(node, x=index * tile_pitch_mm, y=0.0)
        level = 1
        current = ids
        while len(current) > 1:
            parents: list[NodeId] = []
            for group_index in range(0, len(current), arity):
                group = current[group_index : group_index + arity]
                parent = f"__sw{level}_{group_index // arity}"
                center = sum(self.position(child).x for child in group) / len(group)
                self.add_router(parent, x=center, y=level * tile_pitch_mm)
                for child in group:
                    self.add_channel(
                        child,
                        parent,
                        length_mm=tile_pitch_mm * level,
                        bandwidth_bits_per_cycle=float(
                            flit_width_bits * (2 ** (level - 1))
                        ),
                        bidirectional=True,
                    )
                parents.append(parent)
            current = parents
            level += 1
        self.root: NodeId = current[0]
        self.num_levels = level


class LongRangeMeshTopology(MeshTopology):
    """A mesh augmented with deterministic long-range shortcut links.

    Long links are inserted greedily between the most distant router
    pairs (by grid hop count, ties broken by row-major order) whose
    endpoints do not already carry a shortcut, mirroring the long-range
    link insertion literature's "shrink the diameter with few wires"
    move without needing a random seed.  ``long_link_count`` defaults to
    one shortcut per eight routers.
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        tile_pitch_mm: float = 2.0,
        flit_width_bits: int = 32,
        node_ids: Sequence[NodeId] | None = None,
        long_link_count: int | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(
            rows,
            columns,
            tile_pitch_mm=tile_pitch_mm,
            flit_width_bits=flit_width_bits,
            node_ids=node_ids,
            name=name or f"mesh_long_{rows}x{columns}",
        )
        if long_link_count is None:
            long_link_count = max(1, (rows * columns) // 8)
        ordered = self.routers()  # row-major construction order
        candidates = [
            (self.manhattan_hops(a, b), index_a, index_b, a, b)
            for index_a, a in enumerate(ordered)
            for index_b, b in enumerate(ordered)
            if index_a < index_b and self.manhattan_hops(a, b) >= 3
        ]
        candidates.sort(key=lambda item: (-item[0], item[1], item[2]))
        used: set[NodeId] = set()
        links: list[tuple[NodeId, NodeId]] = []
        for hops, _, _, a, b in candidates:
            if len(links) >= long_link_count:
                break
            if a in used or b in used:
                continue
            self.add_channel(
                a, b, length_mm=tile_pitch_mm * hops, bidirectional=True
            )
            used.update((a, b))
            links.append((a, b))
        self.long_links: tuple[tuple[NodeId, NodeId], ...] = tuple(links)


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FamilySpec:
    """One named topology family and how to instantiate it.

    ``builder(node_ids, tile_pitch_mm, flit_width_bits)`` receives a node
    list already padded to ``padded_size(count)`` ids; extra infrastructure
    routers (fat-tree switches) are the builder's own business.  ``grid``
    marks families whose routers carry mesh coordinates (dimension-ordered
    policies apply); ``wraparound`` marks families with dateline channels.
    """

    name: str
    description: str
    builder: Callable[..., Topology]
    padded_size: Callable[[int], int]
    grid: bool = False
    wraparound: bool = False

    def build(
        self,
        node_ids: Sequence[NodeId],
        tile_pitch_mm: float = 2.0,
        flit_width_bits: int = 32,
    ) -> Topology:
        """Instantiate the family over the given (pre-padded) node ids."""
        expected = self.padded_size(len(node_ids))
        if len(node_ids) != expected:
            raise SynthesisError(
                f"family {self.name!r} needs {expected} node ids for "
                f"{len(node_ids)} requested (pad with filler ids first)"
            )
        return self.builder(
            node_ids, tile_pitch_mm=tile_pitch_mm, flit_width_bits=flit_width_bits
        )


#: the topology-family registry: one :class:`repro.plugins.Registry` cell
#: of the plugin fabric (third-party families register here, directly or
#: through the ``repro.plugins`` entry-point group)
FAMILIES: Registry[FamilySpec] = Registry("topology family")


def register_family(spec: FamilySpec) -> FamilySpec:
    """Register (or replace) a topology family under its name."""
    return FAMILIES.register(spec.name, spec)


def family_names() -> list[str]:
    """All registered family names, sorted (after plugin discovery)."""
    return FAMILIES.names()


def get_family(name: str) -> FamilySpec:
    """Look a family up by name.

    Raises :class:`~repro.exceptions.UnknownPluginError` (a
    :class:`~repro.exceptions.ConfigurationError`) listing the available
    families and the nearest match when the name is unknown.
    """
    return FAMILIES.get(name)


def build_fabric(
    family: str,
    node_ids: Sequence[NodeId],
    tile_pitch_mm: float = 2.0,
    flit_width_bits: int = 32,
) -> Topology:
    """Instantiate the named family over pre-padded node ids."""
    return get_family(family).build(
        node_ids, tile_pitch_mm=tile_pitch_mm, flit_width_bits=flit_width_bits
    )


def pad_node_ids(family: str | FamilySpec, node_ids: Sequence[NodeId]) -> list[NodeId]:
    """The node list padded with ``__pad*`` fillers to the family's size.

    The canonical way to prepare a node list for :meth:`FamilySpec.build`:
    the ``__pad`` prefix is what :func:`infrastructure_router` (and report
    filters built on it) recognize, so every caller must pad through here
    rather than inventing its own filler ids.
    """
    spec = family if isinstance(family, FamilySpec) else get_family(family)
    nodes = list(node_ids)
    total = spec.padded_size(len(nodes))
    return nodes + [f"__pad{index}" for index in range(total - len(nodes))]


def infrastructure_router(node: NodeId) -> bool:
    """True for filler/switch routers that carry no application core."""
    return isinstance(node, str) and node.startswith("__")


# ----------------------------------------------------------------------
# built-in families
# ----------------------------------------------------------------------
def _grid_padded(count: int) -> int:
    rows, columns = most_square_grid(count)
    return rows * columns


def _build_mesh(node_ids, tile_pitch_mm=2.0, flit_width_bits=32):
    rows, columns = most_square_grid(len(node_ids))
    return MeshTopology(
        rows,
        columns,
        tile_pitch_mm=tile_pitch_mm,
        flit_width_bits=flit_width_bits,
        node_ids=node_ids,
    )


def _build_torus(node_ids, tile_pitch_mm=2.0, flit_width_bits=32):
    rows, columns = most_square_grid(len(node_ids))
    return TorusTopology(
        rows,
        columns,
        tile_pitch_mm=tile_pitch_mm,
        flit_width_bits=flit_width_bits,
        node_ids=node_ids,
    )


def _build_ring(node_ids, tile_pitch_mm=2.0, flit_width_bits=32):
    return RingTopology(
        node_ids, tile_pitch_mm=tile_pitch_mm, flit_width_bits=flit_width_bits
    )


def _build_spidergon(node_ids, tile_pitch_mm=2.0, flit_width_bits=32):
    return SpidergonTopology(
        node_ids, tile_pitch_mm=tile_pitch_mm, flit_width_bits=flit_width_bits
    )


def _build_fat_tree(node_ids, tile_pitch_mm=2.0, flit_width_bits=32):
    return FatTreeTopology(
        node_ids, tile_pitch_mm=tile_pitch_mm, flit_width_bits=flit_width_bits
    )


def _build_long_range_mesh(node_ids, tile_pitch_mm=2.0, flit_width_bits=32):
    rows, columns = most_square_grid(len(node_ids))
    return LongRangeMeshTopology(
        rows,
        columns,
        tile_pitch_mm=tile_pitch_mm,
        flit_width_bits=flit_width_bits,
        node_ids=node_ids,
    )


register_family(
    FamilySpec(
        name="mesh",
        description="2-D mesh, most-square grid (the paper's standard baseline)",
        builder=_build_mesh,
        padded_size=_grid_padded,
        grid=True,
    )
)

register_family(
    FamilySpec(
        name="torus",
        description="2-D torus: mesh plus row/column wraparound channels",
        builder=_build_torus,
        padded_size=_grid_padded,
        grid=True,
        wraparound=True,
    )
)

register_family(
    FamilySpec(
        name="ring",
        description="bidirectional ring (degree-2 minimum-cost fabric)",
        builder=_build_ring,
        padded_size=lambda count: max(count, 3),
        wraparound=True,
    )
)

register_family(
    FamilySpec(
        name="spidergon",
        description="Spidergon/octagon: ring plus diametral cross links",
        builder=_build_spidergon,
        padded_size=lambda count: max(count + (count % 2), 4),
        wraparound=True,
    )
)

register_family(
    FamilySpec(
        name="fat_tree",
        description="4-ary fat tree: cores at leaves, __sw* switches above",
        builder=_build_fat_tree,
        padded_size=lambda count: max(count, 1),
    )
)

register_family(
    FamilySpec(
        name="long_range_mesh",
        description="mesh plus deterministic long-range shortcut links",
        builder=_build_long_range_mesh,
        padded_size=_grid_padded,
        grid=True,
    )
)
