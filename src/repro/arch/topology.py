"""Network topology abstraction shared by the mesh baseline and the
customized architectures produced by the synthesis flow.

A :class:`Topology` is the physical view of the network: routers (one per
core), their die positions, and directed channels between them.  Each channel
carries a physical length (for link energy), a width and a bandwidth
capacity, which are what the constraint checks of Section 4.2 compare against
the application's requirements.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass

from repro.core.graph import CorePosition, DiGraph
from repro.exceptions import GraphError, NodeNotFoundError, SynthesisError

NodeId = Hashable


@dataclass
class Channel:
    """A directed physical channel (link) between two routers.

    Attributes
    ----------
    length_mm:
        Physical length of the wires, used for link energy.
    width_bits:
        Flit width (number of parallel wires).
    bandwidth_bits_per_cycle:
        Capacity used by the bandwidth constraint check; defaults to the
        width (one flit per cycle).
    """

    source: NodeId
    target: NodeId
    length_mm: float = 1.0
    width_bits: int = 32
    bandwidth_bits_per_cycle: float | None = None

    def __post_init__(self) -> None:
        if self.length_mm < 0:
            raise SynthesisError("channel length must be non-negative")
        if self.width_bits <= 0:
            raise SynthesisError("channel width must be positive")
        if self.bandwidth_bits_per_cycle is None:
            self.bandwidth_bits_per_cycle = float(self.width_bits)

    @property
    def key(self) -> tuple[NodeId, NodeId]:
        return (self.source, self.target)


class Topology:
    """Routers + directed channels + optional die positions."""

    def __init__(self, name: str = "topology", flit_width_bits: int = 32) -> None:
        self.name = name
        self.flit_width_bits = flit_width_bits
        self._routers: dict[NodeId, dict] = {}
        self._channels: dict[tuple[NodeId, NodeId], Channel] = {}
        self._positions: dict[NodeId, CorePosition] = {}

    # ------------------------------------------------------------------
    # routers
    # ------------------------------------------------------------------
    def add_router(self, node: NodeId, x: float | None = None, y: float | None = None) -> None:
        if node in self._routers:
            if x is not None and y is not None:
                self._positions[node] = CorePosition(float(x), float(y))
            return
        self._routers[node] = {}
        if x is not None and y is not None:
            self._positions[node] = CorePosition(float(x), float(y))

    def routers(self) -> list[NodeId]:
        return list(self._routers)

    def has_router(self, node: NodeId) -> bool:
        return node in self._routers

    @property
    def num_routers(self) -> int:
        return len(self._routers)

    def position(self, node: NodeId) -> CorePosition:
        if node not in self._positions:
            raise NodeNotFoundError(node)
        return self._positions[node]

    def has_position(self, node: NodeId) -> bool:
        return node in self._positions

    def distance(self, source: NodeId, target: NodeId) -> float:
        """Manhattan distance between two routers (requires positions)."""
        return self.position(source).manhattan_distance(self.position(target))

    # ------------------------------------------------------------------
    # channels
    # ------------------------------------------------------------------
    def add_channel(
        self,
        source: NodeId,
        target: NodeId,
        length_mm: float | None = None,
        width_bits: int | None = None,
        bandwidth_bits_per_cycle: float | None = None,
        bidirectional: bool = False,
    ) -> Channel:
        """Add a directed channel; optionally also the opposite direction.

        Adding an already existing channel is idempotent and returns the
        existing object (customized topologies frequently re-derive the same
        physical link from several matchings).
        """
        if source == target:
            raise GraphError("a channel cannot connect a router to itself")
        self.add_router(source)
        self.add_router(target)
        if length_mm is None:
            length_mm = (
                self.distance(source, target)
                if self.has_position(source) and self.has_position(target)
                else 1.0
            )
        key = (source, target)
        if key not in self._channels:
            self._channels[key] = Channel(
                source=source,
                target=target,
                length_mm=length_mm,
                width_bits=width_bits or self.flit_width_bits,
                bandwidth_bits_per_cycle=bandwidth_bits_per_cycle,
            )
        if bidirectional:
            self.add_channel(
                target,
                source,
                length_mm=length_mm,
                width_bits=width_bits,
                bandwidth_bits_per_cycle=bandwidth_bits_per_cycle,
                bidirectional=False,
            )
        return self._channels[key]

    def channel(self, source: NodeId, target: NodeId) -> Channel:
        try:
            return self._channels[(source, target)]
        except KeyError as error:
            raise SynthesisError(f"no channel {source!r} -> {target!r} in {self.name!r}") from error

    def has_channel(self, source: NodeId, target: NodeId) -> bool:
        return (source, target) in self._channels

    def channels(self) -> list[Channel]:
        return list(self._channels.values())

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    @property
    def num_physical_links(self) -> int:
        """Bidirectional channel pairs count as a single physical link."""
        seen: set[frozenset[NodeId]] = set()
        for source, target in self._channels:
            seen.add(frozenset((source, target)))
        return len(seen)

    def neighbors_out(self, node: NodeId) -> list[NodeId]:
        if node not in self._routers:
            raise NodeNotFoundError(node)
        return [target for (source, target) in self._channels if source == node]

    def neighbors_in(self, node: NodeId) -> list[NodeId]:
        if node not in self._routers:
            raise NodeNotFoundError(node)
        return [source for (source, target) in self._channels if target == node]

    def degree(self, node: NodeId) -> int:
        """Router degree counted in physical (undirected) links."""
        if node not in self._routers:
            raise NodeNotFoundError(node)
        links = {frozenset((s, t)) for (s, t) in self._channels if s == node or t == node}
        return len(links)

    def max_degree(self) -> int:
        return max((self.degree(node) for node in self._routers), default=0)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def connectivity_graph(self) -> DiGraph:
        """The directed channel graph as a plain :class:`DiGraph`."""
        graph = DiGraph(name=self.name)
        for node in self._routers:
            graph.add_node(node, exist_ok=True)
        for source, target in self._channels:
            graph.add_edge(source, target)
        return graph

    def signature(self) -> dict[str, object]:
        """Canonical structural identity of the fabric (interchange contract).

        Routers, positions and channel attributes with node ids stringified
        and orders canonicalized — the topology analogue of
        :meth:`repro.dse.pipeline.Scenario.structural_fingerprint`.  The
        :mod:`repro.io` round-trip guarantee is exactly that exporting a
        topology to any registered format and re-importing it preserves
        this signature (the display name and the concrete Python node
        types are allowed to change; the fabric is not).
        """
        positions = {
            str(node): (position.x, position.y)
            for node, position in self._positions.items()
        }
        return {
            "flit_width_bits": int(self.flit_width_bits),
            "routers": sorted(str(node) for node in self._routers),
            "positions": {key: positions[key] for key in sorted(positions)},
            "channels": sorted(
                (
                    str(channel.source),
                    str(channel.target),
                    float(channel.length_mm),
                    int(channel.width_bits),
                    float(channel.bandwidth_bits_per_cycle),
                )
                for channel in self._channels.values()
            ),
        }

    def total_wire_length_mm(self) -> float:
        """Total physical wire length (each bidirectional pair counted once)."""
        seen: set[frozenset[NodeId]] = set()
        total = 0.0
        for channel in self._channels.values():
            link = frozenset((channel.source, channel.target))
            if link in seen:
                continue
            seen.add(link)
            total += channel.length_mm
        return total

    def copy(self) -> "Topology":
        clone = Topology(name=self.name, flit_width_bits=self.flit_width_bits)
        for node in self._routers:
            position = self._positions.get(node)
            if position is not None:
                clone.add_router(node, position.x, position.y)
            else:
                clone.add_router(node)
        for channel in self._channels.values():
            clone.add_channel(
                channel.source,
                channel.target,
                length_mm=channel.length_mm,
                width_bits=channel.width_bits,
                bandwidth_bits_per_cycle=channel.bandwidth_bits_per_cycle,
            )
        return clone

    def __contains__(self, node: NodeId) -> bool:
        return node in self._routers

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._routers)

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name!r} routers={self.num_routers} "
            f"channels={self.num_channels} links={self.num_physical_links}>"
        )
