"""Topology metrics: diameter, average hop count, bisection bandwidth, wiring.

Section 4.2 of the paper checks the synthesized architecture against the
"availability of wiring resources" by comparing its bisection bandwidth with
the maximum the technology provides, and Section 4.3 argues about the maximum
and average hop counts.  This module computes those figures for any
:class:`~repro.arch.topology.Topology`.
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Hashable
from dataclasses import dataclass

from repro.arch.topology import Topology
from repro.core.graph import ApplicationGraph
from repro.exceptions import SynthesisError

NodeId = Hashable


def hop_counts_from(topology: Topology, source: NodeId) -> dict[NodeId, int]:
    """BFS hop counts from ``source`` to every reachable router."""
    if not topology.has_router(source):
        raise SynthesisError(f"{source!r} is not a router of {topology.name!r}")
    distances: dict[NodeId, int] = {source: 0}
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in topology.neighbors_out(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def all_pairs_hop_counts(topology: Topology) -> dict[tuple[NodeId, NodeId], int]:
    """Hop counts between every ordered pair of connected routers."""
    result: dict[tuple[NodeId, NodeId], int] = {}
    for source in topology.routers():
        for target, hops in hop_counts_from(topology, source).items():
            result[(source, target)] = hops
    return result


def is_strongly_connected(topology: Topology) -> bool:
    """True when every router can reach every other router over channels."""
    routers = topology.routers()
    if len(routers) <= 1:
        return True
    return all(len(hop_counts_from(topology, source)) == len(routers) for source in routers)


def diameter(topology: Topology, require_strongly_connected: bool = False) -> int:
    """Longest shortest-path hop count over all *reachable* ordered pairs.

    Customized topologies are not necessarily strongly connected (broadcast
    trees and loops are one-way structures), so by default the diameter is
    taken over reachable pairs only; pass ``require_strongly_connected=True``
    to instead raise when some pair is unreachable.
    """
    routers = topology.routers()
    if len(routers) <= 1:
        return 0
    worst = 0
    for source in routers:
        reachable = hop_counts_from(topology, source)
        if require_strongly_connected and len(reachable) != len(routers):
            raise SynthesisError(f"topology {topology.name!r} is not strongly connected")
        worst = max(worst, max(reachable.values()))
    return worst


def average_hop_count(
    topology: Topology, traffic: ApplicationGraph | None = None
) -> float:
    """Average hop count, uniformly or weighted by an ACG's traffic volumes.

    With ``traffic`` given, the average is weighted by communication volume
    (the quantity that "directly impacts the overall performance" per
    Section 4.3); otherwise all *reachable* ordered router pairs are weighted
    equally.
    """
    pairs = all_pairs_hop_counts(topology)
    if traffic is None:
        distances = [hops for (source, target), hops in pairs.items() if source != target]
        return sum(distances) / len(distances) if distances else 0.0
    weighted = 0.0
    volume_total = 0.0
    for source, target in traffic.edges():
        if (source, target) not in pairs:
            raise SynthesisError(
                f"traffic edge ({source!r} -> {target!r}) is not routable on {topology.name!r}"
            )
        volume = traffic.volume(source, target)
        weighted += volume * pairs[(source, target)]
        volume_total += volume
    return weighted / volume_total if volume_total else 0.0


@dataclass(frozen=True)
class BisectionResult:
    """Result of a bisection-bandwidth computation."""

    bandwidth_bits_per_cycle: float
    partition_a: frozenset
    partition_b: frozenset
    num_cut_channels: int


def bisection_bandwidth(topology: Topology, exact_limit: int = 16) -> BisectionResult:
    """Minimum bandwidth crossing a balanced bipartition of the routers.

    For up to ``exact_limit`` routers every balanced bipartition is
    enumerated (exact); beyond that a coordinate-sweep heuristic is used
    (sort by x then by y and cut in the middle), which is exact for meshes
    and a good estimate for floorplan-derived customized topologies.
    """
    routers = topology.routers()
    count = len(routers)
    if count < 2:
        raise SynthesisError("bisection bandwidth needs at least two routers")
    half = count // 2

    def cut_bandwidth(part_a: set[NodeId]) -> tuple[float, int]:
        bandwidth = 0.0
        cut_channels = 0
        for channel in topology.channels():
            if (channel.source in part_a) != (channel.target in part_a):
                bandwidth += float(channel.bandwidth_bits_per_cycle or 0.0)
                cut_channels += 1
        return bandwidth, cut_channels

    best: BisectionResult | None = None
    if count <= exact_limit:
        indexed = list(routers)
        for combo in itertools.combinations(indexed, half):
            part_a = set(combo)
            bandwidth, cut_channels = cut_bandwidth(part_a)
            if best is None or bandwidth < best.bandwidth_bits_per_cycle:
                best = BisectionResult(
                    bandwidth_bits_per_cycle=bandwidth,
                    partition_a=frozenset(part_a),
                    partition_b=frozenset(set(routers) - part_a),
                    num_cut_channels=cut_channels,
                )
        assert best is not None
        return best

    # heuristic: axis-aligned sweeps
    candidates: list[set[NodeId]] = []
    if all(topology.has_position(node) for node in routers):
        by_x = sorted(routers, key=lambda n: (topology.position(n).x, topology.position(n).y))
        by_y = sorted(routers, key=lambda n: (topology.position(n).y, topology.position(n).x))
        candidates.append(set(by_x[:half]))
        candidates.append(set(by_y[:half]))
    candidates.append(set(list(routers)[:half]))
    for part_a in candidates:
        bandwidth, cut_channels = cut_bandwidth(part_a)
        if best is None or bandwidth < best.bandwidth_bits_per_cycle:
            best = BisectionResult(
                bandwidth_bits_per_cycle=bandwidth,
                partition_a=frozenset(part_a),
                partition_b=frozenset(set(routers) - part_a),
                num_cut_channels=cut_channels,
            )
    assert best is not None
    return best


@dataclass(frozen=True)
class TopologyReport:
    """Summary of the structural metrics of one architecture."""

    name: str
    num_routers: int
    num_channels: int
    num_physical_links: int
    max_degree: int
    diameter: int
    average_hops_uniform: float
    average_hops_weighted: float | None
    bisection_bandwidth: float
    total_wire_length_mm: float
    strongly_connected: bool

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "num_routers": self.num_routers,
            "num_channels": self.num_channels,
            "num_physical_links": self.num_physical_links,
            "max_degree": self.max_degree,
            "diameter": self.diameter,
            "average_hops_uniform": self.average_hops_uniform,
            "average_hops_weighted": self.average_hops_weighted,
            "bisection_bandwidth": self.bisection_bandwidth,
            "total_wire_length_mm": self.total_wire_length_mm,
            "strongly_connected": self.strongly_connected,
        }


def topology_report(
    topology: Topology, traffic: ApplicationGraph | None = None
) -> TopologyReport:
    """Compute the full structural report for one topology."""
    weighted = average_hop_count(topology, traffic) if traffic is not None else None
    return TopologyReport(
        name=topology.name,
        num_routers=topology.num_routers,
        num_channels=topology.num_channels,
        num_physical_links=topology.num_physical_links,
        max_degree=topology.max_degree(),
        diameter=diameter(topology),
        average_hops_uniform=average_hop_count(topology),
        average_hops_weighted=weighted,
        bisection_bandwidth=bisection_bandwidth(topology).bandwidth_bits_per_cycle,
        total_wire_length_mm=topology.total_wire_length_mm(),
        strongly_connected=is_strongly_connected(topology),
    )
