"""Standard 2-D mesh architecture — the baseline the paper compares against.

The AES prototype of Section 5.2 uses a 4x4 mesh of identical nodes; this
module generates k x m meshes with configurable tile pitch (which determines
link lengths and therefore link energy) and provides the row/column helpers
the XY routing function needs.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.arch.topology import Topology
from repro.exceptions import SynthesisError

NodeId = Hashable


@dataclass(frozen=True)
class MeshCoordinates:
    """Grid coordinates of a router inside a mesh."""

    row: int
    column: int


class MeshTopology(Topology):
    """A ``rows x columns`` 2-D mesh with nearest-neighbour bidirectional links."""

    def __init__(
        self,
        rows: int,
        columns: int,
        tile_pitch_mm: float = 2.0,
        flit_width_bits: int = 32,
        node_ids: Sequence[NodeId] | None = None,
        name: str | None = None,
    ) -> None:
        if rows < 1 or columns < 1:
            raise SynthesisError("a mesh needs at least one row and one column")
        if tile_pitch_mm <= 0:
            raise SynthesisError("tile pitch must be positive")
        super().__init__(
            name=name or f"mesh_{rows}x{columns}", flit_width_bits=flit_width_bits
        )
        self.rows = rows
        self.columns = columns
        self.tile_pitch_mm = tile_pitch_mm
        self._coordinates: dict[NodeId, MeshCoordinates] = {}

        count = rows * columns
        if node_ids is None:
            ids: list[NodeId] = list(range(1, count + 1))
        else:
            ids = list(node_ids)
            if len(ids) != count:
                raise SynthesisError(
                    f"expected {count} node ids for a {rows}x{columns} mesh, got {len(ids)}"
                )
            if len(set(ids)) != count:
                raise SynthesisError("mesh node ids must be unique")

        for index, node in enumerate(ids):
            row, column = divmod(index, columns)
            self._coordinates[node] = MeshCoordinates(row=row, column=column)
            self.add_router(node, x=column * tile_pitch_mm, y=row * tile_pitch_mm)

        for node in ids:
            coords = self._coordinates[node]
            for delta_row, delta_column in ((0, 1), (1, 0)):
                neighbor_row = coords.row + delta_row
                neighbor_column = coords.column + delta_column
                if neighbor_row >= rows or neighbor_column >= columns:
                    continue
                neighbor = ids[neighbor_row * columns + neighbor_column]
                self.add_channel(
                    node,
                    neighbor,
                    length_mm=tile_pitch_mm,
                    bidirectional=True,
                )

    # ------------------------------------------------------------------
    # grid helpers
    # ------------------------------------------------------------------
    def coordinates(self, node: NodeId) -> MeshCoordinates:
        try:
            return self._coordinates[node]
        except KeyError as error:
            raise SynthesisError(f"{node!r} is not a router of {self.name!r}") from error

    def node_at(self, row: int, column: int) -> NodeId:
        if not (0 <= row < self.rows and 0 <= column < self.columns):
            raise SynthesisError(f"({row}, {column}) is outside the {self.rows}x{self.columns} mesh")
        for node, coords in self._coordinates.items():
            if coords.row == row and coords.column == column:
                return node
        raise SynthesisError("mesh coordinates table is corrupted")  # pragma: no cover

    def row_of(self, node: NodeId) -> int:
        return self.coordinates(node).row

    def column_of(self, node: NodeId) -> int:
        return self.coordinates(node).column

    def manhattan_hops(self, source: NodeId, target: NodeId) -> int:
        """Minimum hop count between two mesh routers."""
        source_coords = self.coordinates(source)
        target_coords = self.coordinates(target)
        return abs(source_coords.row - target_coords.row) + abs(
            source_coords.column - target_coords.column
        )


def build_mesh(
    rows: int,
    columns: int,
    tile_pitch_mm: float = 2.0,
    flit_width_bits: int = 32,
    node_ids: Sequence[NodeId] | None = None,
) -> MeshTopology:
    """Convenience constructor mirroring :class:`MeshTopology`."""
    return MeshTopology(
        rows=rows,
        columns=columns,
        tile_pitch_mm=tile_pitch_mm,
        flit_width_bits=flit_width_bits,
        node_ids=node_ids,
    )
