"""Exception hierarchy for the NoC synthesis library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so a
caller can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GraphError(ReproError):
    """Raised for structural graph problems (missing nodes, bad edges, ...)."""


class NodeNotFoundError(GraphError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError):
    """Raised when a node is added twice to a graph that forbids it."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists in the graph")
        self.node = node


class DuplicateEdgeError(GraphError):
    """Raised when an edge is added twice to a graph that forbids it."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) already exists")
        self.source = source
        self.target = target


class NotASubgraphError(GraphError):
    """Raised when a graph difference is requested with a non-subgraph."""


class LibraryError(ReproError):
    """Raised for malformed communication libraries or primitives."""


class ScheduleError(LibraryError):
    """Raised when a communication schedule is inconsistent with its graph."""


class DecompositionError(ReproError):
    """Raised when the decomposition engine is misconfigured or fails."""


class SynthesisError(ReproError):
    """Raised when topology synthesis cannot produce a valid architecture."""


class ConstraintViolationError(SynthesisError):
    """Raised when a synthesized architecture violates a design constraint."""

    def __init__(self, message: str, violations: list[str] | None = None) -> None:
        super().__init__(message)
        self.violations = list(violations or [])


class RoutingError(ReproError):
    """Raised for unroutable traffic or inconsistent routing tables."""


class DeadlockError(RoutingError):
    """Raised when a routing function admits a channel-dependency cycle."""

    def __init__(self, cycle: list[object] | None = None) -> None:
        description = "routing function admits a deadlock cycle"
        if cycle:
            description += f": {cycle}"
        super().__init__(description)
        self.cycle = list(cycle or [])


class SimulationError(ReproError):
    """Raised when the NoC simulator is driven into an invalid state."""


class FloorplanError(ReproError):
    """Raised when a floorplan cannot be constructed or is inconsistent."""


class WorkloadError(ReproError):
    """Raised when a workload generator receives invalid parameters."""


class EnergyModelError(ReproError):
    """Raised for invalid technology or energy-model parameters."""


class ConfigurationError(ReproError):
    """Raised when experiment or benchmark configuration is invalid."""


class PluginError(ConfigurationError):
    """Raised for plugin-registry problems (bad registrations, load failures)."""


class UnknownPluginError(PluginError):
    """Raised when a registry lookup names no registered object.

    Every registry built on :class:`repro.plugins.Registry` — topology
    families, routing policies, scenario suites, communication libraries,
    traffic modes, interchange formats — raises this one exception type,
    with the same message shape: the kind of thing looked up, the unknown
    name, the sorted available names, and (when close enough) a
    nearest-match suggestion.
    """

    def __init__(
        self,
        kind: str,
        name: str,
        available: list[str] | None = None,
        suggestion: str | None = None,
    ) -> None:
        names = sorted(available or [])
        message = f"unknown {kind} {name!r}; available: {names or 'none'}"
        if suggestion:
            message += f" (did you mean {suggestion!r}?)"
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.available = names
        self.suggestion = suggestion
