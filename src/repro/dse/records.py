"""The unit of DSE output: one (scenario, configuration) evaluation.

Every cell of a design-space sweep — successful or not — produces one
:class:`EvaluationRecord`.  Failures are captured as data (status +
error message) rather than exceptions so a batch run over hundreds of
cells never dies half way, and so "this configuration deadlocks" is a
reportable result, exactly like "this configuration needs 2.5 uJ per
iteration".  Records round-trip losslessly through JSON, which is what
the on-disk JSONL cache stores.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

#: evaluation outcome classes (ordered roughly by how far the pipeline got)
STATUS_OK = "ok"
STATUS_DECOMPOSITION_FAILED = "decomposition_failed"
STATUS_SYNTHESIS_FAILED = "synthesis_failed"
STATUS_ROUTING_FAILED = "routing_failed"
STATUS_SIMULATION_FAILED = "simulation_failed"

ALL_STATUSES = (
    STATUS_OK,
    STATUS_DECOMPOSITION_FAILED,
    STATUS_SYNTHESIS_FAILED,
    STATUS_ROUTING_FAILED,
    STATUS_SIMULATION_FAILED,
)

#: stage provenance markers recorded in :attr:`EvaluationRecord.stage_reuse`
STAGE_COMPUTED = "computed"
"""The stage ran fresh for this cell."""
STAGE_REUSED_MEMORY = "memory"
"""The stage's artifact was reused from the in-process stage memo."""
STAGE_REUSED_STORE = "store"
"""The stage's artifact was deserialized from the on-disk artifact store."""

STAGE_PROVENANCES = (STAGE_COMPUTED, STAGE_REUSED_MEMORY, STAGE_REUSED_STORE)


@dataclass
class EvaluationRecord:
    """Everything one DSE cell produced."""

    scenario: str
    architecture: str
    config_label: str
    cache_key: str = ""
    status: str = STATUS_OK
    error: str = ""
    axes: dict[str, object] = field(default_factory=dict)
    """The swept parameter values that distinguish this cell in its grid."""
    settings: dict[str, object] = field(default_factory=dict)
    """The full effective :class:`~repro.dse.pipeline.EvaluationSettings`."""
    metrics: dict[str, float] = field(default_factory=dict)
    """Measured figures of merit (cycles, latency, throughput, energy, ...)."""
    constraints_satisfied: bool | None = None
    deadlock_free: bool | None = None
    search_statistics: dict[str, object] = field(default_factory=dict)
    stage_reuse: dict[str, str] = field(default_factory=dict)
    """Per-stage provenance (``{"decompose": "memory", ...}``): whether each
    shareable stage was computed for this cell or reused from the in-memory
    memo / on-disk artifact store.  Empty for mesh cells (no decomposition)."""
    stage_seconds: dict[str, float] = field(default_factory=dict)
    """Per-stage wall-clock seconds for the stages this cell actually ran
    (``{"decompose": 1.8, "simulate": 0.2, ...}``); the triage companion of
    ``stage_reuse`` — a budget-truncated (``!``) cell shows *where* its time
    went.  Recorded for failed stages too (up to the failure point)."""
    search: dict[str, object] = field(default_factory=dict)
    """Guided-search provenance (``stage_reuse``-style), empty for plain grid
    sweeps.  Keys written by :func:`repro.dse.search.run_search`:
    ``rung`` (the fidelity-ladder rung this result was measured at),
    ``rung_index``, ``full_fidelity`` (True only on the top rung),
    ``promoted_from`` (previous rung name, when this cell was promoted) and
    ``pruned_at`` (rung name, when the racer dropped the cell there)."""
    runtime_seconds: float = 0.0
    from_cache: bool = False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def succeeded(self) -> bool:
        """True when every stage of the pipeline completed for this cell."""
        return self.status == STATUS_OK

    @property
    def truncated_search(self) -> bool:
        """True when the decomposition search exhausted its budget.

        Such a cell's result is machine-speed-dependent (a slower host may
        have found a worse decomposition under the same content key), so
        reports flag it instead of silently mixing it into Pareto fronts.
        """
        return bool(self.search_statistics.get("truncated"))

    @property
    def truncated_deterministic(self) -> bool:
        """True when the truncation came from a counter budget (nodes/leaves).

        Counter-budget truncations reproduce bit-identically on any machine —
        only wall-clock (``timeout``) truncations are machine-speed-dependent.
        """
        return self.search_statistics.get("truncated_by") in ("nodes", "leaves")

    @property
    def low_fidelity(self) -> bool:
        """True for a guided-search record measured below the top rung.

        Such a record's metrics came from truncated budgets and/or a short
        simulation window; reports must flag it (``!``) rather than let it
        pass for a full-fidelity grid result.
        """
        return bool(self.search) and not bool(self.search.get("full_fidelity", True))

    @property
    def approximate(self) -> bool:
        """True when the metrics are not full-fidelity trustworthy as-is:
        either the decomposition search was budget-truncated or the record
        was measured on a low rung of a guided-search fidelity ladder."""
        return self.truncated_search or self.low_fidelity

    def metric(self, key: str, default: float | None = None) -> float | None:
        """One metric as float, or ``default`` when absent."""
        value = self.metrics.get(key, default)
        return float(value) if value is not None else None

    def as_row(self) -> dict[str, object]:
        """Flatten into one reporting-table row."""
        row: dict[str, object] = {
            "scenario": self.scenario,
            "arch": self.architecture,
            "config": self.config_label,
            "status": self.status,
        }
        row.update(self.metrics)
        for stage, seconds in self.stage_seconds.items():
            row[f"t_{stage}"] = seconds
        if self.constraints_satisfied is not None:
            row["constraints_ok"] = self.constraints_satisfied
        if self.deadlock_free is not None:
            row["deadlock_free"] = self.deadlock_free
        if self.search:
            rung = str(self.search.get("rung", ""))
            if self.search.get("pruned_at"):
                rung = f"{rung} (pruned)"
            row["rung"] = rung
        return row

    # ------------------------------------------------------------------
    # JSON round-trip (the cache's storage format)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """One JSONL line (the cache's storage format)."""
        payload = asdict(self)
        payload.pop("from_cache", None)  # a load-time annotation, not state
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "EvaluationRecord":
        """Rebuild a record from a dict, ignoring unknown keys."""
        known = {name for name in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{key: value for key, value in payload.items() if key in known})

    @classmethod
    def from_json(cls, text: str) -> "EvaluationRecord":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
