"""Scenario suites: named, parameterized workload collections for sweeps.

A *suite* bundles scenarios (workload + traffic mode) with the default
grid axes and base settings a sweep over them should use.  Built-in
suites cover the paper's AES case study, the published embedded
benchmarks (:mod:`repro.workloads.benchmarks`), TGFF/Pajek-style
generated graphs, degree-sequence-controlled random ACGs and a
cross-fabric baseline sweep (``fabrics``: topology families x routing
policies over the :mod:`repro.arch.families` registry).  Every
random scenario passes its seed *explicitly* and records it in
``Scenario.params`` so the content-hash cache key is stable across
processes and sessions.

Custom suites register via :func:`register_suite`; scenario factories
run lazily so listing suites stays cheap.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.aes.acg import build_aes_acg
from repro.core.graph import ApplicationGraph
from repro.dse.pipeline import TRAFFIC_AES_PHASES, EvaluationSettings, Scenario
from repro.plugins import Registry
from repro.workloads.acg_builder import attach_grid_floorplan
from repro.workloads.benchmarks import embedded_benchmark_acg, embedded_benchmark_names
from repro.workloads.pajek import erdos_renyi_acg, planted_primitive_acg
from repro.workloads.random_acg import scale_free_acg
from repro.workloads.tgff import TgffParameters, generate_tgff_task_graph


# ----------------------------------------------------------------------
# scenario builders
# ----------------------------------------------------------------------
def aes_scenario(blocks: int = 1) -> Scenario:
    """The paper's Section-5.2 AES case study (dependency-aware phases).

    Pins the compact AES library and full-duplex links — the synthesis
    configuration the paper's customized architecture uses — while leaving
    simulator knobs (pipeline depth, buffering) to the grid.
    """
    return Scenario(
        name="aes",
        acg=build_aes_acg(blocks=1),
        traffic=TRAFFIC_AES_PHASES,
        aes_blocks=blocks,
        computation_cycles_per_phase=4,
        description="distributed AES-128, 16 byte-slice cores (paper Section 5.2)",
        params={"blocks": blocks},
        settings_overrides={
            "library": "aes",
            "bidirectional_links": True,
            "max_matchings_per_primitive": 4,
            "decomposition_timeout_seconds": 60.0,
            "max_nodes_expanded": None,
        },
    )


def embedded_scenario(benchmark: str, repetitions: int = 1) -> Scenario:
    """One published embedded-benchmark ACG under batch traffic."""
    return Scenario(
        name=benchmark,
        acg=embedded_benchmark_acg(benchmark),
        repetitions=repetitions,
        description=f"published embedded benchmark {benchmark!r}",
        params={"benchmark": benchmark, "repetitions": repetitions},
    )


def tgff_scenario(num_tasks: int, seed: int) -> Scenario:
    """A TGFF-style task graph mapped one task per core."""
    task_graph = generate_tgff_task_graph(TgffParameters(num_tasks=num_tasks, seed=seed))
    acg = task_graph.to_acg()
    attach_grid_floorplan(acg)
    return Scenario(
        name=f"tgff_{num_tasks}_s{seed}",
        acg=acg,
        description=f"TGFF-style task graph, {num_tasks} tasks, seed {seed}",
        params={"generator": "tgff", "num_tasks": num_tasks, "seed": seed},
    )


def planted_scenario(num_nodes: int, seed: int) -> Scenario:
    """A Pajek-style random ACG assembled from planted primitives."""
    acg = planted_primitive_acg(
        num_nodes=num_nodes,
        num_gossip=max(1, num_nodes // 10),
        num_broadcast=max(2, num_nodes // 8),
        num_loops=max(1, num_nodes // 12),
        noise_edges=2,
        seed=seed,
    )
    attach_grid_floorplan(acg)
    return Scenario(
        name=f"planted_{num_nodes}_s{seed}",
        acg=acg,
        description=f"planted-primitive random ACG, {num_nodes} nodes, seed {seed}",
        params={"generator": "planted", "num_nodes": num_nodes, "seed": seed},
    )


def erdos_renyi_scenario(num_nodes: int, edge_probability: float, seed: int) -> Scenario:
    """An unstructured G(n, p) ACG — the decomposition's worst case."""
    acg = erdos_renyi_acg(num_nodes, edge_probability, seed=seed)
    attach_grid_floorplan(acg)
    return Scenario(
        name=f"er_{num_nodes}_p{edge_probability:g}_s{seed}",
        acg=acg,
        description=f"Erdos-Renyi ACG, {num_nodes} nodes, p={edge_probability:g}, seed {seed}",
        params={
            "generator": "erdos_renyi",
            "num_nodes": num_nodes,
            "edge_probability": edge_probability,
            "seed": seed,
        },
    )


def scale_free_scenario(num_nodes: int, seed: int, exponent: float = 2.0) -> Scenario:
    """A degree-sequence-controlled (power-law) random ACG."""
    acg = scale_free_acg(num_nodes, seed=seed, exponent=exponent, max_out_degree=4)
    attach_grid_floorplan(acg)
    return Scenario(
        name=f"scalefree_{num_nodes}_s{seed}",
        acg=acg,
        description=(
            f"scale-free degree-sequence ACG, {num_nodes} nodes, "
            f"exponent {exponent:g}, seed {seed}"
        ),
        params={
            "generator": "scale_free",
            "num_nodes": num_nodes,
            "exponent": exponent,
            "seed": seed,
        },
    )


# ----------------------------------------------------------------------
# suite registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SuiteSpec:
    """A named scenario suite plus its default sweep grid."""

    name: str
    description: str
    factory: Callable[[], list[Scenario]]
    default_axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    base_settings: EvaluationSettings = field(default_factory=EvaluationSettings)

    def build(self) -> list[Scenario]:
        """Materialize the suite's scenarios (factories run lazily)."""
        return self.factory()


#: the scenario-suite registry: one :class:`repro.plugins.Registry` cell
#: of the plugin fabric (third-party suites register here, directly or
#: through the ``repro.plugins`` entry-point group)
SUITES: Registry[SuiteSpec] = Registry("scenario suite")

#: suite-name prefix that loads a workload file instead of a registered
#: suite: ``file:path/to/graph.net`` (any :mod:`repro.io` format)
FILE_SUITE_PREFIX = "file:"


def register_suite(spec: SuiteSpec) -> SuiteSpec:
    """Register (or replace) a suite under its name."""
    return SUITES.register(spec.name, spec)


def suite_names() -> list[str]:
    """All registered suite names, sorted (after plugin discovery)."""
    return SUITES.names()


def get_suite(name: str) -> SuiteSpec:
    """Look a suite up by name.

    Raises :class:`~repro.exceptions.UnknownPluginError` (a
    :class:`~repro.exceptions.ConfigurationError`) listing the available
    suites and the nearest match when the name is unknown.
    """
    return SUITES.get(name)


def resolve_suite(name: str) -> SuiteSpec:
    """A suite by registered name, or from a workload file via ``file:``.

    ``resolve_suite("smoke")`` is :func:`get_suite`;
    ``resolve_suite("file:acg.net")`` builds a one-scenario suite around
    :func:`file_scenario` — the CLI accepts both everywhere a suite name
    is taken.
    """
    if name.startswith(FILE_SUITE_PREFIX):
        return file_suite(name[len(FILE_SUITE_PREFIX) :])
    return get_suite(name)


def file_scenario(
    path: str | Path, fmt: str | None = None, name: str | None = None
) -> Scenario:
    """One scenario around an imported workload file (any supported format).

    The graph is read through :func:`repro.io.read_workload` (format
    detected from the extension unless ``fmt`` pins it); cores without
    floorplan positions get the deterministic grid floorplan every
    generated scenario uses.  Cache identity comes from the graph content
    (the structural fingerprint), never from the file path, so moving or
    renaming the file does not invalidate cached sweep cells.
    """
    from repro.io import read_workload

    path = Path(path)
    acg = read_workload(path, fmt=fmt, name=name)
    if not all(acg.has_position(node) for node in acg.nodes()):
        attach_grid_floorplan(acg)
    return Scenario(
        name=name or path.stem,
        acg=acg,
        description=f"imported workload ({path.name})",
        params={"origin": "file"},
    )


def file_suite(path: str | Path, fmt: str | None = None) -> SuiteSpec:
    """A one-scenario suite over an imported workload file.

    The default grid mirrors the ``smoke`` suite's architecture axis
    (mesh baseline vs custom synthesis) so ``python -m repro.dse run
    --suite file:acg.net`` compares both out of the box.
    """
    scenario = file_scenario(path, fmt=fmt)
    return SuiteSpec(
        name=f"{FILE_SUITE_PREFIX}{path}",
        description=f"imported workload file {path}",
        factory=lambda: [scenario],
        default_axes={"architecture": ("mesh", "custom")},
    )


def build_suite(name: str) -> list[Scenario]:
    """Build the named (or ``file:``) suite's scenario list."""
    return resolve_suite(name).build()


def describe_suites() -> list[dict[str, object]]:
    """Summary rows for ``list-scenarios`` style reporting."""
    rows = []
    for name in suite_names():
        spec = SUITES.get(name)
        scenarios = spec.build()
        rows.append(
            {
                "suite": name,
                "scenarios": len(scenarios),
                "grid_cells": _grid_size(spec) * len(scenarios),
                "description": spec.description,
            }
        )
    return rows


def _grid_size(spec: SuiteSpec) -> int:
    size = 1
    for values in spec.default_axes.values():
        size *= max(1, len(values))
    return size


def scenario_rows(scenarios: Sequence[Scenario]) -> list[dict[str, object]]:
    """Summary rows (nodes, edges, traffic) for a scenario list."""
    rows = []
    for scenario in scenarios:
        acg: ApplicationGraph = scenario.acg
        rows.append(
            {
                "scenario": scenario.name,
                "nodes": acg.num_nodes,
                "edges": acg.num_edges,
                "traffic": scenario.traffic,
                "description": scenario.description,
            }
        )
    return rows


# ----------------------------------------------------------------------
# built-in suites
# ----------------------------------------------------------------------
def _smoke_scenarios() -> list[Scenario]:
    return [
        aes_scenario(blocks=1),
        tgff_scenario(num_tasks=12, seed=7),
        planted_scenario(num_nodes=12, seed=11),
    ]


def _paper_scenarios() -> list[Scenario]:
    return [aes_scenario(blocks=2)]


def _embedded_scenarios() -> list[Scenario]:
    scenarios = [aes_scenario(blocks=1)]
    scenarios.extend(embedded_scenario(name) for name in embedded_benchmark_names())
    return scenarios


def _random_scenarios() -> list[Scenario]:
    return [
        scale_free_scenario(num_nodes=16, seed=3),
        scale_free_scenario(num_nodes=16, seed=5),
        planted_scenario(num_nodes=16, seed=11),
        erdos_renyi_scenario(num_nodes=12, edge_probability=0.12, seed=9),
    ]


def _fabric_scenarios() -> list[Scenario]:
    return [
        tgff_scenario(num_tasks=12, seed=7),
        scale_free_scenario(num_nodes=16, seed=3),
    ]


register_suite(
    SuiteSpec(
        name="smoke",
        description="tiny CI suite: AES + one TGFF + one planted random graph",
        factory=_smoke_scenarios,
        default_axes={
            "architecture": ("mesh", "custom"),
            "router_pipeline_delay_cycles": (1, 2),
        },
        base_settings=EvaluationSettings(
            decomposition_timeout_seconds=15.0, max_cycles=100_000
        ),
    )
)

register_suite(
    SuiteSpec(
        name="paper",
        description="the paper's Section-5.2 operating point (AES, mesh vs custom)",
        factory=_paper_scenarios,
        default_axes={
            "architecture": ("mesh", "custom"),
            "router_pipeline_delay_cycles": (2,),
        },
    )
)

register_suite(
    SuiteSpec(
        name="embedded",
        description="published embedded benchmarks (MPEG-4, VOPD, MWD, 263enc+mp3dec) + AES",
        factory=_embedded_scenarios,
        default_axes={
            "architecture": ("mesh", "custom"),
            "router_pipeline_delay_cycles": (2,),
        },
    )
)

register_suite(
    SuiteSpec(
        name="fabrics",
        description=(
            "standard-fabric baseline sweep: topology families x routing "
            "policies (unsupported pairs become explicit routing failures)"
        ),
        factory=_fabric_scenarios,
        default_axes={
            "architecture": ("mesh",),
            "topology": (
                "mesh",
                "torus",
                "ring",
                "spidergon",
                "fat_tree",
                "long_range_mesh",
            ),
            "routing_policy": ("xy", "up_down"),
        },
        base_settings=EvaluationSettings(architecture="mesh", max_cycles=100_000),
    )
)

register_suite(
    SuiteSpec(
        name="random",
        description="degree-sequence-controlled and unstructured random ACGs",
        factory=_random_scenarios,
        default_axes={
            "architecture": ("mesh", "custom"),
            "max_matchings_per_primitive": (2, 3),
        },
    )
)
