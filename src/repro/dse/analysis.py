"""Sweep analysis: Pareto fronts, mesh-baseline normalization, reports.

The exploration's deliverable is not one number but a *frontier*: which
(architecture, configuration) cells are not dominated on the
energy / latency / throughput trade-off, and how each cell compares to
the standard-mesh baseline evaluated under identical traffic.  All
helpers operate on :class:`~repro.dse.records.EvaluationRecord` lists
as produced by the runner or loaded from the JSONL cache.

Cells whose decomposition search hit its budget
(:attr:`~repro.dse.records.EvaluationRecord.truncated_search`) carry
machine-speed-dependent results; :func:`pareto_report` marks them with
``!`` and prints a caveat rather than silently mixing them into fronts.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dse.pipeline import EvaluationSettings
from repro.dse.records import EvaluationRecord

#: default Pareto objectives (smaller is better)
DEFAULT_MINIMIZE = ("energy_per_iteration_uj", "avg_latency_cycles")
#: default Pareto objectives (larger is better)
DEFAULT_MAXIMIZE = ("throughput_mbps",)

MESH_ARCHITECTURE = "mesh"


def _objective_values(
    record: EvaluationRecord,
    minimize: Sequence[str],
    maximize: Sequence[str],
) -> list[float] | None:
    """All objectives as minimization values, or None if any is missing."""
    values: list[float] = []
    for key in minimize:
        value = record.metric(key)
        if value is None:
            return None
        values.append(value)
    for key in maximize:
        value = record.metric(key)
        if value is None:
            return None
        values.append(-value)
    return values


def dominates(
    challenger: EvaluationRecord,
    incumbent: EvaluationRecord,
    minimize: Sequence[str] = DEFAULT_MINIMIZE,
    maximize: Sequence[str] = DEFAULT_MAXIMIZE,
) -> bool:
    """True when ``challenger`` is at least as good everywhere and better somewhere."""
    left = _objective_values(challenger, minimize, maximize)
    right = _objective_values(incumbent, minimize, maximize)
    if left is None or right is None:
        return False
    return all(a <= b for a, b in zip(left, right)) and any(
        a < b for a, b in zip(left, right)
    )


def _dominates_values(left: Sequence[float], right: Sequence[float]) -> bool:
    """Strict Pareto dominance on pre-negated minimization vectors."""
    return all(a <= b for a, b in zip(left, right)) and any(
        a < b for a, b in zip(left, right)
    )


def pareto_front(
    records: Sequence[EvaluationRecord],
    minimize: Sequence[str] = DEFAULT_MINIMIZE,
    maximize: Sequence[str] = DEFAULT_MAXIMIZE,
) -> list[EvaluationRecord]:
    """The non-dominated subset of the successful records.

    Sort-filter skyline rather than the all-pairs scan: candidates are
    visited in lexicographic objective order, and a vector can only be
    dominated by one that sorts before it (dominance implies all
    coordinates <=, so the first differing coordinate is smaller).  Every
    survivor therefore only needs checking against the running front —
    O(n log n + n * |front| * d) instead of O(n^2 * d), which is what lets
    the guided searcher re-derive incumbent fronts every rung for free.

    Semantics are identical to the all-pairs definition: input order is
    preserved, failed cells and cells missing an objective are excluded,
    and records with *equal* objective vectors are all kept (equality is
    not dominance).
    """
    candidates: list[tuple[EvaluationRecord, list[float]]] = []
    for record in records:
        if not record.succeeded:
            continue
        values = _objective_values(record, minimize, maximize)
        if values is not None:
            candidates.append((record, values))
    visit_order = sorted(range(len(candidates)), key=lambda i: candidates[i][1])
    accepted = [False] * len(candidates)
    front_values: list[list[float]] = []
    seen_values: set[tuple[float, ...]] = set()
    for index in visit_order:
        values = candidates[index][1]
        if any(_dominates_values(front, values) for front in front_values):
            continue
        accepted[index] = True
        key = tuple(values)
        if key not in seen_values:  # tie groups share one front entry
            seen_values.add(key)
            front_values.append(values)
    return [record for (record, _), keep in zip(candidates, accepted) if keep]


#: axes that select a standard-fabric variant rather than an operating point
_FABRIC_AXES = ("topology", "routing_policy")


def _non_fabric_axes(record: EvaluationRecord) -> dict[str, object]:
    """The record's axes minus the architecture/fabric-selection axes."""
    excluded = ("architecture",) + _FABRIC_AXES
    return {key: value for key, value in record.axes.items() if key not in excluded}


def _is_reference_fabric(record: EvaluationRecord) -> bool:
    """True for the canonical mesh + XY baseline cell of a sweep.

    Reads the record's effective settings (falling back to its axes for
    records cached before settings carried the fabric fields), so a fabric
    selected through base settings rather than a grid axis is still
    recognized — a torus/dateline cell is never mistaken for the mesh
    reference just because ``topology`` was not swept.
    """
    settings = record.settings or {}
    topology = settings.get("topology", record.axes.get("topology", "mesh"))
    policy = settings.get("routing_policy", record.axes.get("routing_policy", "xy"))
    return topology == "mesh" and policy == "xy"


def _mesh_relevant_axes(record: EvaluationRecord) -> dict[str, object]:
    """The record's axes restricted to fields a mesh evaluation reads.

    The fabric axes are stripped too: reference cells are mesh+XY by
    definition (:func:`_is_reference_fabric` filters them upstream), so a
    reference that swept ``topology``/``routing_policy`` must still match
    a record that never carried those axes.
    """
    excluded = (
        set(EvaluationSettings._CUSTOM_ONLY_FIELDS)
        | set(_FABRIC_AXES)
        | {"architecture"}
    )
    return {
        key: value
        for key, value in record.axes.items()
        if key not in excluded
    }


def mesh_baseline_for(
    record: EvaluationRecord, records: Sequence[EvaluationRecord]
) -> EvaluationRecord | None:
    """The mesh record measured under the same scenario and grid cell.

    Only the canonical mesh-family + XY cells qualify as baselines, so in
    a fabric sweep a torus or ring variant is normalized against the
    classic mesh at the same operating point — never against itself.  A
    sweep with no mesh+XY cell at all yields None (no ratio columns)
    rather than a misleading self-ratio of 1.0.  Among the reference
    cells, prefers the one whose non-architecture, non-fabric axes match
    exactly, then falls back to one matching on every *mesh-relevant* axis
    (the mesh ignores decomposition/synthesis knobs, so such a cell is the
    same operating point).  A mesh cell differing on a mesh-relevant axis
    — e.g. the router pipeline depth — is never used as a baseline:
    returns None instead of a misleading ratio.
    """
    mesh_records = [
        other
        for other in records
        if other.scenario == record.scenario
        and other.architecture == MESH_ARCHITECTURE
        and other.succeeded
        and _is_reference_fabric(other)
    ]
    wanted_operating_point = _non_fabric_axes(record)
    for other in mesh_records:
        if _non_fabric_axes(other) == wanted_operating_point:
            return other
    # (an exact non-architecture-axes pass would be subsumed by the loop
    # above: matching on all axes implies matching on the non-fabric subset)
    wanted_relevant = _mesh_relevant_axes(record)
    for other in mesh_records:
        if _mesh_relevant_axes(other) == wanted_relevant:
            return other
    return None


def normalize_to_mesh(
    records: Sequence[EvaluationRecord],
    keys: Sequence[str] = ("avg_latency_cycles", "energy_per_iteration_uj", "throughput_mbps"),
) -> list[dict[str, object]]:
    """Reporting rows with ``<metric>_vs_mesh`` ratio columns added.

    A ratio below 1.0 means "less than the mesh baseline" (good for latency
    and energy); throughput above 1.0 means faster than the mesh.
    """
    rows: list[dict[str, object]] = []
    for record in records:
        row = record.as_row()
        baseline = mesh_baseline_for(record, records)
        if baseline is not None and record.succeeded:
            for key in keys:
                value = record.metric(key)
                reference = baseline.metric(key)
                if value is not None and reference not in (None, 0.0):
                    row[f"{key}_vs_mesh"] = value / reference
        rows.append(row)
    return rows


def custom_dominates_mesh(
    records: Sequence[EvaluationRecord],
    scenario: str,
    minimize: Sequence[str] = DEFAULT_MINIMIZE,
    maximize: Sequence[str] = DEFAULT_MAXIMIZE,
) -> bool:
    """Does some custom cell Pareto-dominate every mesh cell of the scenario?

    This is the paper's Section-5.2 shape: the synthesized architecture wins
    on every figure of merit simultaneously, not just on one axis.  Only
    the canonical mesh+XY reference cells count as "the mesh baseline" —
    torus/ring/fat-tree fabric variants share the ``mesh`` architecture
    label but are alternative baselines, not the one the verdict names.
    """
    scoped = [record for record in records if record.scenario == scenario]
    mesh_cells = [
        record
        for record in scoped
        if record.architecture == MESH_ARCHITECTURE
        and record.succeeded
        and _is_reference_fabric(record)
    ]
    custom_cells = [
        record
        for record in scoped
        if record.architecture != MESH_ARCHITECTURE and record.succeeded
    ]
    if not mesh_cells or not custom_cells:
        return False
    return any(
        all(dominates(custom, mesh, minimize, maximize) for mesh in mesh_cells)
        for custom in custom_cells
    )


def truncated_cells(records: Sequence[EvaluationRecord]) -> list[EvaluationRecord]:
    """The records whose decomposition search exhausted its budget.

    These results are machine-speed-dependent (a slower host caches a worse
    decomposition under the same content key), so reports flag them instead
    of presenting them as exact; re-run them with a larger
    ``decomposition_timeout_seconds`` to make them reproducible.
    """
    return [record for record in records if record.truncated_search]


def stage_reuse_summary(records: Sequence[EvaluationRecord]) -> dict[str, dict[str, int]]:
    """Provenance counts per pipeline stage, e.g. ``{"decompose": {"computed": 2, "memory": 4}}``.

    Only cells that ran the stage appear (mesh cells never decompose); the
    runner's :class:`~repro.dse.runner.SweepResult` carries the same counts
    for one sweep, while this helper works on any record list, including
    records loaded back from the JSONL cache.
    """
    summary: dict[str, dict[str, int]] = {}
    for record in records:
        for stage, provenance in record.stage_reuse.items():
            by_provenance = summary.setdefault(stage, {})
            by_provenance[provenance] = by_provenance.get(provenance, 0) + 1
    return summary


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
_REPORT_COLUMNS = (
    "arch",
    "config",
    "status",
    "pareto",
    "trunc",
    "rung",
    "deadlock_free",
    "vc_channels_needed",
    "cycles_per_iteration",
    "avg_latency_cycles",
    "throughput_mbps",
    "energy_per_iteration_uj",
    "avg_power_mw",
    "physical_links",
    "t_decompose",
    "t_simulate",
    "avg_latency_cycles_vs_mesh",
    "energy_per_iteration_uj_vs_mesh",
    "throughput_mbps_vs_mesh",
)


def scenario_names(records: Sequence[EvaluationRecord]) -> list[str]:
    """Distinct scenario names in first-seen order."""
    seen: dict[str, None] = {}
    for record in records:
        seen.setdefault(record.scenario, None)
    return list(seen)


def pareto_report(
    records: Sequence[EvaluationRecord],
    minimize: Sequence[str] = DEFAULT_MINIMIZE,
    maximize: Sequence[str] = DEFAULT_MAXIMIZE,
) -> str:
    """One table per scenario: all cells, Pareto members starred,
    mesh-normalized ratio columns, and a dominance verdict line."""
    # imported lazily: repro.experiments pulls in the comparison module,
    # which itself builds on this package's pipeline
    from repro.experiments.reporting import format_table

    sections: list[str] = []
    for scenario in scenario_names(records):
        scoped = [record for record in records if record.scenario == scenario]
        front = set(id(record) for record in pareto_front(scoped, minimize, maximize))
        rows = []
        for row, record in zip(normalize_to_mesh(scoped), scoped):
            row["pareto"] = "*" if id(record) in front else ""
            if record.approximate:
                row["trunc"] = "!"
            rows.append(row)
        columns = [
            column
            for column in _REPORT_COLUMNS
            if any(column in row for row in rows)
        ]
        table = format_table(rows, columns=columns, title=f"scenario: {scenario}")
        verdict = (
            "custom Pareto-dominates the mesh baseline"
            if custom_dominates_mesh(records, scenario, minimize, maximize)
            else "custom does not dominate the mesh baseline"
        )
        section = f"{table}\n  -> {scenario}: {verdict}"
        # only full-fidelity truncations warrant the grid-level caveat: a
        # low-rung cell is truncated *by design* and gets its own caveat below
        truncated = [
            record for record in truncated_cells(scoped) if not record.low_fidelity
        ]
        if truncated:
            timed = [
                record for record in truncated if not record.truncated_deterministic
            ]
            flavor = (
                "results are machine-speed-dependent; "
                "re-run with a larger decomposition_timeout_seconds"
                if timed
                else "deterministic node/leaf budgets: reproducible anywhere, "
                "but the decomposition is approximate"
            )
            in_front = [record for record in truncated if id(record) in front]
            caveat = (
                f"  !  {len(truncated)} cell(s) hit the decomposition search "
                f"budget (marked '!'): {flavor}"
            )
            if in_front:
                caveat += (
                    f"\n  !  {len(in_front)} of them sit on the Pareto front — "
                    "treat this frontier as approximate"
                )
            section = f"{section}\n{caveat}"
        low_fidelity = [record for record in scoped if record.low_fidelity]
        if low_fidelity:
            # a promoted cell's low-rung record has a full-fidelity sibling
            # in the same table; only *pruned* front members lack one
            in_front_low = [
                record
                for record in low_fidelity
                if id(record) in front and record.search.get("pruned_at")
            ]
            caveat = (
                f"  !  {len(low_fidelity)} cell(s) are low-fidelity search "
                "rungs (marked '!'): measured under truncated budgets / short "
                "simulation windows"
            )
            if in_front_low:
                caveat += (
                    f"\n  !  {len(in_front_low)} of them sit on the Pareto "
                    "front without a completed promotion — promote them "
                    "(python -m repro.dse search) before trusting this frontier"
                )
            section = f"{section}\n{caveat}"
        sections.append(section)
    if not sections:
        return "(no records)"
    return "\n\n".join(sections)
