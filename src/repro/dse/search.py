"""Multi-fidelity guided search: Pareto-aware successive halving.

Exhaustive grids evaluate every cell at full fidelity; this module races
them instead.  A *fidelity ladder* is an ordered list of
:class:`RungSpec` configs: low rungs evaluate every design point under
truncated decomposition budgets (``max_nodes_expanded`` scaled by
``budget_fraction`` — a deterministic counter budget, so rung results
reproduce bit-identically on any machine; explicit wall-clock caps can
be added per rung via ``overrides``), a short simulation window
(:meth:`~repro.dse.pipeline.Scenario.with_simulation_cap`) and the
cheap ``batch`` engine; the top rung is exactly today's grid settings.
Every cell is seeded at the lowest rung, and only cells on — or within a
dominance *margin* of — the incumbent per-scenario Pareto front are
promoted to the next rung.

Fidelity and caching
    A rung variant is an ordinary ``(scenario, settings)`` cell, so it
    flows through the unchanged :func:`~repro.dse.runner.run_cells`
    machinery: content-hash cache keys, stage-granular reuse and the
    ``--parallel`` group fan-out all apply.  Because the decomposition
    budgets live *inside* the decomposition stage dict, a truncated
    rung's artifacts key separately and can never satisfy a full-budget
    sub-key — while a rung that only cheapens the *simulator* (engine,
    window) shares the full decomposition sub-key, so its promotion pays
    only the incremental simulation cost.

Determinism
    Promotion order is fully deterministic: front members first, then
    margin survivors, each ordered by a seeded ``sha256`` tie-break over
    the cell's content key.  Identical promotion sequences and final
    fronts are guaranteed across repeated runs and between serial and
    parallel execution (the pipeline itself is deterministic and
    :func:`~repro.dse.runner.run_cells` returns records in plan order).

Exactness
    If every cell of the true full-fidelity front survives to the top
    rung, the reported front *equals* the exhaustive grid's front — a
    finite strict partial order needs only its own front members to
    dominate everything else.  The margin is the insurance that makes
    survival likely; ``scripts/bench_search.py`` asserts the parity (and
    the >=5x top-rung saving) empirically on the embedded suite.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.dse.analysis import (
    DEFAULT_MAXIMIZE,
    DEFAULT_MINIMIZE,
    _objective_values,
    dominates,
    pareto_front,
)
from repro.dse.cache import ResultCache, StageArtifactStore, cache_key
from repro.dse.pipeline import EvaluationSettings, Scenario
from repro.dse.records import EvaluationRecord
from repro.dse.runner import (
    SweepCell,
    SweepResult,
    _stage_group,
    plan_sweep,
    run_cells,
)
from repro.exceptions import ConfigurationError
from repro.obs import get_session

__all__ = [
    "RungSpec",
    "SearchConfig",
    "SearchResult",
    "default_ladder",
    "margin_dominated",
    "run_search",
]


@dataclass(frozen=True)
class RungSpec:
    """One rung of the fidelity ladder.

    A rung turns a planned full-fidelity cell into its cheaper variant:
    ``overrides`` are merged into the cell's settings (any
    :class:`~repro.dse.pipeline.EvaluationSettings` field — engine,
    explicit ``decomposition_timeout_seconds`` wall caps, ...),
    ``simulation_cap`` clamps the scenario's traffic window, and
    ``budget_fraction`` scales the cell's ``max_nodes_expanded``
    decomposition budget (chosen over a wall-clock scale because a node
    budget truncates deterministically — the rung's metrics, and hence
    the promotion decisions, reproduce on any machine).  Per-scenario
    settings pins still win over rung overrides, exactly as they win
    over grid axes.
    """

    name: str
    overrides: Mapping[str, object] = field(default_factory=dict)
    simulation_cap: int | None = None
    budget_fraction: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a rung needs a name")
        if self.budget_fraction is not None and not 0.0 < self.budget_fraction <= 1.0:
            raise ConfigurationError(
                f"rung {self.name!r}: budget_fraction must be in (0, 1], "
                f"got {self.budget_fraction!r}"
            )
        if self.simulation_cap is not None and self.simulation_cap < 1:
            raise ConfigurationError(
                f"rung {self.name!r}: simulation_cap must be at least 1"
            )

    @property
    def full_fidelity(self) -> bool:
        """True when this rung evaluates cells exactly as the grid would."""
        return (
            not self.overrides
            and self.simulation_cap is None
            and self.budget_fraction is None
        )

    def apply(self, cell: SweepCell) -> SweepCell:
        """This rung's fidelity variant of a planned full-fidelity cell.

        The variant is a first-class cell with its own content key and
        stage group; when the rung is not binding for this particular cell
        (identical effective content) the original cell is returned, since
        the evaluation would be bit-identical anyway.
        """
        scenario = cell.scenario
        if self.simulation_cap is not None:
            scenario = scenario.with_simulation_cap(self.simulation_cap)
        merged = dict(self.overrides)
        if (
            self.budget_fraction is not None
            and "max_nodes_expanded" not in merged
            and cell.settings.max_nodes_expanded is not None
        ):
            merged["max_nodes_expanded"] = max(
                1, int(cell.settings.max_nodes_expanded * self.budget_fraction)
            )
        settings = cell.settings.merged(merged) if merged else cell.settings
        if scenario is cell.scenario and not merged:
            return cell
        key = cache_key(scenario, settings)
        return SweepCell(
            scenario=scenario,
            settings=settings,
            axes=dict(cell.axes),
            key=key,
            stage_group=_stage_group(scenario, settings, key),
        )


def default_ladder(use_batch_engine: bool | None = None) -> tuple[RungSpec, ...]:
    """The stock three-rung ladder: screen -> confirm -> full.

    ``screen`` truncates the decomposition node budget to 1/20 (20 nodes
    at the default 400-node budget — the exact residual bounds of
    :mod:`repro.core.bounds` reach the same incumbents in ~3x fewer nodes
    than the pre-bound ladder's 1/6 screen did) and clamps the simulation
    window to one iteration; ``confirm`` runs the full
    decomposition (sharing its stage sub-key with the top rung, so the
    final promotion pays only the real simulator run) under the cheap
    simulator; ``full`` is the untouched grid settings.  Both cheap rungs
    use the vectorized ``batch`` engine when numpy is importable (pass
    ``use_batch_engine=False`` to force the scalar event engine, e.g. for
    fabric families the batch engine does not support).
    """
    if use_batch_engine is None:
        try:
            import numpy  # noqa: F401

            use_batch_engine = True
        except ImportError:  # pragma: no cover - numpy ships in CI
            use_batch_engine = False
    engine: dict[str, object] = {"engine": "batch"} if use_batch_engine else {}
    return (
        RungSpec("screen", overrides=dict(engine), budget_fraction=0.05, simulation_cap=1),
        RungSpec("confirm", overrides=dict(engine)),
        RungSpec("full"),
    )


@dataclass(frozen=True)
class SearchConfig:
    """Ladder + racing policy of one guided search."""

    ladder: tuple[RungSpec, ...] = field(default_factory=default_ladder)
    margin: float = 0.10
    """Dominance slack for promotion: a cell is pruned only when some
    front member classically dominates it *and* is better by the factor
    ``1 + margin`` in every objective.  ``0.0`` degenerates to promoting
    exactly the incumbent front; larger values promote more conservatively
    (insurance against low-rung metrics misleading the racer)."""
    seed: int = 0
    """Seeds the promotion tie-break hash; part of the provenance."""
    max_promotions: int | None = None
    """Optional per-scenario cap on promotions per rung (front members and
    margin survivors compete for the slots in deterministic rank order)."""
    minimize: tuple[str, ...] = DEFAULT_MINIMIZE
    maximize: tuple[str, ...] = DEFAULT_MAXIMIZE

    def __post_init__(self) -> None:
        object.__setattr__(self, "ladder", tuple(self.ladder))
        if not self.ladder:
            raise ConfigurationError("the fidelity ladder needs at least one rung")
        names = [rung.name for rung in self.ladder]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"rung names must be unique, got {names!r}")
        if not self.ladder[-1].full_fidelity:
            raise ConfigurationError(
                f"the top rung ({self.ladder[-1].name!r}) must be full fidelity "
                "(no overrides, no simulation cap, no budget fraction) — "
                "otherwise the search never reproduces the grid's measurements"
            )
        if self.margin < 0.0:
            raise ConfigurationError(f"margin must be >= 0, got {self.margin!r}")
        if self.max_promotions is not None and self.max_promotions < 1:
            raise ConfigurationError("max_promotions must be at least 1")


def _beats_by_margin(
    incumbent: EvaluationRecord,
    challenger: EvaluationRecord,
    minimize: Sequence[str],
    maximize: Sequence[str],
    margin: float,
) -> bool:
    """Is the incumbent better by the factor ``1 + margin`` everywhere?

    For non-positive metric values the multiplicative margin is
    meaningless; those objectives fall back to the plain better-or-equal
    test (never *blocking* a prune that classic dominance already allows).
    """
    for key in minimize:
        ours = incumbent.metric(key)
        theirs = challenger.metric(key)
        if ours is None or theirs is None:
            return False
        if ours <= 0.0 or theirs <= 0.0:
            if ours > theirs:
                return False
        elif ours * (1.0 + margin) > theirs:
            return False
    for key in maximize:
        ours = incumbent.metric(key)
        theirs = challenger.metric(key)
        if ours is None or theirs is None:
            return False
        if ours <= 0.0 or theirs <= 0.0:
            if ours < theirs:
                return False
        elif ours < theirs * (1.0 + margin):
            return False
    return True


def margin_dominated(
    challenger: EvaluationRecord,
    front: Sequence[EvaluationRecord],
    minimize: Sequence[str] = DEFAULT_MINIMIZE,
    maximize: Sequence[str] = DEFAULT_MAXIMIZE,
    margin: float = 0.0,
) -> bool:
    """True when a front member dominates ``challenger`` beyond the margin.

    Checking front members only is sufficient: whatever dominates the
    challenger is itself dominated by (or on) the front, and dominance
    beyond a margin is inherited along the dominance order.  With
    ``margin=0`` this is exactly "not on the front".
    """
    for incumbent in front:
        if incumbent is challenger:
            continue
        if not dominates(incumbent, challenger, minimize, maximize):
            continue
        if margin <= 0.0:
            return True
        if _beats_by_margin(incumbent, challenger, minimize, maximize, margin):
            return True
    return False


def _tiebreak(seed: int, rung_index: int, key: str) -> str:
    """Seeded, platform-independent promotion tie-break rank."""
    return hashlib.sha256(f"{seed}:{rung_index}:{key}".encode()).hexdigest()


#: rung overrides that cannot change a *successful, untruncated* result:
#: the engines are differentially tested bit-identical, and a completed
#: branch-and-bound search under a smaller budget proves the budget never
#: bound — the decomposition equals the full-budget one
_EXACT_WHEN_UNTRUNCATED = frozenset(
    {"engine", "max_nodes_expanded", "decomposition_timeout_seconds"}
)


def _effective_margin(
    record: EvaluationRecord, rung: RungSpec, cell: SweepCell, margin: float
) -> float:
    """The dominance slack this cell actually needs at this rung.

    The margin insures against low-fidelity measurement error — but most
    low-rung evaluations are provably *exact*: if the rung only swapped
    the (bit-identical) engine and tightened decomposition budgets that
    turned out not to bind (``truncated`` is False, so the search
    completed and found the same optimum any larger budget would), and
    the simulation-window cap did not bind either, then the rung metrics
    equal the full-fidelity metrics and classic dominance is already
    sound.  Only genuinely approximate evaluations (truncated search,
    clamped window, or rung overrides beyond the provably-exact set) keep
    the configured slack.
    """
    if margin <= 0.0:
        return 0.0
    if not _EXACT_WHEN_UNTRUNCATED.issuperset(rung.overrides):
        return margin
    if record.truncated_search:
        return margin
    if (
        rung.simulation_cap is not None
        and cell.scenario.with_simulation_cap(rung.simulation_cap)
        is not cell.scenario
    ):
        return margin
    return 0.0


def _store_annotated(
    cache: ResultCache | None, records: Sequence[EvaluationRecord]
) -> None:
    """Overwrite the cached copies with their search-provenance view."""
    if cache is None:
        return
    for record in records:
        cache.store(record)


@dataclass
class SearchResult:
    """Everything one guided search produced, plus the racing bookkeeping.

    ``records`` holds one record per planned cell — the view from the
    *highest* rung the cell reached, every one carrying ``record.search``
    provenance (rung, promotion chain, prune point).  The headline
    counters are in distinct design points (content keys of the
    full-fidelity grid), matching the exhaustive sweep's
    ``num_evaluations`` accounting.
    """

    config: SearchConfig
    records: list[EvaluationRecord] = field(default_factory=list)
    promotions: list[dict[str, object]] = field(default_factory=list)
    """Ordered promotion log: one entry per promoted design point per rung
    boundary, in deterministic promotion-rank order."""
    sweeps: list[SweepResult] = field(default_factory=list)
    """Per-rung sweep bookkeeping (cache hits, stage reuse)."""
    rung_counts: list[tuple[str, int]] = field(default_factory=list)
    """Distinct design points evaluated at each rung, ladder order."""
    promoted: dict[str, int] = field(default_factory=dict)
    """Design points promoted *out of* each non-top rung."""
    pruned: dict[str, int] = field(default_factory=dict)
    """Design points dropped at each non-top rung."""
    grid_cells: int = 0
    """Distinct design points the exhaustive grid would evaluate."""
    cells_seeded: int = 0
    top_rung_evaluations: int = 0

    @property
    def top_rung_saved(self) -> int:
        """Full-fidelity evaluations the ladder avoided vs the grid."""
        return self.grid_cells - self.top_rung_evaluations

    @property
    def saving_factor(self) -> float:
        """Exhaustive-grid top-rung evaluations per guided one."""
        if self.top_rung_evaluations <= 0:
            return float("inf") if self.grid_cells else 1.0
        return self.grid_cells / self.top_rung_evaluations

    def full_fidelity_records(self) -> list[EvaluationRecord]:
        """The records measured at the top rung (grid-exact settings)."""
        return [
            record
            for record in self.records
            if bool(record.search.get("full_fidelity"))
        ]

    def front_records(self) -> list[EvaluationRecord]:
        """Per-scenario Pareto fronts over the full-fidelity records only."""
        finished = self.full_fidelity_records()
        front: list[EvaluationRecord] = []
        seen: dict[str, None] = {}
        for record in finished:
            seen.setdefault(record.scenario, None)
        for scenario in seen:
            scoped = [record for record in finished if record.scenario == scenario]
            front.extend(pareto_front(scoped, self.config.minimize, self.config.maximize))
        return front

    def failed(self) -> list[EvaluationRecord]:
        """Records that failed at some pipeline stage (any rung)."""
        return [record for record in self.records if not record.succeeded]

    def describe(self) -> str:
        """Multi-line human-readable racing summary."""
        ladder = " -> ".join(rung.name for rung in self.config.ladder)
        path = " -> ".join(str(count) for _, count in self.rung_counts)
        lines = [
            f"guided search: ladder {ladder} "
            f"(margin {self.config.margin:g}, seed {self.config.seed})",
            f"design points per rung: {path} of {self.grid_cells} grid cells; "
            f"top-rung evaluations: {self.top_rung_evaluations} "
            f"({self.saving_factor:.1f}x fewer than the exhaustive grid, "
            f"{self.top_rung_saved} full-fidelity evaluation(s) saved)",
        ]
        cache_hits = sum(sweep.cache_hits for sweep in self.sweeps)
        evaluated = sum(sweep.num_evaluations for sweep in self.sweeps)
        lines.append(
            f"pipeline runs: {evaluated} across all rungs "
            f"({cache_hits} cell(s) served by the result cache); "
            f"{len(self.failed())} failure(s)"
        )
        return "\n".join(lines)


def _select_survivors(
    alive: Sequence[int],
    records: Sequence[EvaluationRecord],
    cells: Sequence[SweepCell],
    config: SearchConfig,
    rung_index: int,
    rung: RungSpec,
) -> tuple[list[int], list[int], list[int]]:
    """Split the alive cells into promoted and pruned, deterministically.

    Returns ``(survivors, pruned, promotion_order)`` as indices into
    ``cells``: survivors sorted by plan position (the next rung's stable
    evaluation order), the promotion order sorted by rank — front members
    first, then margin survivors, tie-broken by the seeded hash.
    """
    by_scenario: dict[str, list[int]] = {}
    for position, index in enumerate(alive):
        by_scenario.setdefault(cells[index].scenario.name, []).append(position)
    survivors: list[int] = []
    pruned: list[int] = []
    promotion_order: list[int] = []
    for positions in by_scenario.values():
        scoped = [records[position] for position in positions]
        front = pareto_front(scoped, config.minimize, config.maximize)
        front_ids = {id(record) for record in front}
        ranked: list[tuple[int, str, int]] = []
        for position in positions:
            record = records[position]
            if id(record) in front_ids:
                rank = 0
            elif (
                not record.succeeded
                or _objective_values(record, config.minimize, config.maximize) is None
            ):
                pruned.append(alive[position])
                continue
            elif margin_dominated(
                record,
                front,
                config.minimize,
                config.maximize,
                _effective_margin(record, rung, cells[alive[position]], config.margin),
            ):
                pruned.append(alive[position])
                continue
            else:
                rank = 1
            ranked.append(
                (rank, _tiebreak(config.seed, rung_index, cells[alive[position]].key), position)
            )
        ranked.sort()
        kept_keys: set[str] = set()
        for rank, _, position in ranked:
            key = cells[alive[position]].key
            if (
                config.max_promotions is not None
                and key not in kept_keys
                and len(kept_keys) >= config.max_promotions
            ):
                pruned.append(alive[position])
                continue
            kept_keys.add(key)
            survivors.append(alive[position])
            promotion_order.append(alive[position])
    survivors.sort()
    return survivors, pruned, promotion_order


def run_search(
    scenarios: Sequence[Scenario],
    base: EvaluationSettings | None = None,
    axes: Mapping[str, Sequence[object]] | None = None,
    config: SearchConfig | None = None,
    cache: ResultCache | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
    artifacts: StageArtifactStore | str | Path | None = None,
) -> SearchResult:
    """Race the grid up the fidelity ladder instead of sweeping it.

    Takes the same grid description as :func:`~repro.dse.runner.run_sweep`
    (scenarios x base settings x axes) plus a :class:`SearchConfig`, and
    shares its whole execution substrate — result cache, stage-artifact
    store and the ``parallel`` process-pool fan-out apply to every rung.
    Records land in the cache under their rung-variant content keys, so a
    follow-up ``report`` sees the full provenance and a re-run is ~all
    cache hits.
    """
    config = config or SearchConfig()
    cells = plan_sweep(scenarios, base, axes)
    grid_cells = len({cell.key for cell in cells})
    top_index = len(config.ladder) - 1
    session = get_session()
    result = SearchResult(config=config, grid_cells=grid_cells)

    latest: list[EvaluationRecord | None] = [None] * len(cells)
    previous_rung: list[str | None] = [None] * len(cells)
    alive = list(range(len(cells)))

    with session.tracer.span(
        "search.sweep",
        rungs=len(config.ladder),
        grid_cells=grid_cells,
        margin=config.margin,
        seed=config.seed,
    ) as sweep_span:
        for rung_index, rung in enumerate(config.ladder):
            rung_cells = [rung.apply(cells[index]) for index in alive]
            points = len({cells[index].key for index in alive})
            result.rung_counts.append((rung.name, points))
            with session.tracer.span(
                "search.rung", rung=rung.name, index=rung_index, cells=points
            ) as rung_span:
                sweep = run_cells(
                    rung_cells,
                    cache=cache,
                    parallel=parallel,
                    max_workers=max_workers,
                    artifacts=artifacts,
                )
                result.sweeps.append(sweep)
                full_fidelity = rung_index == top_index
                for index, record in zip(alive, sweep.records):
                    provenance: dict[str, object] = {
                        "rung": rung.name,
                        "rung_index": rung_index,
                        "full_fidelity": full_fidelity or rung.full_fidelity,
                        "seed": config.seed,
                    }
                    if previous_rung[index] is not None:
                        provenance["promoted_from"] = previous_rung[index]
                    record.search = provenance
                    latest[index] = record
                    previous_rung[index] = rung.name
                if rung_index == 0:
                    result.cells_seeded = points
                    if session.metrics is not None:
                        session.metrics.counter("search.cells_seeded").add(points)
                if full_fidelity:
                    result.top_rung_evaluations = points
                    if session.tracer.enabled:
                        rung_span.annotate(evaluated=sweep.num_evaluations)
                    _store_annotated(cache, sweep.records)
                    break
                survivors, dropped, promotion_order = _select_survivors(
                    alive, sweep.records, cells, config, rung_index, rung
                )
                for index in dropped:
                    record = latest[index]
                    assert record is not None
                    record.search["pruned_at"] = rung.name
                # re-store with the search provenance attached: run_cells
                # cached the bare measurement, but `report` must see the
                # rung / prune / promotion trail on the cached record too
                _store_annotated(cache, sweep.records)
                next_rung = config.ladder[rung_index + 1]
                promoted_keys: dict[str, None] = {}
                for index in promotion_order:
                    if cells[index].key in promoted_keys:
                        continue  # duplicate planned cell: one design point
                    promoted_keys[cells[index].key] = None
                    result.promotions.append(
                        {
                            "from": rung.name,
                            "to": next_rung.name,
                            "scenario": cells[index].scenario.name,
                            "label": cells[index].label,
                            "cell": cells[index].key,
                        }
                    )
                promoted_points = len(promoted_keys)
                pruned_points = points - promoted_points
                result.promoted[rung.name] = promoted_points
                result.pruned[rung.name] = pruned_points
                if session.tracer.enabled:
                    rung_span.annotate(
                        evaluated=sweep.num_evaluations,
                        promoted=promoted_points,
                        pruned=pruned_points,
                    )
                if session.metrics is not None:
                    session.metrics.counter(
                        "search.cells_promoted", rung=rung.name
                    ).add(promoted_points)
                    session.metrics.counter(
                        "search.cells_pruned", rung=rung.name
                    ).add(pruned_points)
                alive = survivors
        if session.metrics is not None:
            session.metrics.counter("search.top_rung_evals_saved").add(
                result.top_rung_saved
            )
        if session.tracer.enabled:
            sweep_span.annotate(
                cells_seeded=result.cells_seeded,
                top_rung_evaluations=result.top_rung_evaluations,
                top_rung_saved=result.top_rung_saved,
                promotions=len(result.promotions),
            )

    for record in latest:
        assert record is not None  # every planned cell was evaluated at rung 0
        result.records.append(record)
    return result
