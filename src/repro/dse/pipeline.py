"""The shared evaluation pipeline: one (scenario, configuration) -> record.

This is the engine the batch design-space exploration is built on — and
the same engine the Section-5.2 prototype comparison now runs on
(:mod:`repro.experiments.comparison` delegates its measurements here).
One call to :func:`evaluate` chains the explicit stage functions

    decompose_stage -> synthesize_stage -> route_stage
        -> simulate_stage -> score_stage

for the ``custom`` architecture, or builds the standard-fabric baseline
(a :mod:`repro.arch.families` topology family compiled against a
:mod:`repro.routing.policies` routing policy, via
:func:`baseline_route_stage`) for ``mesh``, then drives the cycle-level
simulator with the
scenario's traffic (plain ACG batches, or the dependency-aware AES
phases) and captures every figure of merit into an
:class:`~repro.dse.records.EvaluationRecord`.  Failures at any stage
become record statuses, not exceptions: an infeasible or deadlocking
configuration is a *result* of the exploration.

The stages are separable on purpose: the decompose stage only reads the
workload graph plus the decomposition knobs, and the synthesize/route
stages only add the synthesis knobs, so sweep cells that differ in
simulator-stage axes alone (injection knobs, buffering, cycle budgets)
share one decomposition — and one synthesized topology — through a
:class:`~repro.dse.cache.StageContext`.  ``record.stage_reuse`` says per
cell whether each stage was computed fresh or served from the in-memory
memo (``"memory"``) or the on-disk artifact store (``"store"``).
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Hashable, Iterator, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, replace

from repro.aes.aes_core import FIPS197_KEY
from repro.aes.distributed import DistributedAES
from repro.arch.families import get_family, pad_node_ids
from repro.arch.mesh import MeshTopology
from repro.arch.topology import Topology
from repro.core.bounds import BOUND_NAMES
from repro.core.cost import LinkCountCostModel
from repro.core.decomposition import (
    DecompositionConfig,
    DecompositionResult,
    SearchStrategy,
    decompose,
)
from repro.core.graph import ApplicationGraph
from repro.core.library import (
    CommunicationLibrary,
    aes_library,
    default_library,
    extended_library,
    minimal_library,
)
from repro.core.constraints import ConstraintChecker, DesignConstraints
from repro.core.routing_table import build_routing_table
from repro.core.synthesis import (
    SynthesisOptions,
    SynthesizedArchitecture,
    TopologySynthesizer,
)
from repro.dse.records import (
    STAGE_COMPUTED,
    STATUS_DECOMPOSITION_FAILED,
    STATUS_ROUTING_FAILED,
    STATUS_SIMULATION_FAILED,
    STATUS_SYNTHESIS_FAILED,
    EvaluationRecord,
)
from repro.energy.technology import Technology, get_technology
from repro.exceptions import (
    ConfigurationError,
    DeadlockError,
    DecompositionError,
    RoutingError,
    SimulationError,
    SynthesisError,
)
from repro.noc.batch import BatchSimulator, DrainOp, RunOp, ScheduleOp
from repro.noc.simulator import (
    ENGINE_BATCH,
    ENGINE_EVENT,
    ENGINES,
    NoCSimulator,
    SimulatorConfig,
)
from repro.noc.stats import throughput_mbps_from_cycles
from repro.noc.traffic import acg_messages
from repro.obs import SimulatorProbe, get_session, get_tracer
from repro.plugins import Registry
from repro.routing.deadlock import DeadlockReport, analyze_deadlock
from repro.routing.policies import get_policy
from repro.routing.table import RoutingTable

NodeId = Hashable
RoutingFunction = Callable[[NodeId, NodeId], NodeId]

#: traffic modes a scenario can request
TRAFFIC_ACG = "acg"
TRAFFIC_AES_PHASES = "aes_phases"

#: bits per AES block (the paper's throughput unit)
AES_BLOCK_SIZE_BITS = 128

#: the communication-library registry (plugin-fabric cell: third-party
#: libraries register here, directly or via the entry-point group)
LIBRARIES: Registry[Callable[[], CommunicationLibrary]] = Registry("communication library")
LIBRARIES.register("minimal", minimal_library)
LIBRARIES.register("default", default_library)
LIBRARIES.register("extended", extended_library)
LIBRARIES.register("aes", aes_library)

#: the decomposition search-strategy registry
STRATEGIES: Registry[SearchStrategy] = Registry("search strategy")
STRATEGIES.register("branch_and_bound", SearchStrategy.BRANCH_AND_BOUND)
STRATEGIES.register("greedy", SearchStrategy.GREEDY)


def get_library(name: str) -> Callable[[], CommunicationLibrary]:
    """Look a communication-library factory up by name (uniform errors)."""
    return LIBRARIES.get(name)


def register_library(name: str, factory: Callable[[], CommunicationLibrary]) -> None:
    """Register (or replace) a communication-library factory."""
    LIBRARIES.register(name, factory)


@dataclass(frozen=True)
class TrafficModeSpec:
    """One named way to drive the simulator with a scenario's traffic.

    ``simulate(scenario, settings, name, topology, routing)`` runs the
    workload on one architecture and returns the measured
    :class:`ArchitectureMetrics`.  The built-in modes are ``"acg"``
    (inject every ACG edge's volume per repetition, drain between
    repetitions) and ``"aes_phases"`` (the dependency-aware distributed-AES
    phase trace); third-party traffic generators register additional modes
    through the plugin fabric and become usable from any
    :class:`Scenario`.
    """

    name: str
    description: str
    simulate: Callable[
        ["Scenario", "EvaluationSettings", str, Topology, RoutingFunction],
        "ArchitectureMetrics",
    ]


#: the traffic-mode registry (plugin-fabric cell: third-party traffic
#: generators register here, directly or via the entry-point group)
TRAFFIC_MODES: Registry[TrafficModeSpec] = Registry("traffic mode")


def get_traffic_mode(name: str) -> TrafficModeSpec:
    """Look a traffic mode up by name (uniform errors)."""
    return TRAFFIC_MODES.get(name)


def register_traffic_mode(spec: TrafficModeSpec) -> TrafficModeSpec:
    """Register (or replace) a traffic mode under its name."""
    return TRAFFIC_MODES.register(spec.name, spec)


#: the scoring-function registry: extra per-cell figures of merit.
#: Each registered ``fn(metrics, topology) -> float`` contributes one
#: ``{name: value}`` column to every record :func:`score_stage` produces;
#: nothing is registered by default, so the built-in record shape is
#: unchanged until a caller (or an entry-point plugin) adds scores.
SCORES: Registry[Callable[["ArchitectureMetrics", Topology], float]] = Registry(
    "scoring function"
)


def register_score(name: str, fn: Callable[["ArchitectureMetrics", Topology], float]):
    """Register (or replace) an extra scoring function under ``name``."""
    return SCORES.register(name, fn)


# ----------------------------------------------------------------------
# configuration of one grid cell
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvaluationSettings:
    """One point of the configuration space (JSON-serializable by design).

    Every field is a plain string/number/bool so a settings instance can be
    content-hashed for the result cache and shipped to worker processes.
    """

    architecture: str = "custom"
    """``"custom"`` (decompose + synthesize) or ``"mesh"`` (standard-fabric
    baseline: a :mod:`repro.arch.families` topology family routed by a
    :mod:`repro.routing.policies` policy; the label predates the fabric
    registry and covers every standard family, not just the mesh)."""

    # -- decomposition ---------------------------------------------------
    strategy: str = "branch_and_bound"
    library: str = "default"
    max_matchings_per_primitive: int | None = 3
    isomorphism_timeout_seconds: float | None = 2.0
    decomposition_timeout_seconds: float | None = 20.0
    max_nodes_expanded: int | None = 400
    lower_bound: str = "stacked"
    """Which admissible residual bound prunes the branch-and-bound (see
    :mod:`repro.core.bounds`): ``"cost_model"``, ``"cheapest_edge"``,
    ``"packing"``, ``"exact_small"`` or ``"stacked"``.  Part of the
    decomposition stage sub-key: cached artifacts never mix bound
    configurations (truncated searches expand different trees under
    different bounds)."""

    # -- synthesis -------------------------------------------------------
    flit_width_bits: int = 32
    bidirectional_links: bool = False
    fill_all_pairs_routing: bool = False

    # -- standard-fabric baseline ----------------------------------------
    topology: str = "mesh"
    """Topology family of the baseline fabric (see
    :func:`repro.arch.families.family_names`)."""
    routing_policy: str = "xy"
    """Routing policy compiled onto the baseline fabric (see
    :func:`repro.routing.policies.policy_names`)."""
    mesh_tile_pitch_mm: float = 2.0
    """Tile pitch of the baseline fabric (the name predates the fabric
    registry; every family reads it, not just the mesh)."""

    # -- routing gate ----------------------------------------------------
    require_deadlock_free: bool = False
    """When true, the route-stage CDG gate fails cells whose routing table
    admits a dependency cycle instead of simulating them; either way the
    record carries ``deadlock_free`` and ``vc_channels_needed``."""

    # -- simulation ------------------------------------------------------
    technology: str = "fpga_virtex2"
    router_pipeline_delay_cycles: int = 1
    buffer_capacity_packets: int = 4
    max_cycles: int = 100_000
    engine: str = ENGINE_EVENT
    """Simulator engine: ``"event"`` (skip dead time), ``"reference"``
    (dense cycle loop) or ``"batch"`` (vectorized numpy; the runner groups
    compatible batch cells into one multi-cell simulator call)."""

    def __post_init__(self) -> None:
        if self.architecture not in ("custom", "mesh"):
            raise ConfigurationError(
                f"unknown architecture {self.architecture!r} (use 'custom' or 'mesh')"
            )
        STRATEGIES.get(self.strategy)  # raises UnknownPluginError when unknown
        LIBRARIES.get(self.library)  # raises UnknownPluginError when unknown
        get_family(self.topology)  # raises ConfigurationError when unknown
        get_policy(self.routing_policy)  # raises ConfigurationError when unknown
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown simulator engine {self.engine!r} (use one of {ENGINES})"
            )
        if self.lower_bound not in BOUND_NAMES:
            raise ConfigurationError(
                f"unknown lower bound {self.lower_bound!r} (use one of {BOUND_NAMES})"
            )

    def as_dict(self) -> dict[str, object]:
        """All fields as a plain JSON-serializable dict."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "EvaluationSettings":
        """Rebuild settings from a dict, ignoring unknown keys."""
        known = {spec.name for spec in fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})

    #: fields a mesh-baseline evaluation never reads
    _CUSTOM_ONLY_FIELDS = (
        "strategy",
        "library",
        "max_matchings_per_primitive",
        "isomorphism_timeout_seconds",
        "decomposition_timeout_seconds",
        "max_nodes_expanded",
        "lower_bound",
        "bidirectional_links",
        "fill_all_pairs_routing",
    )

    #: fields only the standard-fabric baseline reads
    _FABRIC_ONLY_FIELDS = (
        "topology",
        "routing_policy",
        "mesh_tile_pitch_mm",
    )

    def canonical_dict(self) -> dict[str, object]:
        """``as_dict`` with architecture-irrelevant knobs normalized out.

        Used for content-hash cache keys: a standard-fabric baseline does
        not depend on decomposition/synthesis knobs (and a custom
        architecture does not depend on the fabric family, routing policy
        or tile pitch), so cells differing only in an irrelevant axis share
        one key — and one evaluation.
        """
        payload = self.as_dict()
        if self.architecture == "mesh":
            for name in self._CUSTOM_ONLY_FIELDS:
                payload[name] = None
        else:
            for name in self._FABRIC_ONLY_FIELDS:
                payload[name] = None
        return payload

    #: fields only the simulate/score stages read; changing one never changes
    #: the decomposition or the synthesized topology.
    #: ``require_deadlock_free`` rides along: it gates whether a cell
    #: *proceeds* past the route stage, but the routing table and deadlock
    #: report it inspects are identical either way, so stage artifacts are
    #: safely shared across gate settings.
    _SIMULATOR_STAGE_FIELDS = (
        "technology",
        "router_pipeline_delay_cycles",
        "buffer_capacity_packets",
        "max_cycles",
        "engine",
        "require_deadlock_free",
    )

    #: fields the synthesize/route stages read on top of the decomposition
    #: (``flit_width_bits`` also feeds the simulator config, but it shapes the
    #: topology first, so it is upstream of the simulate stage)
    _SYNTHESIS_STAGE_FIELDS = (
        "flit_width_bits",
        "bidirectional_links",
        "fill_all_pairs_routing",
    )

    def synthesis_stage_dict(self) -> dict[str, object]:
        """:meth:`canonical_dict` with the simulator-stage fields nulled out.

        The content identity of the synthesize/route stages: cells that agree
        on this dict (and on the workload graph) produce the same synthesized
        topology, routing table and constraint/deadlock reports, whatever
        their simulator knobs say.
        """
        payload = self.canonical_dict()
        for name in self._SIMULATOR_STAGE_FIELDS:
            payload[name] = None
        return payload

    def decomposition_stage_dict(self) -> dict[str, object]:
        """:meth:`synthesis_stage_dict` with the synthesis fields nulled too.

        The content identity of the decompose stage: only the search knobs
        (strategy, library, matching/timeout/node budgets) survive, so every
        simulator- or synthesis-axis sweep cell shares one decomposition.
        """
        payload = self.synthesis_stage_dict()
        for name in self._SYNTHESIS_STAGE_FIELDS:
            payload[name] = None
        return payload

    def merged(self, overrides: dict[str, object]) -> "EvaluationSettings":
        """A copy with the given fields replaced (unknown keys rejected)."""
        known = {spec.name for spec in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigurationError(f"unknown settings fields: {sorted(unknown)}")
        return replace(self, **overrides)

    def build_decomposition_config(self) -> DecompositionConfig:
        """The decompose-stage knobs as a :class:`DecompositionConfig`."""
        return DecompositionConfig(
            strategy=STRATEGIES.get(self.strategy),
            max_matchings_per_primitive=self.max_matchings_per_primitive,
            isomorphism_timeout_seconds=self.isomorphism_timeout_seconds,
            total_timeout_seconds=self.decomposition_timeout_seconds,
            max_nodes_expanded=self.max_nodes_expanded,
            lower_bound=self.lower_bound,
        )

    def build_library(self) -> CommunicationLibrary:
        """Instantiate the named communication library."""
        return LIBRARIES.get(self.library)()

    def build_synthesis_options(self) -> SynthesisOptions:
        """The synthesize/route-stage knobs as :class:`SynthesisOptions`."""
        return SynthesisOptions(
            flit_width_bits=self.flit_width_bits,
            bidirectional_links=self.bidirectional_links,
            fill_all_pairs_routing=self.fill_all_pairs_routing,
        )

    def build_simulator_config(self) -> SimulatorConfig:
        """The simulate-stage knobs as a :class:`SimulatorConfig`."""
        return SimulatorConfig(
            flit_width_bits=self.flit_width_bits,
            buffer_capacity_packets=self.buffer_capacity_packets,
            router_pipeline_delay_cycles=self.router_pipeline_delay_cycles,
            max_cycles=self.max_cycles,
            engine=self.engine,
        )

    def build_technology(self) -> Technology:
        """Resolve the named technology's energy/frequency parameters."""
        return get_technology(self.technology)


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """One named workload a sweep evaluates architectures against."""

    name: str
    acg: ApplicationGraph
    traffic: str = TRAFFIC_ACG
    repetitions: int = 1
    """How many back-to-back batches of ACG traffic are injected."""
    aes_blocks: int = 1
    computation_cycles_per_phase: int = 4
    """Local-computation allowance between AES phases (AES traffic only)."""
    packet_size_bits: int = 32
    description: str = ""
    params: dict[str, object] = field(default_factory=dict)
    """Generator parameters (sizes, densities, **explicit seeds**): part of
    the content fingerprint so distinct instances never share a cache key."""
    settings_overrides: dict[str, object] = field(default_factory=dict)
    """Per-scenario settings pins applied on top of every grid cell (e.g.
    the AES scenario pins ``library='aes'`` and full-duplex links)."""

    def __post_init__(self) -> None:
        TRAFFIC_MODES.get(self.traffic)  # raises UnknownPluginError when unknown
        if self.repetitions < 1 or self.aes_blocks < 1:
            raise ConfigurationError("repetitions and aes_blocks must be at least 1")

    def effective_settings(self, settings: EvaluationSettings) -> EvaluationSettings:
        """The grid cell's settings with this scenario's pins applied."""
        if not self.settings_overrides:
            return settings
        return settings.merged(self.settings_overrides)

    def with_simulation_cap(self, cap: int) -> "Scenario":
        """A copy whose simulation window is capped at ``cap`` iterations.

        The short-window variant the guided searcher's low rungs evaluate:
        ``repetitions`` and ``aes_blocks`` are clamped to ``cap`` while the
        workload graph, traffic mode and per-iteration rates stay identical.
        The traffic knobs are part of :meth:`fingerprint`, so the capped
        variant keys separately in every cache — a short-window result can
        never satisfy a full-window lookup.  Returns ``self`` unchanged when
        the cap is not binding (identical content = identical cache key, by
        design: the "low-fidelity" evaluation would be bit-identical).
        """
        if cap < 1:
            raise ConfigurationError("simulation cap must be at least 1")
        if self.repetitions <= cap and self.aes_blocks <= cap:
            return self
        return replace(
            self,
            repetitions=min(self.repetitions, cap),
            aes_blocks=min(self.aes_blocks, cap),
            params=dict(self.params),
            settings_overrides=dict(self.settings_overrides),
        )

    def fingerprint(self) -> dict[str, object]:
        """Content identity for cache keys: workload + traffic, not labels."""
        # the display name is deliberately absent: renaming a scenario must
        # not invalidate cached results for a content-identical workload
        # (the runner re-labels shared records with each cell's own name)
        return {
            "traffic": self.traffic,
            "repetitions": self.repetitions,
            "aes_blocks": self.aes_blocks,
            "computation_cycles_per_phase": self.computation_cycles_per_phase,
            "packet_size_bits": self.packet_size_bits,
            "params": {key: self.params[key] for key in sorted(self.params)},
            **self.structural_fingerprint(),
        }

    def structural_fingerprint(self) -> dict[str, object]:
        """The workload-graph part of :meth:`fingerprint`.

        Content identity of the communication graph alone — nodes, weighted
        edges and floorplan positions.  This is all the decompose and
        synthesize/route stages read; traffic-stage knobs (repetitions, AES
        block counts, packet sizes) are deliberately absent so cells that
        differ only in how the workload is *driven* share one decomposition.
        """
        edges = sorted(
            (
                str(source),
                str(target),
                float(self.acg.volume(source, target)),
                float(self.acg.bandwidth(source, target)),
            )
            for source, target in self.acg.edges()
        )
        positions = {
            str(node): (self.acg.position(node).x, self.acg.position(node).y)
            for node in self.acg.nodes()
            if self.acg.has_position(node)
        }
        return {
            "nodes": sorted(str(node) for node in self.acg.nodes()),
            "edges": edges,
            "positions": {key: positions[key] for key in sorted(positions)},
        }


# ----------------------------------------------------------------------
# measurement substrate (shared with the prototype comparison)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArchitectureMetrics:
    """Measured figures of merit for one architecture under one workload.

    ``num_blocks`` counts AES blocks for phase traffic and injected ACG
    batches otherwise, so ``cycles_per_block`` reads as cycles per
    iteration for generic workloads.
    """

    name: str
    num_blocks: int
    total_cycles: int
    cycles_per_block: float
    throughput_mbps: float
    average_latency_cycles: float
    average_hops: float
    average_power_mw: float
    energy_per_block_uj: float
    num_physical_links: int
    max_channel_utilization: float
    engine: str = ENGINE_EVENT
    """Which simulator engine produced these figures (provenance only —
    both engines yield identical metrics by contract)."""
    cycles_stepped: int = 0
    """Cycles the engine actually executed; ``total_cycles`` minus this is
    the dead time the event engine skipped."""

    def as_dict(self) -> dict[str, object]:
        """Reporting-row view of the measured figures of merit."""
        return {
            "architecture": self.name,
            "cycles_per_block": self.cycles_per_block,
            "throughput_mbps": self.throughput_mbps,
            "avg_latency_cycles": self.average_latency_cycles,
            "avg_hops": self.average_hops,
            "avg_power_mw": self.average_power_mw,
            "energy_per_block_uj": self.energy_per_block_uj,
            "physical_links": self.num_physical_links,
        }


def _metrics_from_state(
    name: str,
    topology: Topology,
    technology: Technology,
    statistics,
    energy,
    engine: str,
    cycles_stepped: int,
    iterations: int,
    aes_blocks: bool,
) -> ArchitectureMetrics:
    """Fold one finished simulation state into :class:`ArchitectureMetrics`.

    Shared by the per-cell simulators and the batched simulate stage so
    solo and batched evaluations compute every figure with the exact same
    float operations — bit-identical metrics either way.  ``aes_blocks``
    selects the paper's block-throughput formula over the delivered-bits
    throughput used for generic ACG traffic.
    """
    total_cycles = statistics.total_cycles
    cycles_per_block = total_cycles / iterations
    if aes_blocks:
        throughput = throughput_mbps_from_cycles(
            AES_BLOCK_SIZE_BITS, cycles_per_block, technology.frequency_mhz
        )
    else:
        throughput = statistics.throughput_mbps(technology.frequency_mhz)
    return ArchitectureMetrics(
        name=name,
        num_blocks=iterations,
        total_cycles=total_cycles,
        cycles_per_block=cycles_per_block,
        throughput_mbps=throughput,
        average_latency_cycles=statistics.average_latency_cycles(),
        average_hops=statistics.average_hops(),
        average_power_mw=energy.average_power_mw(max(total_cycles, 1)),
        energy_per_block_uj=energy.total_energy_uj / iterations,
        num_physical_links=topology.num_physical_links,
        max_channel_utilization=statistics.max_channel_utilization(),
        engine=engine,
        cycles_stepped=cycles_stepped,
    )


def _session_probe(simulator: NoCSimulator) -> SimulatorProbe | None:
    """Attach a fresh probe when the active obs session asks for capture.

    Returns ``None`` (and leaves the simulator untouched) outside a
    probe-capturing :class:`~repro.obs.ObsSession`, so the default path
    costs one contextvar read.
    """
    if not get_session().capture_probes:
        return None
    probe = SimulatorProbe()
    simulator.attach_probe(probe)
    return probe


def _flush_probe(probe: SimulatorProbe | None, simulator: NoCSimulator, name: str) -> None:
    """Publish a probe's per-router/per-channel figures into session metrics."""
    if probe is None:
        return
    metrics = get_session().metrics
    if metrics is not None:
        probe.emit_metrics(metrics, simulator.statistics, architecture=name)


def simulate_aes_traffic(
    name: str,
    topology: Topology,
    routing: RoutingFunction,
    blocks: int,
    technology: Technology,
    simulator_config: SimulatorConfig,
    computation_cycles_per_phase: int = 4,
) -> ArchitectureMetrics:
    """Run the dependency-aware distributed-AES phases on one architecture."""
    if blocks < 1:
        raise ConfigurationError("the comparison needs at least one block")
    simulator = NoCSimulator(topology, routing, config=simulator_config, technology=technology)
    probe = _session_probe(simulator)
    aes = DistributedAES(FIPS197_KEY)
    plaintext = bytes(range(16))
    for block_index in range(blocks):
        block = bytes((byte + block_index) % 256 for byte in plaintext)
        trace = aes.encrypt_block(block)
        simulator.run_phases(
            trace.phases, computation_cycles_per_phase=computation_cycles_per_phase
        )
    _flush_probe(probe, simulator, name)
    return _metrics_from_state(
        name,
        topology,
        technology,
        simulator.statistics,
        simulator.energy,
        engine=simulator.config.engine,
        cycles_stepped=simulator.cycles_stepped,
        iterations=blocks,
        aes_blocks=True,
    )


def simulate_acg_traffic(
    name: str,
    topology: Topology,
    routing: RoutingFunction,
    acg: ApplicationGraph,
    technology: Technology,
    simulator_config: SimulatorConfig,
    repetitions: int = 1,
    packet_size_bits: int = 32,
) -> ArchitectureMetrics:
    """Inject the ACG's communication volumes as packet batches and drain.

    Each repetition injects every ACG edge's volume once and runs until the
    network drains, which models one iteration of the application.
    """
    if repetitions < 1:
        raise ConfigurationError("at least one traffic repetition is required")
    simulator = NoCSimulator(topology, routing, config=simulator_config, technology=technology)
    probe = _session_probe(simulator)
    for _ in range(repetitions):
        simulator.schedule_messages(acg_messages(acg, packet_size_bits=packet_size_bits))
        simulator.run_until_drained()
    _flush_probe(probe, simulator, name)
    return _metrics_from_state(
        name,
        topology,
        technology,
        simulator.statistics,
        simulator.energy,
        engine=simulator.config.engine,
        cycles_stepped=simulator.cycles_stepped,
        iterations=repetitions,
        aes_blocks=False,
    )


def build_baseline_fabric(
    acg: ApplicationGraph,
    family: str = "mesh",
    tile_pitch_mm: float = 2.0,
    flit_width_bits: int = 32,
) -> Topology:
    """The standard-fabric baseline of the named family for a scenario.

    Every ACG core becomes one fabric router; when the family needs more
    routers than the ACG has cores (a rectangular grid, an even spidergon
    ring) the spare slots are padded with traffic-less ``__pad*`` filler
    routers, so structured routing policies stay intact.  The mesh family
    uses the most-square grid that fits every core (16 cores -> 4x4,
    12 -> 3x4), exactly as the historical mesh baseline did.
    """
    nodes = list(acg.nodes())
    if not nodes:
        raise ConfigurationError("cannot build a fabric baseline for an empty ACG")
    spec = get_family(family)
    return spec.build(
        pad_node_ids(spec, nodes),
        tile_pitch_mm=tile_pitch_mm,
        flit_width_bits=flit_width_bits,
    )


def build_baseline_mesh(
    acg: ApplicationGraph, tile_pitch_mm: float = 2.0, flit_width_bits: int = 32
) -> MeshTopology:
    """The standard-mesh baseline (``build_baseline_fabric`` with ``mesh``)."""
    fabric = build_baseline_fabric(
        acg, family="mesh", tile_pitch_mm=tile_pitch_mm, flit_width_bits=flit_width_bits
    )
    assert isinstance(fabric, MeshTopology)  # the mesh family builds meshes
    return fabric


def baseline_route_stage(
    scenario: Scenario, settings: EvaluationSettings
) -> tuple[Topology, RoutingTable, DeadlockReport]:
    """Build + route the standard-fabric baseline for one cell.

    The counterpart of :func:`synthesize_stage` + :func:`route_stage` for
    ``architecture="mesh"`` cells: instantiate the settings' topology
    family, compile its routing policy into a flat next-hop table, and run
    the CDG deadlock analysis over the scenario's traffic pairs.  Raises
    :class:`~repro.exceptions.RoutingError` when the policy does not
    support the family — an explicit exploration result, not a crash.
    """
    settings = scenario.effective_settings(settings)
    fabric = build_baseline_fabric(
        scenario.acg,
        family=settings.topology,
        tile_pitch_mm=settings.mesh_tile_pitch_mm,
        flit_width_bits=settings.flit_width_bits,
    )
    # only the scenario's traffic pairs are ever simulated or deadlock-
    # gated, so the table is restricted to them: same routed decisions,
    # none of the all-pairs work over __pad*/__sw* infrastructure routers
    table = get_policy(settings.routing_policy).build(fabric, scenario.acg.edges())
    deadlock_report = analyze_deadlock(table, scenario.acg.edges())
    return fabric, table, deadlock_report


# ----------------------------------------------------------------------
# the pipeline, stage by stage
# ----------------------------------------------------------------------
def run_decomposition_search(
    scenario: Scenario, settings: EvaluationSettings
) -> DecompositionResult:
    """The uncached decompose stage: run the search on the scenario's ACG.

    This is the expensive part of a custom-architecture evaluation; callers
    that may share decompositions across cells go through
    :func:`decompose_stage` with a :class:`~repro.dse.cache.StageContext`
    instead of calling this directly.
    """
    settings = scenario.effective_settings(settings)
    return decompose(
        scenario.acg,
        settings.build_library(),
        cost_model=LinkCountCostModel(),
        config=settings.build_decomposition_config(),
    )


def decompose_stage(
    scenario: Scenario,
    settings: EvaluationSettings,
    context: "object | None" = None,
) -> tuple[DecompositionResult, str]:
    """Stage 1: cover the workload graph with library primitives.

    Returns ``(decomposition, provenance)`` where provenance is one of the
    :data:`~repro.dse.records.STAGE_COMPUTED` /
    :data:`~repro.dse.records.STAGE_REUSED_MEMORY` /
    :data:`~repro.dse.records.STAGE_REUSED_STORE` markers.  With a
    :class:`~repro.dse.cache.StageContext` the search runs at most once per
    decomposition sub-key; without one it always runs fresh.
    """
    if context is None:
        return run_decomposition_search(scenario, settings), STAGE_COMPUTED
    return context.decomposition_for(scenario, settings)


def synthesize_stage(
    scenario: Scenario,
    settings: EvaluationSettings,
    decomposition: DecompositionResult,
) -> Topology:
    """Stage 2: instantiate the chosen primitives as a customized topology."""
    settings = scenario.effective_settings(settings)
    synthesizer = TopologySynthesizer(options=settings.build_synthesis_options())
    return synthesizer.build_topology(scenario.acg, decomposition)


def route_stage(
    scenario: Scenario,
    settings: EvaluationSettings,
    decomposition: DecompositionResult,
    topology: Topology,
) -> SynthesizedArchitecture:
    """Stage 3: routing table + constraint and deadlock analysis.

    Packages the stage outputs as a
    :class:`~repro.core.synthesis.SynthesizedArchitecture`, exactly what
    :func:`repro.core.synthesis.synthesize_architecture` would build in one
    go — the split exists so the synthesize/route product can be memoized
    under the synthesis sub-key.
    """
    settings = scenario.effective_settings(settings)
    table = build_routing_table(
        decomposition, topology, fill_all_pairs=settings.fill_all_pairs_routing
    )
    constraint_report = ConstraintChecker(DesignConstraints()).check(
        topology, table, scenario.acg
    )
    deadlock_report = analyze_deadlock(table, scenario.acg.edges())
    return SynthesizedArchitecture(
        acg=scenario.acg,
        decomposition=decomposition,
        topology=topology,
        routing_table=table,
        constraint_report=constraint_report,
        deadlock_report=deadlock_report,
    )


def simulate_stage(
    scenario: Scenario,
    settings: EvaluationSettings,
    name: str,
    topology: Topology,
    routing: RoutingFunction,
) -> ArchitectureMetrics:
    """Stage 4: drive the cycle-level simulator with the scenario's traffic.

    Dispatches through the :data:`TRAFFIC_MODES` registry, so a scenario
    whose ``traffic`` names a plugin-registered mode simulates exactly like
    the built-in ACG-batch and AES-phase modes.
    """
    return get_traffic_mode(scenario.traffic).simulate(
        scenario, settings, name, topology, routing
    )


def _simulate_acg_mode(
    scenario: Scenario,
    settings: EvaluationSettings,
    name: str,
    topology: Topology,
    routing: RoutingFunction,
) -> ArchitectureMetrics:
    """The ``"acg"`` traffic mode: batched ACG volumes, drained per repetition."""
    return simulate_acg_traffic(
        name,
        topology,
        routing,
        scenario.acg,
        technology=settings.build_technology(),
        simulator_config=settings.build_simulator_config(),
        repetitions=scenario.repetitions,
        packet_size_bits=scenario.packet_size_bits,
    )


def _simulate_aes_mode(
    scenario: Scenario,
    settings: EvaluationSettings,
    name: str,
    topology: Topology,
    routing: RoutingFunction,
) -> ArchitectureMetrics:
    """The ``"aes_phases"`` traffic mode: dependency-aware AES phase traces."""
    return simulate_aes_traffic(
        name,
        topology,
        routing,
        blocks=scenario.aes_blocks,
        technology=settings.build_technology(),
        simulator_config=settings.build_simulator_config(),
        computation_cycles_per_phase=scenario.computation_cycles_per_phase,
    )


register_traffic_mode(
    TrafficModeSpec(
        name=TRAFFIC_ACG,
        description="inject every ACG edge's volume per repetition and drain",
        simulate=_simulate_acg_mode,
    )
)

register_traffic_mode(
    TrafficModeSpec(
        name=TRAFFIC_AES_PHASES,
        description="dependency-aware distributed-AES phase trace",
        simulate=_simulate_aes_mode,
    )
)


def score_stage(metrics: ArchitectureMetrics, topology: Topology) -> dict[str, float]:
    """Stage 5: flatten measured metrics into the record's figures of merit.

    ``sim_cycles_stepped`` is engine provenance: together with
    ``total_cycles`` it says how much dead time the configured simulator
    engine skipped for this cell (the engine name itself sits in the
    record's ``settings["engine"]``).

    Every function in the :data:`SCORES` registry contributes one extra
    ``{name: value}`` column on top of the built-in figures (a registered
    score that reuses a built-in key deliberately shadows it).
    """
    scores = {
        "sim_cycles_stepped": float(metrics.cycles_stepped),
        "total_cycles": float(metrics.total_cycles),
        "cycles_per_iteration": metrics.cycles_per_block,
        "avg_latency_cycles": metrics.average_latency_cycles,
        "avg_hops": metrics.average_hops,
        "throughput_mbps": metrics.throughput_mbps,
        "avg_power_mw": metrics.average_power_mw,
        "energy_uj": metrics.energy_per_block_uj * metrics.num_blocks,
        "energy_per_iteration_uj": metrics.energy_per_block_uj,
        "physical_links": float(metrics.num_physical_links),
        "max_channel_utilization": metrics.max_channel_utilization,
        "total_wire_mm": topology.total_wire_length_mm(),
    }
    for score_name in SCORES.names():
        scores[score_name] = float(SCORES.get(score_name)(metrics, topology))
    return scores


def _apply_deadlock_gate(
    record: EvaluationRecord,
    settings: EvaluationSettings,
    deadlock_report: DeadlockReport | None,
) -> None:
    """The route-stage CDG gate: record provenance, optionally fail the cell.

    Every routed cell gets ``deadlock_free`` plus a ``vc_channels_needed``
    metric (how many channels would need an extra virtual channel to break
    every dependency cycle).  With ``require_deadlock_free`` a cyclic CDG
    raises :class:`~repro.exceptions.DeadlockError`, which
    :func:`evaluate` records as a routing failure — nothing is ever
    silently simulated on a deadlocky table without provenance saying so.
    """
    if deadlock_report is None:
        return
    record.deadlock_free = deadlock_report.is_deadlock_free
    record.metrics["vc_channels_needed"] = float(
        len(deadlock_report.channels_needing_virtual_channels)
    )
    if settings.require_deadlock_free and not deadlock_report.is_deadlock_free:
        raise DeadlockError(list(deadlock_report.cycle))


@contextmanager
def _stage(record: EvaluationRecord, stage: str) -> Iterator[None]:
    """Time one pipeline stage into ``record.stage_seconds`` and span it.

    Timing lands in the record even when the stage raises (the pipeline's
    failure statuses), so a failed cell still reports where its time went;
    the span is named ``dse.<stage>`` so trace summaries can break a
    sweep's wall clock down by stage.
    """
    start = time.perf_counter()
    with get_tracer().span(f"dse.{stage}"):
        try:
            yield
        finally:
            record.stage_seconds[stage] = time.perf_counter() - start


def _record_decomposition(
    record: EvaluationRecord, decomposition: DecompositionResult
) -> None:
    """Copy the decompose stage's outputs into the record."""
    record.search_statistics = decomposition.statistics.as_dict()
    record.metrics.update(
        {
            "decomposition_cost": decomposition.total_cost,
            "num_matchings": float(decomposition.num_matchings),
            "remainder_edges": float(decomposition.remainder.num_edges),
            "covered_fraction": decomposition.covered_edge_fraction(),
        }
    )


def _synthesize_custom(
    scenario: Scenario,
    settings: EvaluationSettings,
    record: EvaluationRecord,
    context: "object | None",
) -> SynthesizedArchitecture:
    """Chain decompose -> synthesize -> route for one custom-architecture cell."""
    with _stage(record, "decompose"):
        decomposition, provenance = decompose_stage(scenario, settings, context)
    record.stage_reuse["decompose"] = provenance
    _record_decomposition(record, decomposition)
    if context is not None:
        # the memoized synthesize+route product; one fused stage timing
        with _stage(record, "synthesize"):
            architecture, provenance = context.architecture_for(
                scenario, settings, decomposition
            )
    else:
        with _stage(record, "synthesize"):
            topology = synthesize_stage(scenario, settings, decomposition)
        with _stage(record, "route"):
            architecture = route_stage(scenario, settings, decomposition, topology)
        provenance = STAGE_COMPUTED
    record.stage_reuse["synthesize"] = provenance
    if architecture.constraint_report is not None:
        record.constraints_satisfied = architecture.constraint_report.satisfied
    _apply_deadlock_gate(record, settings, architecture.deadlock_report)
    return architecture


def evaluate(
    scenario: Scenario,
    settings: EvaluationSettings,
    cache_key: str = "",
    config_label: str = "",
    axes: dict[str, object] | None = None,
    context: "object | None" = None,
) -> EvaluationRecord:
    """Run the full pipeline for one (scenario, configuration) cell.

    Never raises for workload/architecture failures: decomposition,
    synthesis, routing and simulation errors all come back as record
    statuses.  Only caller bugs (e.g. an unknown architecture string in a
    hand-built settings object) surface as exceptions.

    ``context`` is an optional :class:`~repro.dse.cache.StageContext`; when
    given, the decompose and synthesize/route stages are reused across every
    cell sharing the respective stage sub-key instead of being recomputed.
    """
    settings = scenario.effective_settings(settings)
    record = EvaluationRecord(
        scenario=scenario.name,
        architecture=settings.architecture,
        config_label=config_label or settings.architecture,
        cache_key=cache_key,
        axes=dict(axes or {}),
        settings=settings.as_dict(),
    )
    start = time.perf_counter()
    with get_tracer().span(
        "dse.evaluate",
        scenario=scenario.name,
        architecture=settings.architecture,
        config=record.config_label,
    ) as span:
        try:
            if settings.architecture == "mesh":
                with _stage(record, "route"):
                    fabric, table, deadlock_report = baseline_route_stage(scenario, settings)
                    _apply_deadlock_gate(record, settings, deadlock_report)
                topology: Topology = fabric
                routing: RoutingFunction = table.frozen_next_hop()
                name = fabric.name
            else:
                architecture = _synthesize_custom(scenario, settings, record, context)
                topology = architecture.topology
                routing = architecture.routing_table.frozen_next_hop()
                name = architecture.topology.name
            with _stage(record, "simulate"):
                metrics = simulate_stage(scenario, settings, name, topology, routing)
            with _stage(record, "score"):
                record.metrics.update(score_stage(metrics, topology))
        except DecompositionError as error:
            record.status = STATUS_DECOMPOSITION_FAILED
            record.error = str(error)
        except SynthesisError as error:
            record.status = STATUS_SYNTHESIS_FAILED
            record.error = str(error)
        except RoutingError as error:
            record.status = STATUS_ROUTING_FAILED
            record.error = str(error)
        except SimulationError as error:
            record.status = STATUS_SIMULATION_FAILED
            record.error = str(error)
        # any other ReproError (ConfigurationError, WorkloadError, unknown
        # technology, ...) is a caller bug, not an exploration outcome: let it
        # raise rather than poison the result cache with mislabeled failures
        span.annotate(status=record.status)
    record.runtime_seconds = time.perf_counter() - start
    return record


# ----------------------------------------------------------------------
# batch-aware cell evaluation (the runner's simulate-stage batching)
# ----------------------------------------------------------------------
def axis_label(axes: Mapping[str, object]) -> str:
    """Compact human-readable cell label: ``arch=mesh,delay=2``."""
    if not axes:
        return "base"
    return ",".join(f"{key}={value}" for key, value in axes.items())


#: cells per batch-simulator call; a stage group larger than this is
#: chunked, so the last chunk may be ragged (fewer cells than the cap)
MAX_BATCH_CELLS = 16

#: exception type -> record status, in match order (DeadlockError is a
#: RoutingError; anything unlisted is a caller bug and keeps raising)
_FAILURE_STATUSES: tuple[tuple[type, str], ...] = (
    (DecompositionError, STATUS_DECOMPOSITION_FAILED),
    (SynthesisError, STATUS_SYNTHESIS_FAILED),
    (RoutingError, STATUS_ROUTING_FAILED),
    (SimulationError, STATUS_SIMULATION_FAILED),
)


def _assign_failure(record: EvaluationRecord, error: Exception) -> None:
    """Map a pipeline exception onto the record statuses (or re-raise)."""
    for exception_type, status in _FAILURE_STATUSES:
        if isinstance(error, exception_type):
            record.status = status
            record.error = str(error)
            return
    raise error


@dataclass
class _BatchCell:
    """One batch-eligible cell between its prep and simulate phases."""

    index: int
    scenario: Scenario
    settings: EvaluationSettings
    record: EvaluationRecord
    prep_seconds: float
    done: bool = False
    topology: Topology | None = None
    routing: RoutingFunction | None = None
    name: str = ""
    group_key: object = None


def _batch_group_key(topology: Topology, table: RoutingTable) -> object:
    """Batching compatibility: same fabric structure, same routed decisions.

    Cells may share one :class:`~repro.noc.batch.BatchSimulator` exactly
    when their topologies have identical signatures (structure, channel
    lengths, positions) and their routing tables resolve identically —
    the table version plus the canonical next-hop entries.  Everything
    else (buffer capacity, pipeline delay, flit width, technology, even
    the traffic program) varies per cell inside the batch.
    """
    signature = json.dumps(topology.signature(), sort_keys=True, default=repr)
    entries = tuple(
        sorted((repr(key), repr(hop)) for key, hop in table.entries().items())
    )
    return (signature, table.version, entries)


def _prepare_batch_cell(
    index: int,
    scenario: Scenario,
    settings: EvaluationSettings,
    axes: dict[str, object] | None,
    key: str,
    context: "object | None",
) -> _BatchCell:
    """Run one batch-eligible cell's pipeline up to (not including) simulate.

    Mirrors :func:`evaluate` stage for stage — same stage timings, stage
    reuse markers, deadlock gate and failure statuses — and returns the
    routed fabric so compatible cells can be grouped into one simulator.
    """
    settings = scenario.effective_settings(settings)
    record = EvaluationRecord(
        scenario=scenario.name,
        architecture=settings.architecture,
        config_label=axis_label(axes or {}),
        cache_key=key,
        axes=dict(axes or {}),
        settings=settings.as_dict(),
    )
    start = time.perf_counter()
    try:
        if settings.architecture == "mesh":
            with _stage(record, "route"):
                fabric, table, deadlock_report = baseline_route_stage(scenario, settings)
                _apply_deadlock_gate(record, settings, deadlock_report)
            topology: Topology = fabric
            name = fabric.name
        else:
            architecture = _synthesize_custom(scenario, settings, record, context)
            topology = architecture.topology
            table = architecture.routing_table
            name = architecture.topology.name
        routing = table.frozen_next_hop()
    except (DecompositionError, SynthesisError, RoutingError, SimulationError) as error:
        _assign_failure(record, error)
        record.runtime_seconds = time.perf_counter() - start
        return _BatchCell(
            index=index,
            scenario=scenario,
            settings=settings,
            record=record,
            prep_seconds=record.runtime_seconds,
            done=True,
        )
    return _BatchCell(
        index=index,
        scenario=scenario,
        settings=settings,
        record=record,
        prep_seconds=time.perf_counter() - start,
        topology=topology,
        routing=routing,
        name=name,
        group_key=_batch_group_key(topology, table),
    )


def _batch_ops(
    scenario: Scenario, ops_cache: dict[int, list[object]]
) -> list[object]:
    """The scenario's traffic as a batch op program (cached per scenario).

    Replays exactly what the per-cell traffic modes do: per ACG repetition
    one schedule + drain, or per AES phase one schedule + drain + the
    computation allowance.  The program (including the Python-AES phase
    traces) is shared by every cell driving the same scenario in a batch.
    """
    ops = ops_cache.get(id(scenario))
    if ops is not None:
        return ops
    ops = []
    if scenario.traffic == TRAFFIC_ACG:
        messages = tuple(
            acg_messages(scenario.acg, packet_size_bits=scenario.packet_size_bits)
        )
        for _ in range(scenario.repetitions):
            ops.append(ScheduleOp(messages))
            ops.append(DrainOp(None))
    else:  # TRAFFIC_AES_PHASES (eligibility is checked by the caller)
        aes = DistributedAES(FIPS197_KEY)
        plaintext = bytes(range(16))
        for block_index in range(scenario.aes_blocks):
            block = bytes((byte + block_index) % 256 for byte in plaintext)
            trace = aes.encrypt_block(block)
            for phase in trace.phases:
                ops.append(ScheduleOp(tuple(phase)))
                ops.append(DrainOp(None))
                if scenario.computation_cycles_per_phase:
                    ops.append(RunOp(scenario.computation_cycles_per_phase))
    ops_cache[id(scenario)] = ops
    return ops


def _simulate_batch_chunk(
    chunk: list[_BatchCell], ops_cache: dict[int, list[object]]
) -> None:
    """Simulate one group chunk in a single multi-cell batch call.

    Wall time is measured once for the whole call and attributed evenly:
    each record gets ``stage_seconds["simulate"] = wall / n`` plus a
    ``stage_reuse["simulate"] = "batch:n"`` provenance marker.  Per-cell
    simulation failures (drain budgets, routing loops) land on their own
    record; a batch-level failure (numpy unavailable, an invalid config)
    fails every cell of the chunk with the same message.
    """
    first = chunk[0]
    start = time.perf_counter()
    share = 0.0
    probes: list[SimulatorProbe | None] = [None] * len(chunk)
    capture = get_session().capture_probes
    try:
        core = BatchSimulator(
            first.topology,
            first.routing,
            [cell.settings.build_simulator_config() for cell in chunk],
            technologies=[cell.settings.build_technology() for cell in chunk],
        )
        for position, cell in enumerate(chunk):
            if capture:
                probes[position] = core.attach_probe(position, SimulatorProbe())
            for op in _batch_ops(cell.scenario, ops_cache):
                core.enqueue(position, op)
        with get_tracer().span("dse.simulate", cells=len(chunk), engine=ENGINE_BATCH):
            core.execute()
    except SimulationError as error:
        share = (time.perf_counter() - start) / len(chunk)
        for cell in chunk:
            _assign_failure(cell.record, error)
            cell.record.stage_seconds["simulate"] = share
            cell.record.runtime_seconds = cell.prep_seconds + share
        return
    share = (time.perf_counter() - start) / len(chunk)
    for position, cell in enumerate(chunk):
        record = cell.record
        record.stage_seconds["simulate"] = share
        record.stage_reuse["simulate"] = f"batch:{len(chunk)}"
        error = core.error(position)
        if error is not None:
            _assign_failure(record, error)
            record.runtime_seconds = cell.prep_seconds + share
            continue
        metrics = _metrics_from_state(
            cell.name,
            cell.topology,
            cell.settings.build_technology(),
            core.statistics(position),
            core.energy(position),
            engine=ENGINE_BATCH,
            cycles_stepped=core.cycles_stepped(position),
            iterations=(
                cell.scenario.aes_blocks
                if cell.scenario.traffic == TRAFFIC_AES_PHASES
                else cell.scenario.repetitions
            ),
            aes_blocks=cell.scenario.traffic == TRAFFIC_AES_PHASES,
        )
        probe = probes[position]
        if probe is not None:
            session_metrics = get_session().metrics
            if session_metrics is not None:
                probe.emit_metrics(
                    session_metrics, core.statistics(position), architecture=cell.name
                )
        with _stage(record, "score"):
            record.metrics.update(score_stage(metrics, cell.topology))
        record.runtime_seconds = (
            cell.prep_seconds + share + record.stage_seconds.get("score", 0.0)
        )


def evaluate_cells(
    cell_payloads: Sequence[tuple[Scenario, EvaluationSettings, dict[str, object], str]],
    context: "object | None" = None,
) -> list[EvaluationRecord]:
    """Evaluate a sequence of sweep cells, batching compatible batch cells.

    The drop-in plural of :func:`evaluate`: records come back in payload
    order with identical content.  Cells whose effective engine is
    ``"batch"`` (and whose traffic mode is one of the built-ins the op
    programs cover) are prepared up to the simulate stage, grouped by
    :func:`_batch_group_key` — same topology signature, same routing-table
    version and entries — chunked to :data:`MAX_BATCH_CELLS`, and simulated
    in one :class:`~repro.noc.batch.BatchSimulator` call per chunk.  Every
    other cell takes the plain :func:`evaluate` path unchanged.

    Batching is provenance-visible but result-invariant: grouping and order
    never change any record metric (the batch engine advances every cell on
    its own cycle counter), only ``stage_seconds["simulate"]`` (the evenly
    attributed share of the batch wall time) and the
    ``stage_reuse["simulate"] = "batch:n"`` marker.
    """
    records: list[EvaluationRecord | None] = [None] * len(cell_payloads)
    batchable: list[_BatchCell] = []
    for index, (scenario, settings, axes, key) in enumerate(cell_payloads):
        effective = scenario.effective_settings(settings)
        if effective.engine == ENGINE_BATCH and scenario.traffic in (
            TRAFFIC_ACG,
            TRAFFIC_AES_PHASES,
        ):
            prepared = _prepare_batch_cell(index, scenario, settings, axes, key, context)
            if prepared.done:
                records[index] = prepared.record
            else:
                batchable.append(prepared)
        else:
            records[index] = evaluate(
                scenario,
                settings,
                cache_key=key,
                config_label=axis_label(axes),
                axes=axes,
                context=context,
            )
    groups: dict[object, list[_BatchCell]] = {}
    for prepared in batchable:
        groups.setdefault(prepared.group_key, []).append(prepared)
    ops_cache: dict[int, list[object]] = {}
    for group in groups.values():
        for offset in range(0, len(group), MAX_BATCH_CELLS):
            _simulate_batch_chunk(group[offset : offset + MAX_BATCH_CELLS], ops_cache)
    for prepared in batchable:
        records[prepared.index] = prepared.record
    return records
