"""Batch runner: grid expansion, process-pool fan-out and cache reuse.

A *grid* is a base :class:`EvaluationSettings` plus named axes (field ->
list of values); its cartesian product crossed with a scenario list
yields the sweep cells.  The runner resolves every cell against the
on-disk :class:`~repro.dse.cache.ResultCache` first, groups the misses
by decomposition sub-key, and fans *groups* — not raw cells — across
the process pool (module-level worker function so payloads pickle
cleanly, as in the Figure-4 :mod:`~repro.experiments.runtime_sweep`
machinery).  Group-granular fan-out is what keeps the stage cache
effective under parallelism: all cells sharing a decomposition land in
one worker, whose :class:`~repro.dse.cache.StageContext` runs the
search exactly once per group.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.dse.cache import (
    ResultCache,
    StageArtifactStore,
    StageContext,
    cache_key,
    decomposition_stage_key,
)
from repro.dse.pipeline import (
    EvaluationSettings,
    Scenario,
    axis_label,
    evaluate_cells,
)
from repro.dse.records import STAGE_COMPUTED, EvaluationRecord
from repro.exceptions import ConfigurationError
from repro.obs import ObsSession, get_session, use_session

__all__ = [
    "CellPayload",
    "SweepCell",
    "SweepResult",
    "axis_label",
    "expand_grid",
    "plan_sweep",
    "run_cells",
    "run_sweep",
]


def expand_grid(
    base: EvaluationSettings | None = None,
    axes: Mapping[str, Sequence[object]] | None = None,
) -> list[tuple[dict[str, object], EvaluationSettings]]:
    """Cartesian product of the axes over the base settings.

    Returns ``(axis_values, settings)`` pairs; with no axes the base
    settings are the single cell.  Axis names must be settings fields.
    """
    base = base or EvaluationSettings()
    axes = dict(axes or {})
    for name, values in axes.items():
        if not values:
            raise ConfigurationError(f"axis {name!r} has no values")
    if not axes:
        return [({}, base)]
    names = list(axes)
    cells = []
    for combination in itertools.product(*(axes[name] for name in names)):
        axis_values = dict(zip(names, combination))
        cells.append((axis_values, base.merged(axis_values)))
    return cells


@dataclass(frozen=True)
class SweepCell:
    """One (scenario, configuration) evaluation unit of a sweep."""

    scenario: Scenario
    settings: EvaluationSettings
    axes: dict[str, object]
    key: str
    stage_group: str = ""
    """Decomposition sub-key for custom-architecture cells; cells sharing it
    reuse one decomposition search and are scheduled into one worker.  Mesh
    cells (no decomposition) each form their own single-cell group."""

    @property
    def label(self) -> str:
        """Compact human-readable axis label of this cell."""
        return axis_label(self.axes)


def _stage_group(scenario: Scenario, settings: EvaluationSettings, key: str) -> str:
    effective = scenario.effective_settings(settings)
    if effective.architecture == "custom":
        return decomposition_stage_key(scenario, settings)
    return f"cell:{key}"


def plan_sweep(
    scenarios: Sequence[Scenario],
    base: EvaluationSettings | None = None,
    axes: Mapping[str, Sequence[object]] | None = None,
) -> list[SweepCell]:
    """All cells of scenarios x grid, each with its content-hash key."""
    if not scenarios:
        raise ConfigurationError("a sweep needs at least one scenario")
    cells: list[SweepCell] = []
    for scenario in scenarios:
        for axis_values, settings in expand_grid(base, axes):
            key = cache_key(scenario, settings)
            cells.append(
                SweepCell(
                    scenario=scenario,
                    settings=settings,
                    axes=axis_values,
                    key=key,
                    stage_group=_stage_group(scenario, settings, key),
                )
            )
    return cells


@dataclass
class SweepResult:
    """Records of one sweep plus cache bookkeeping.

    ``cache_hits``/``cache_misses`` count *cells* against the on-disk cache;
    ``num_evaluations`` counts the fresh pipeline runs actually executed,
    which can be lower than ``cache_misses`` when per-scenario pins or
    canonicalization collapse several cells onto one content key.  The
    ``decomposition_*``/``synthesis_*`` counters track *stage* reuse among
    the fresh evaluations: a simulator-axis sweep over N values should show
    one search and N-1 reuses per scenario.
    """

    records: list[EvaluationRecord] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    num_evaluations: int = 0
    decomposition_searches: int = 0
    """Fresh decomposition searches actually run."""
    decomposition_reuses: int = 0
    """Evaluated cells whose decompose stage was served from the stage cache
    (in-memory memo or on-disk artifact store)."""
    synthesis_builds: int = 0
    """Fresh synthesize/route stage executions."""
    synthesis_reuses: int = 0
    """Evaluated cells whose synthesized topology + routing were reused."""

    @property
    def num_cells(self) -> int:
        """Number of planned cells (cached and evaluated alike)."""
        return len(self.records)

    @property
    def cache_hit_fraction(self) -> float:
        """Fraction of cells answered by the on-disk result cache."""
        if self.num_cells == 0:
            return 0.0
        return self.cache_hits / self.num_cells

    def succeeded(self) -> list[EvaluationRecord]:
        """The records whose full pipeline completed."""
        return [record for record in self.records if record.succeeded]

    def failed(self) -> list[EvaluationRecord]:
        """The records that failed at some pipeline stage."""
        return [record for record in self.records if not record.succeeded]

    def count_stage_reuse(self, records: Sequence[EvaluationRecord]) -> None:
        """Accumulate the stage counters from freshly evaluated records."""
        for record in records:
            decompose = record.stage_reuse.get("decompose")
            if decompose == STAGE_COMPUTED:
                self.decomposition_searches += 1
            elif decompose is not None:
                self.decomposition_reuses += 1
            synthesize = record.stage_reuse.get("synthesize")
            if synthesize == STAGE_COMPUTED:
                self.synthesis_builds += 1
            elif synthesize is not None:
                self.synthesis_reuses += 1

    def describe(self) -> str:
        """Multi-line human-readable summary of cache and stage reuse."""
        shared = self.cache_misses - self.num_evaluations
        sharing = f" ({shared} duplicate cells shared an evaluation)" if shared else ""
        lines = [
            f"{self.num_cells} cells: {self.cache_hits} cached, "
            f"{self.num_evaluations} evaluated "
            f"({100.0 * self.cache_hit_fraction:.0f}% cache hits){sharing}; "
            f"{len(self.failed())} failures"
        ]
        if self.decomposition_searches or self.decomposition_reuses:
            lines.append(
                f"stage reuse: {self.decomposition_searches} decomposition "
                f"search(es) shared by {self.decomposition_reuses} further cell(s); "
                f"{self.synthesis_builds} topology build(s), "
                f"{self.synthesis_reuses} reused"
            )
        return "\n".join(lines)


#: the picklable per-cell payload shipped to worker processes
CellPayload = tuple[Scenario, EvaluationSettings, dict[str, object], str]


def _evaluate_cells(
    cell_payloads: Sequence[CellPayload], context: StageContext
) -> list[EvaluationRecord]:
    """Evaluate cells in order under one stage context (shared by both the
    serial path and the process-pool workers).  Delegates to the pipeline's
    :func:`~repro.dse.pipeline.evaluate_cells`, which additionally batches
    compatible ``engine="batch"`` cells into shared simulator calls."""
    return evaluate_cells(cell_payloads, context)


#: spans + metric events one traced worker ships back to the coordinator
GroupEvents = dict[str, list[dict[str, object]]]


def _evaluate_group(
    payload: tuple[list[CellPayload], str | None, bool],
) -> tuple[list[EvaluationRecord], GroupEvents]:
    """Evaluate one stage group (module-level so it pickles into workers).

    All cells of the group share a decomposition sub-key, so evaluating them
    in one process under one :class:`StageContext` runs the search once; the
    optional artifact directory extends the reuse across groups and runs.

    Returns ``(records, events)``: when the sweep is traced, ``events``
    carries the worker's serialized span and metric event dicts (plain
    JSON-able payloads, so they pickle back across the pool boundary); the
    coordinator re-parents the spans under its own sweep span via
    :meth:`~repro.obs.Tracer.adopt` and merges the metric events into the
    session registry via :meth:`~repro.obs.MetricsRegistry.ingest`.
    """
    cell_payloads, artifact_directory, traced = payload
    store = StageArtifactStore(artifact_directory) if artifact_directory else None
    context = StageContext(store)
    if not traced:
        return _evaluate_cells(cell_payloads, context), {"spans": [], "metrics": []}
    session = ObsSession.enabled()
    with use_session(session):
        with session.tracer.span("dse.group", cells=len(cell_payloads)):
            records = _evaluate_cells(cell_payloads, context)
    assert session.metrics is not None  # ObsSession.enabled() always builds one
    return records, {
        "spans": session.tracer.export_events(),
        "metrics": session.metrics.snapshot_events(),
    }


def run_sweep(
    scenarios: Sequence[Scenario],
    base: EvaluationSettings | None = None,
    axes: Mapping[str, Sequence[object]] | None = None,
    cache: ResultCache | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
    artifacts: StageArtifactStore | str | Path | None = None,
) -> SweepResult:
    """Evaluate every (scenario, grid cell), reusing cached results.

    Records come back in plan order (scenario-major, then grid order)
    regardless of caching or parallelism, so serial and parallel sweeps are
    interchangeable.  ``artifacts`` optionally persists decomposition-stage
    artifacts on disk so stage reuse extends across runs (and across worker
    processes); without it, reuse is in-memory within this run only.
    """
    return run_cells(
        plan_sweep(scenarios, base, axes),
        cache=cache,
        parallel=parallel,
        max_workers=max_workers,
        artifacts=artifacts,
    )


def run_cells(
    cells: Sequence[SweepCell],
    *,
    cache: ResultCache | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
    artifacts: StageArtifactStore | str | Path | None = None,
) -> SweepResult:
    """Evaluate an explicit list of planned cells, reusing cached results.

    The engine under both :func:`run_sweep` (which plans the full grid) and
    the guided searcher (which plans rung-variant subsets of a grid): cache
    resolution, duplicate-key sharing, stage-group fan-out and plan-order
    record labeling all behave identically for any caller-supplied cell list.
    """
    if artifacts is not None and not isinstance(artifacts, StageArtifactStore):
        artifacts = StageArtifactStore(artifacts)
    session = get_session()
    with session.tracer.span("dse.sweep") as sweep_span:
        result = _run_cells_traced(
            cells, cache, parallel, max_workers, artifacts, sweep_span
        )
        if session.tracer.enabled:
            sweep_span.annotate(
                cells=result.num_cells,
                cache_hits=result.cache_hits,
                evaluated=result.num_evaluations,
            )
    return result


def _run_cells_traced(
    cells: Sequence[SweepCell],
    cache: ResultCache | None,
    parallel: bool,
    max_workers: int | None,
    artifacts: StageArtifactStore | None,
    sweep_span,
) -> SweepResult:
    """The body of :func:`run_cells`, running inside its sweep span."""
    session = get_session()
    result = SweepResult()
    fresh: list[SweepCell] = []
    slots: dict[str, EvaluationRecord | None] = {}
    for cell in cells:
        if cell.key in slots:
            if slots[cell.key] is None:
                result.cache_misses += 1  # shares the pending evaluation
            else:
                result.cache_hits += 1
            continue  # duplicate cell (per-scenario pins collapsed an axis)
        slots[cell.key] = cache.get(cell.key) if cache is not None else None
        if slots[cell.key] is None:
            result.cache_misses += 1
            fresh.append(cell)
        else:
            result.cache_hits += 1
    result.num_evaluations = len(fresh)

    groups: dict[str, list[SweepCell]] = {}
    for cell in fresh:
        groups.setdefault(cell.stage_group, []).append(cell)
    artifact_directory = str(artifacts.directory) if artifacts is not None else None
    payloads = [
        (
            [(cell.scenario, cell.settings, cell.axes, cell.key) for cell in group],
            artifact_directory,
            session.active,
        )
        for group in groups.values()
    ]
    if parallel and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            outcomes = list(pool.map(_evaluate_group, payloads))
        evaluated_groups = [records for records, _ in outcomes]
        # reattach each worker's span tree under this sweep's span and fold
        # the worker metric snapshots into the coordinator's registry
        for _, events in outcomes:
            session.tracer.adopt(events["spans"], parent_id=sweep_span.span_id)
            if session.metrics is not None:
                session.metrics.ingest(events["metrics"])
    else:
        # serial: one context shared across all groups maximizes reuse; the
        # coordinator's own session stays active, so spans and metrics land
        # directly without any adoption step.  Groups are flattened into one
        # evaluate_cells call (group-major order preserved) so batch-engine
        # cells may share simulator batches across stage groups, too.
        context = StageContext(artifacts)
        flattened = [
            payload for cell_payloads, _, _ in payloads for payload in cell_payloads
        ]
        evaluated_groups = [_evaluate_cells(flattened, context)]

    evaluated = [record for group in evaluated_groups for record in group]
    result.count_stage_reuse(evaluated)
    for record in evaluated:
        slots[record.cache_key] = record
        if cache is not None:
            cache.store(record)

    for cell in cells:
        shared = slots[cell.key]
        assert shared is not None  # every miss was evaluated above
        # each cell gets its own view of the (possibly shared) measurement:
        # the content key identifies the work, but the labels/axes — and the
        # scenario name, which is deliberately not part of the content hash —
        # belong to this plan's cell
        result.records.append(
            replace(
                shared,
                scenario=cell.scenario.name,
                config_label=cell.label,
                axes=dict(cell.axes),
            )
        )
    return result
