"""Batch runner: grid expansion, process-pool fan-out and cache reuse.

A *grid* is a base :class:`EvaluationSettings` plus named axes (field ->
list of values); its cartesian product crossed with a scenario list
yields the sweep cells.  The runner resolves every cell against the
on-disk :class:`~repro.dse.cache.ResultCache` first and only executes
the misses — optionally fanned out over a process pool, one cell per
task, reusing the one-payload-per-worker pattern of the Figure-4
:mod:`~repro.experiments.runtime_sweep` machinery (module-level worker
function so payloads pickle cleanly).
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, replace

from repro.dse.cache import ResultCache, cache_key
from repro.dse.pipeline import EvaluationSettings, Scenario, evaluate
from repro.dse.records import EvaluationRecord
from repro.exceptions import ConfigurationError


def axis_label(axes: Mapping[str, object]) -> str:
    """Compact human-readable cell label: ``arch=mesh,delay=2``."""
    if not axes:
        return "base"
    return ",".join(f"{key}={value}" for key, value in axes.items())


def expand_grid(
    base: EvaluationSettings | None = None,
    axes: Mapping[str, Sequence[object]] | None = None,
) -> list[tuple[dict[str, object], EvaluationSettings]]:
    """Cartesian product of the axes over the base settings.

    Returns ``(axis_values, settings)`` pairs; with no axes the base
    settings are the single cell.  Axis names must be settings fields.
    """
    base = base or EvaluationSettings()
    axes = dict(axes or {})
    for name, values in axes.items():
        if not values:
            raise ConfigurationError(f"axis {name!r} has no values")
    if not axes:
        return [({}, base)]
    names = list(axes)
    cells = []
    for combination in itertools.product(*(axes[name] for name in names)):
        axis_values = dict(zip(names, combination))
        cells.append((axis_values, base.merged(axis_values)))
    return cells


@dataclass(frozen=True)
class SweepCell:
    """One (scenario, configuration) evaluation unit of a sweep."""

    scenario: Scenario
    settings: EvaluationSettings
    axes: dict[str, object]
    key: str

    @property
    def label(self) -> str:
        return axis_label(self.axes)


def plan_sweep(
    scenarios: Sequence[Scenario],
    base: EvaluationSettings | None = None,
    axes: Mapping[str, Sequence[object]] | None = None,
) -> list[SweepCell]:
    """All cells of scenarios x grid, each with its content-hash key."""
    if not scenarios:
        raise ConfigurationError("a sweep needs at least one scenario")
    cells: list[SweepCell] = []
    for scenario in scenarios:
        for axis_values, settings in expand_grid(base, axes):
            cells.append(
                SweepCell(
                    scenario=scenario,
                    settings=settings,
                    axes=axis_values,
                    key=cache_key(scenario, settings),
                )
            )
    return cells


@dataclass
class SweepResult:
    """Records of one sweep plus cache bookkeeping.

    ``cache_hits``/``cache_misses`` count *cells* against the on-disk cache;
    ``num_evaluations`` counts the fresh pipeline runs actually executed,
    which can be lower than ``cache_misses`` when per-scenario pins or
    canonicalization collapse several cells onto one content key.
    """

    records: list[EvaluationRecord] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    num_evaluations: int = 0

    @property
    def num_cells(self) -> int:
        return len(self.records)

    @property
    def cache_hit_fraction(self) -> float:
        if self.num_cells == 0:
            return 0.0
        return self.cache_hits / self.num_cells

    def succeeded(self) -> list[EvaluationRecord]:
        return [record for record in self.records if record.succeeded]

    def failed(self) -> list[EvaluationRecord]:
        return [record for record in self.records if not record.succeeded]

    def describe(self) -> str:
        shared = self.cache_misses - self.num_evaluations
        sharing = f" ({shared} duplicate cells shared an evaluation)" if shared else ""
        return (
            f"{self.num_cells} cells: {self.cache_hits} cached, "
            f"{self.num_evaluations} evaluated "
            f"({100.0 * self.cache_hit_fraction:.0f}% cache hits){sharing}; "
            f"{len(self.failed())} failures"
        )


def _evaluate_cell(
    payload: tuple[Scenario, EvaluationSettings, dict[str, object], str],
) -> EvaluationRecord:
    """Evaluate one cell (module-level so it pickles into worker processes)."""
    scenario, settings, axes, key = payload
    return evaluate(
        scenario,
        settings,
        cache_key=key,
        config_label=axis_label(axes),
        axes=axes,
    )


def run_sweep(
    scenarios: Sequence[Scenario],
    base: EvaluationSettings | None = None,
    axes: Mapping[str, Sequence[object]] | None = None,
    cache: ResultCache | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
) -> SweepResult:
    """Evaluate every (scenario, grid cell), reusing cached results.

    Records come back in plan order (scenario-major, then grid order)
    regardless of caching or parallelism, so serial and parallel sweeps are
    interchangeable.
    """
    cells = plan_sweep(scenarios, base, axes)
    result = SweepResult()
    fresh: list[SweepCell] = []
    slots: dict[str, EvaluationRecord | None] = {}
    for cell in cells:
        if cell.key in slots:
            if slots[cell.key] is None:
                result.cache_misses += 1  # shares the pending evaluation
            else:
                result.cache_hits += 1
            continue  # duplicate cell (per-scenario pins collapsed an axis)
        slots[cell.key] = cache.get(cell.key) if cache is not None else None
        if slots[cell.key] is None:
            result.cache_misses += 1
            fresh.append(cell)
        else:
            result.cache_hits += 1
    result.num_evaluations = len(fresh)

    payloads = [(cell.scenario, cell.settings, cell.axes, cell.key) for cell in fresh]
    if parallel and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            evaluated = list(pool.map(_evaluate_cell, payloads))
    else:
        evaluated = [_evaluate_cell(payload) for payload in payloads]

    for record in evaluated:
        slots[record.cache_key] = record
        if cache is not None:
            cache.store(record)

    for cell in cells:
        shared = slots[cell.key]
        assert shared is not None  # every miss was evaluated above
        # each cell gets its own view of the (possibly shared) measurement:
        # the content key identifies the work, but the labels/axes — and the
        # scenario name, which is deliberately not part of the content hash —
        # belong to this plan's cell
        result.records.append(
            replace(
                shared,
                scenario=cell.scenario.name,
                config_label=cell.label,
                axes=dict(cell.axes),
            )
        )
    return result
