"""Batch design-space exploration over the full synthesis flow.

``repro.dse`` turns the per-figure experiment scripts into a batch
exploration engine:

* :mod:`repro.dse.pipeline` — ``evaluate(scenario, settings)`` chains
  decompose -> synthesize -> floorplan/route -> simulate -> energy and
  returns every metric (and every failure) as one record;
* :mod:`repro.dse.scenarios` — named scenario suites over the AES case
  study, published embedded benchmarks, TGFF/Pajek generators and
  degree-sequence random graphs;
* :mod:`repro.dse.runner` — grid expansion + process-pool fan-out with a
  content-hash-keyed on-disk JSONL cache (re-runs only execute new cells);
* :mod:`repro.dse.analysis` — Pareto fronts over energy/latency/
  throughput and mesh-baseline normalization;
* ``python -m repro.dse`` — the ``run`` / ``report`` / ``list-scenarios``
  command line.

Quickstart::

    from repro.dse import build_suite, get_suite, run_sweep, pareto_report, ResultCache

    spec = get_suite("smoke")
    result = run_sweep(spec.build(), base=spec.base_settings,
                       axes=spec.default_axes, cache=ResultCache("results.jsonl"))
    print(pareto_report(result.records))
"""

from repro.dse.analysis import (
    DEFAULT_MAXIMIZE,
    DEFAULT_MINIMIZE,
    custom_dominates_mesh,
    dominates,
    mesh_baseline_for,
    normalize_to_mesh,
    pareto_front,
    pareto_report,
)
from repro.dse.cache import PIPELINE_VERSION, ResultCache, cache_key
from repro.dse.pipeline import (
    ArchitectureMetrics,
    EvaluationSettings,
    Scenario,
    build_baseline_mesh,
    evaluate,
    simulate_acg_traffic,
    simulate_aes_traffic,
)
from repro.dse.records import (
    ALL_STATUSES,
    STATUS_DECOMPOSITION_FAILED,
    STATUS_OK,
    STATUS_ROUTING_FAILED,
    STATUS_SIMULATION_FAILED,
    STATUS_SYNTHESIS_FAILED,
    EvaluationRecord,
)
from repro.dse.runner import (
    SweepCell,
    SweepResult,
    axis_label,
    expand_grid,
    plan_sweep,
    run_sweep,
)
from repro.dse.scenarios import (
    SuiteSpec,
    aes_scenario,
    build_suite,
    describe_suites,
    embedded_scenario,
    erdos_renyi_scenario,
    get_suite,
    planted_scenario,
    register_suite,
    scale_free_scenario,
    scenario_rows,
    suite_names,
    tgff_scenario,
)

__all__ = [
    "evaluate",
    "EvaluationRecord",
    "EvaluationSettings",
    "Scenario",
    "ArchitectureMetrics",
    "simulate_aes_traffic",
    "simulate_acg_traffic",
    "build_baseline_mesh",
    "STATUS_OK",
    "STATUS_DECOMPOSITION_FAILED",
    "STATUS_SYNTHESIS_FAILED",
    "STATUS_ROUTING_FAILED",
    "STATUS_SIMULATION_FAILED",
    "ALL_STATUSES",
    "ResultCache",
    "cache_key",
    "PIPELINE_VERSION",
    "run_sweep",
    "plan_sweep",
    "expand_grid",
    "axis_label",
    "SweepCell",
    "SweepResult",
    "SuiteSpec",
    "register_suite",
    "get_suite",
    "build_suite",
    "suite_names",
    "describe_suites",
    "scenario_rows",
    "aes_scenario",
    "embedded_scenario",
    "tgff_scenario",
    "planted_scenario",
    "erdos_renyi_scenario",
    "scale_free_scenario",
    "pareto_front",
    "pareto_report",
    "dominates",
    "custom_dominates_mesh",
    "normalize_to_mesh",
    "mesh_baseline_for",
    "DEFAULT_MINIMIZE",
    "DEFAULT_MAXIMIZE",
]
