"""Batch design-space exploration over the full synthesis flow.

``repro.dse`` turns the per-figure experiment scripts into a batch
exploration engine:

* :mod:`repro.dse.pipeline` — ``evaluate(scenario, settings)`` chains the
  explicit stages decompose -> synthesize -> route -> simulate -> score
  and returns every metric (and every failure) as one record;
* :mod:`repro.dse.scenarios` — named scenario suites over the AES case
  study, published embedded benchmarks, TGFF/Pajek generators and
  degree-sequence random graphs;
* :mod:`repro.dse.cache` — the layered on-disk caches: content-hash-keyed
  JSONL cell results plus a stage-artifact store that shares one
  serialized decomposition across every cell of a simulator-axis sweep;
* :mod:`repro.dse.runner` — grid expansion + process-pool fan-out of
  decomposition-sharing cell groups (re-runs only execute new cells, and
  the search runs once per decomposition sub-key);
* :mod:`repro.dse.search` — multi-fidelity guided search: Pareto-aware
  successive halving over a fidelity ladder (truncated budgets + short
  simulation windows at low rungs), reproducing the exhaustive grid's
  front with far fewer full-fidelity evaluations;
* :mod:`repro.dse.analysis` — Pareto fronts over energy/latency/
  throughput, mesh-baseline normalization, stage-reuse summaries and
  flagging of budget-truncated (machine-speed-dependent) cells;
* ``python -m repro.dse`` — the ``run`` / ``report`` / ``list-scenarios``
  command line (worked example in ``docs/dse.md``).

Quickstart::

    from repro.dse import build_suite, get_suite, run_sweep, pareto_report, ResultCache

    spec = get_suite("smoke")
    result = run_sweep(spec.build(), base=spec.base_settings,
                       axes=spec.default_axes, cache=ResultCache("results.jsonl"))
    print(pareto_report(result.records))
"""

from repro.dse.analysis import (
    DEFAULT_MAXIMIZE,
    DEFAULT_MINIMIZE,
    custom_dominates_mesh,
    dominates,
    mesh_baseline_for,
    normalize_to_mesh,
    pareto_front,
    pareto_report,
    stage_reuse_summary,
    truncated_cells,
)
from repro.dse.cache import (
    PIPELINE_VERSION,
    ResultCache,
    StageArtifactStore,
    StageContext,
    cache_key,
    decomposition_stage_key,
    synthesis_stage_key,
)
from repro.dse.pipeline import (
    LIBRARIES,
    SCORES,
    STRATEGIES,
    TRAFFIC_MODES,
    ArchitectureMetrics,
    EvaluationSettings,
    Scenario,
    TrafficModeSpec,
    baseline_route_stage,
    build_baseline_fabric,
    build_baseline_mesh,
    decompose_stage,
    evaluate,
    get_library,
    get_traffic_mode,
    register_library,
    register_score,
    register_traffic_mode,
    route_stage,
    score_stage,
    simulate_acg_traffic,
    simulate_aes_traffic,
    simulate_stage,
    synthesize_stage,
)
from repro.dse.records import (
    ALL_STATUSES,
    STAGE_COMPUTED,
    STAGE_PROVENANCES,
    STAGE_REUSED_MEMORY,
    STAGE_REUSED_STORE,
    STATUS_DECOMPOSITION_FAILED,
    STATUS_OK,
    STATUS_ROUTING_FAILED,
    STATUS_SIMULATION_FAILED,
    STATUS_SYNTHESIS_FAILED,
    EvaluationRecord,
)
from repro.dse.runner import (
    SweepCell,
    SweepResult,
    axis_label,
    expand_grid,
    plan_sweep,
    run_cells,
    run_sweep,
)
from repro.dse.search import (
    RungSpec,
    SearchConfig,
    SearchResult,
    default_ladder,
    margin_dominated,
    run_search,
)
from repro.dse.scenarios import (
    FILE_SUITE_PREFIX,
    SUITES,
    SuiteSpec,
    aes_scenario,
    build_suite,
    describe_suites,
    embedded_scenario,
    erdos_renyi_scenario,
    file_scenario,
    file_suite,
    get_suite,
    planted_scenario,
    register_suite,
    resolve_suite,
    scale_free_scenario,
    scenario_rows,
    suite_names,
    tgff_scenario,
)

__all__ = [
    "evaluate",
    "decompose_stage",
    "synthesize_stage",
    "route_stage",
    "simulate_stage",
    "score_stage",
    "EvaluationRecord",
    "EvaluationSettings",
    "Scenario",
    "ArchitectureMetrics",
    "simulate_aes_traffic",
    "simulate_acg_traffic",
    "build_baseline_mesh",
    "build_baseline_fabric",
    "baseline_route_stage",
    "STATUS_OK",
    "STATUS_DECOMPOSITION_FAILED",
    "STATUS_SYNTHESIS_FAILED",
    "STATUS_ROUTING_FAILED",
    "STATUS_SIMULATION_FAILED",
    "ALL_STATUSES",
    "STAGE_COMPUTED",
    "STAGE_REUSED_MEMORY",
    "STAGE_REUSED_STORE",
    "STAGE_PROVENANCES",
    "ResultCache",
    "StageArtifactStore",
    "StageContext",
    "cache_key",
    "decomposition_stage_key",
    "synthesis_stage_key",
    "PIPELINE_VERSION",
    "stage_reuse_summary",
    "truncated_cells",
    "run_sweep",
    "run_cells",
    "plan_sweep",
    "expand_grid",
    "axis_label",
    "SweepCell",
    "SweepResult",
    "run_search",
    "SearchConfig",
    "SearchResult",
    "RungSpec",
    "default_ladder",
    "margin_dominated",
    "SuiteSpec",
    "register_suite",
    "get_suite",
    "resolve_suite",
    "build_suite",
    "suite_names",
    "describe_suites",
    "SUITES",
    "FILE_SUITE_PREFIX",
    "file_scenario",
    "file_suite",
    "LIBRARIES",
    "STRATEGIES",
    "TRAFFIC_MODES",
    "SCORES",
    "TrafficModeSpec",
    "get_library",
    "register_library",
    "get_traffic_mode",
    "register_traffic_mode",
    "register_score",
    "scenario_rows",
    "aes_scenario",
    "embedded_scenario",
    "tgff_scenario",
    "planted_scenario",
    "erdos_renyi_scenario",
    "scale_free_scenario",
    "pareto_front",
    "pareto_report",
    "dominates",
    "custom_dominates_mesh",
    "normalize_to_mesh",
    "mesh_baseline_for",
    "DEFAULT_MINIMIZE",
    "DEFAULT_MAXIMIZE",
]
