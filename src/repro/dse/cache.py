"""Layered on-disk caches for DSE sweeps: cell results + stage artifacts.

Two cooperating stores live here (see ``docs/dse.md`` for the formats):

**Cell results** (:class:`ResultCache`) — a sweep cell is identified by
the SHA-256 of its canonical JSON content: the scenario *fingerprint*
(workload structure, volumes, positions, traffic mode and generator
parameters — including the explicit seeds) plus the effective
:class:`~repro.dse.pipeline.EvaluationSettings`.  Labels and suite names
are deliberately not part of the key, so renaming a suite never
invalidates results, while changing a volume, a seed or any knob always
does.  Results append to one JSONL file, one record per line, which
makes the store crash-safe (a truncated trailing line is skipped on
load) and merge-friendly (files from several machines can simply be
concatenated).  Re-running a sweep only evaluates cells whose key is
absent.

**Stage artifacts** (:class:`StageArtifactStore` + :class:`StageContext`)
— the pipeline's stages are separable, and the expensive one (the
decomposition search) only reads the workload graph plus the
decomposition knobs.  Its output is therefore cached under a *stage
sub-key* (:func:`decomposition_stage_key`) derived from the cell key by
nulling out every simulator- and synthesis-stage field, so all cells of
a simulator-axis sweep share one serialized decomposition.  A synthesis
sub-key (:func:`synthesis_stage_key`) layers the synthesis fields back
on top and memoizes the synthesized topology + routing table in memory.

One caveat on merging result files: a cell whose decomposition search
exhausted its wall-clock budget (``search_statistics["truncated"]`` is
true in the record, :attr:`EvaluationRecord.truncated_search`) carries a
machine-speed-dependent result — a slower host may have cached a worse
decomposition under the same content key.  Within one cache file this is
consistent ("newest wins"); when merging files from heterogeneous
machines, treat truncated cells as approximate or re-run them with a
larger ``decomposition_timeout_seconds``.  ``report`` flags such cells.
The same caveat applies to decomposition artifacts copied between
machines of different speeds.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.core.cost import LinkCountCostModel
from repro.core.decomposition import DecompositionResult, SearchStatistics
from repro.core.graph import ApplicationGraph
from repro.core.library import CommunicationLibrary
from repro.core.matching import Matching, RemainderGraph
from repro.core.synthesis import SynthesizedArchitecture
from repro.dse.pipeline import (
    EvaluationSettings,
    Scenario,
    route_stage,
    run_decomposition_search,
    synthesize_stage,
)
from repro.dse.records import (
    STAGE_COMPUTED,
    STAGE_REUSED_MEMORY,
    STAGE_REUSED_STORE,
    EvaluationRecord,
)
from repro.exceptions import ReproError

#: bump when the pipeline's measurement semantics change incompatibly, so
#: stale caches are invalidated wholesale instead of silently misread
#: (version 2: stage-granular pipeline — records carry ``stage_reuse``,
#: decompositions are shared across simulator-axis sweep cells;
#: version 3: event-driven simulator — settings grew the ``engine`` knob,
#: records carry ``sim_cycles_stepped``, and energy is batch-flushed, which
#: can move link-energy floats by an ulp relative to per-hop charging;
#: version 4: pluggable fabric layer — settings grew the ``topology`` /
#: ``routing_policy`` / ``require_deadlock_free`` knobs, baseline cells are
#: table-routed through the policy registry, and every routed cell records
#: the CDG gate's ``deadlock_free`` / ``vc_channels_needed`` provenance;
#: version 5: exact residual lower bounds — settings grew the
#: ``lower_bound`` knob (part of the decomposition stage sub-key), search
#: statistics carry ``branches_pruned_by`` provenance and bound-cache
#: counters, and truncated searches expand a different tree under the
#: tighter default bound)
PIPELINE_VERSION = 5

#: bump when the decomposition artifact serialization changes shape
DECOMPOSITION_ARTIFACT_FORMAT = 1


def _content_hash(payload: dict[str, object]) -> str:
    """SHA-256 of the canonical (sorted, compact) JSON encoding."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cache_key(scenario: Scenario, settings: EvaluationSettings) -> str:
    """Stable content hash of one (scenario, configuration) cell."""
    effective = scenario.effective_settings(settings)
    return _content_hash(
        {
            "pipeline_version": PIPELINE_VERSION,
            "scenario": scenario.fingerprint(),
            "settings": effective.canonical_dict(),
        }
    )


def decomposition_stage_key(scenario: Scenario, settings: EvaluationSettings) -> str:
    """Stable content hash of the decompose stage's inputs.

    Only the workload graph structure and the decomposition-stage settings
    (:meth:`EvaluationSettings.decomposition_stage_dict`) enter the hash:
    two cells that differ in simulator- or synthesis-stage fields alone —
    or in how the traffic is driven — share this key, and therefore one
    decomposition search.
    """
    effective = scenario.effective_settings(settings)
    return _content_hash(
        {
            "pipeline_version": PIPELINE_VERSION,
            "stage": "decompose",
            "workload": scenario.structural_fingerprint(),
            "settings": effective.decomposition_stage_dict(),
        }
    )


def synthesis_stage_key(scenario: Scenario, settings: EvaluationSettings) -> str:
    """Stable content hash of the synthesize/route stages' inputs.

    Layers the synthesis-stage fields
    (:meth:`EvaluationSettings.synthesis_stage_dict`) on top of the
    decomposition sub-key's inputs; cells that differ only in
    simulator-stage fields share this key, and therefore one synthesized
    topology and routing table.
    """
    effective = scenario.effective_settings(settings)
    return _content_hash(
        {
            "pipeline_version": PIPELINE_VERSION,
            "stage": "synthesize",
            "workload": scenario.structural_fingerprint(),
            "settings": effective.synthesis_stage_dict(),
        }
    )


class ResultCache:
    """A JSONL file of :class:`EvaluationRecord` lines keyed by content hash."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._records: dict[str, EvaluationRecord] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self) -> dict[str, EvaluationRecord]:
        """Read every stored record (newest wins per key); idempotent."""
        if self._loaded:
            return self._records
        self._loaded = True
        if self.path.exists():
            for line in self.path.read_text(encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated line (crashed writer): skip, don't die
                if not isinstance(payload, dict):
                    continue  # foreign JSONL content: skip, don't die
                try:
                    record = EvaluationRecord.from_dict(payload)
                except TypeError:
                    continue  # missing required fields: skip, don't die
                if record.cache_key:
                    record.from_cache = True
                    self._records[record.cache_key] = record
        return self._records

    def get(self, key: str) -> EvaluationRecord | None:
        """The cached record under ``key``, or None."""
        return self.load().get(key)

    def __contains__(self, key: str) -> bool:
        return key in self.load()

    def __len__(self) -> int:
        return len(self.load())

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def store(self, record: EvaluationRecord) -> None:
        """Append one record (it must carry its cache key)."""
        if not record.cache_key:
            raise ValueError("cannot cache a record without a cache_key")
        self.load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(record.to_json() + "\n")
        self._records[record.cache_key] = record

    def store_all(self, records: list[EvaluationRecord]) -> None:
        """Append several records in order."""
        for record in records:
            self.store(record)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def all_records(self) -> list[EvaluationRecord]:
        """Every cached record, one per content key (newest wins)."""
        return list(self.load().values())

    def describe(self) -> str:
        """One-line summary used by the CLI (path + cell count)."""
        return f"{self.path} ({len(self)} cached cells)"


# ----------------------------------------------------------------------
# stage artifacts
# ----------------------------------------------------------------------
def serialize_decomposition(decomposition: DecompositionResult) -> dict[str, object]:
    """JSON-serializable payload of a decomposition (matchings by content).

    Only the *choices* are stored — which primitive is instantiated on which
    cores — plus the search statistics and the total cost as an integrity
    check; the remainder graph and the cost breakdown are reconstructed by
    replaying the subtraction against the workload graph on load.
    """
    return {
        "format": DECOMPOSITION_ARTIFACT_FORMAT,
        "matchings": [
            {
                "primitive": matching.primitive.name,
                "assignment": [[node, core] for node, core in matching.assignment],
            }
            for matching in decomposition.matchings
        ],
        "total_cost": decomposition.total_cost,
        "statistics": decomposition.statistics.as_dict(),
    }


def rebuild_decomposition(
    payload: dict[str, object],
    acg: ApplicationGraph,
    library: CommunicationLibrary,
) -> DecompositionResult | None:
    """Inverse of :func:`serialize_decomposition`, or None when stale.

    Replays the stored matchings against ``acg`` (which re-validates that
    every covered edge exists and nothing overlaps) and recomputes the cost
    breakdown with the pipeline's cost model; any mismatch with the stored
    total cost — a changed library, cost model or workload — rejects the
    artifact so the caller falls back to a fresh search.
    """
    try:
        if payload.get("format") != DECOMPOSITION_ARTIFACT_FORMAT:
            return None
        residual = acg.structural_copy()
        matchings: list[Matching] = []
        for item in payload["matchings"]:  # type: ignore[index]
            primitive = library.by_name(item["primitive"])
            mapping = {node: core for node, core in item["assignment"]}
            matching = Matching.from_dict(primitive, mapping)
            residual = matching.subtract_from(residual)
            matchings.append(matching)
        cost_model = LinkCountCostModel()
        remainder = RemainderGraph(residual.without_isolated_nodes())
        matching_costs = [cost_model.matching_cost(m, acg) for m in matchings]
        remainder_cost = cost_model.remainder_cost(remainder, acg)
        total_cost = sum(matching_costs) + remainder_cost
        if abs(total_cost - float(payload["total_cost"])) > 1e-6:  # type: ignore[arg-type]
            return None
        stored_statistics = payload.get("statistics")
        statistics = SearchStatistics()
        if isinstance(stored_statistics, dict):
            known = set(statistics.as_dict())
            for key, value in stored_statistics.items():
                if key in known:
                    setattr(statistics, key, value)
        result = DecompositionResult(
            acg=acg,
            matchings=matchings,
            remainder=remainder,
            total_cost=total_cost,
            matching_costs=matching_costs,
            remainder_cost=remainder_cost,
            statistics=statistics,
        )
        result.validate_cover()
        return result
    except (ReproError, KeyError, TypeError, ValueError):
        return None


class StageArtifactStore:
    """A directory of serialized stage artifacts keyed by stage sub-key.

    Lives alongside the JSONL result cache (the CLI defaults to a
    ``stage_artifacts/`` sibling of the results file).  One JSON file per
    artifact, written atomically (temp file + rename) so concurrent worker
    processes computing the same key race benignly — last writer wins with
    an identical payload.  Unreadable or stale artifacts are treated as
    absent, never as errors.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def _decomposition_path(self, key: str) -> Path:
        return self.directory / f"decompose_{key}.json"

    def load_decomposition(
        self,
        key: str,
        acg: ApplicationGraph,
        library: CommunicationLibrary,
    ) -> DecompositionResult | None:
        """Deserialize the decomposition stored under ``key``, if usable."""
        path = self._decomposition_path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        return rebuild_decomposition(payload, acg, library)

    def store_decomposition(self, key: str, decomposition: DecompositionResult) -> None:
        """Atomically persist one decomposition under its stage sub-key."""
        path = self._decomposition_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(serialize_decomposition(decomposition), sort_keys=True)
        temporary = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        temporary.write_text(payload + "\n", encoding="utf-8")
        os.replace(temporary, path)

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("decompose_*.json"))

    def describe(self) -> str:
        """One-line summary used by the CLI (path + artifact count)."""
        return f"{self.directory} ({len(self)} stage artifacts)"


class StageContext:
    """Per-process reuse of stage artifacts across the cells of a sweep.

    Holds an in-memory memo of decompositions (by decomposition sub-key)
    and synthesized architectures (by synthesis sub-key), backed by an
    optional :class:`StageArtifactStore` that persists decompositions across
    runs and across worker processes.  :func:`repro.dse.pipeline.evaluate`
    consults the context so a simulator-axis sweep runs the decomposition
    search exactly once per sub-key.
    """

    def __init__(self, store: StageArtifactStore | None = None) -> None:
        self.store = store
        self._decompositions: dict[str, DecompositionResult] = {}
        self._architectures: dict[str, SynthesizedArchitecture] = {}

    def decomposition_for(
        self, scenario: Scenario, settings: EvaluationSettings
    ) -> tuple[DecompositionResult, str]:
        """The decompose-stage artifact for one cell, computed at most once.

        Returns ``(decomposition, provenance)``; provenance reports whether
        the search ran (``"computed"``) or the artifact came from the
        in-memory memo (``"memory"``) or the on-disk store (``"store"``).
        """
        # the key below hashes the scenario-effective settings; resolve the
        # pins here too so search/load see the exact configuration the key
        # describes even when a caller passes raw grid settings
        settings = scenario.effective_settings(settings)
        key = decomposition_stage_key(scenario, settings)
        memoized = self._decompositions.get(key)
        if memoized is not None:
            return memoized, STAGE_REUSED_MEMORY
        if self.store is not None:
            loaded = self.store.load_decomposition(
                key, scenario.acg, settings.build_library()
            )
            if loaded is not None:
                self._decompositions[key] = loaded
                return loaded, STAGE_REUSED_STORE
        computed = run_decomposition_search(scenario, settings)
        self._decompositions[key] = computed
        if self.store is not None:
            self.store.store_decomposition(key, computed)
        return computed, STAGE_COMPUTED

    def architecture_for(
        self,
        scenario: Scenario,
        settings: EvaluationSettings,
        decomposition: DecompositionResult,
    ) -> tuple[SynthesizedArchitecture, str]:
        """The synthesize/route-stage product for one cell, memoized.

        Rebuilding topology + routing table from a decomposition is cheap
        and deterministic, so this layer is memoized in memory only; across
        processes it is regenerated from the shared decomposition artifact.
        """
        settings = scenario.effective_settings(settings)  # match the key's view
        key = synthesis_stage_key(scenario, settings)
        memoized = self._architectures.get(key)
        if memoized is not None:
            return memoized, STAGE_REUSED_MEMORY
        topology = synthesize_stage(scenario, settings, decomposition)
        architecture = route_stage(scenario, settings, decomposition, topology)
        self._architectures[key] = architecture
        return architecture, STAGE_COMPUTED
