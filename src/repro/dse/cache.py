"""On-disk result cache for DSE sweeps (content-hash keyed JSONL).

A sweep cell is identified by the SHA-256 of its canonical JSON content:
the scenario *fingerprint* (workload structure, volumes, positions,
traffic mode and generator parameters — including the explicit seeds)
plus the effective :class:`~repro.dse.pipeline.EvaluationSettings`.
Labels and suite names are deliberately not part of the key, so renaming
a suite never invalidates results, while changing a volume, a seed or
any knob always does.

Results append to one JSONL file, one record per line, which makes the
store crash-safe (a truncated trailing line is skipped on load) and
merge-friendly (files from several machines can simply be concatenated).
Re-running a sweep only evaluates cells whose key is absent.

One caveat on merging: a cell whose decomposition search exhausted its
wall-clock budget (``search_statistics["truncated"]`` is true in the
record) carries a machine-speed-dependent result — a slower host may
have cached a worse decomposition under the same content key.  Within
one cache file this is consistent ("newest wins"); when merging files
from heterogeneous machines, treat truncated cells as approximate or
re-run them with a larger ``decomposition_timeout_seconds``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.dse.pipeline import EvaluationSettings, Scenario
from repro.dse.records import EvaluationRecord

#: bump when the pipeline's measurement semantics change incompatibly, so
#: stale caches are invalidated wholesale instead of silently misread
PIPELINE_VERSION = 1


def cache_key(scenario: Scenario, settings: EvaluationSettings) -> str:
    """Stable content hash of one (scenario, configuration) cell."""
    effective = scenario.effective_settings(settings)
    payload = {
        "pipeline_version": PIPELINE_VERSION,
        "scenario": scenario.fingerprint(),
        "settings": effective.canonical_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A JSONL file of :class:`EvaluationRecord` lines keyed by content hash."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._records: dict[str, EvaluationRecord] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self) -> dict[str, EvaluationRecord]:
        """Read every stored record (newest wins per key); idempotent."""
        if self._loaded:
            return self._records
        self._loaded = True
        if self.path.exists():
            for line in self.path.read_text(encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated line (crashed writer): skip, don't die
                if not isinstance(payload, dict):
                    continue  # foreign JSONL content: skip, don't die
                try:
                    record = EvaluationRecord.from_dict(payload)
                except TypeError:
                    continue  # missing required fields: skip, don't die
                if record.cache_key:
                    record.from_cache = True
                    self._records[record.cache_key] = record
        return self._records

    def get(self, key: str) -> EvaluationRecord | None:
        return self.load().get(key)

    def __contains__(self, key: str) -> bool:
        return key in self.load()

    def __len__(self) -> int:
        return len(self.load())

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def store(self, record: EvaluationRecord) -> None:
        """Append one record (it must carry its cache key)."""
        if not record.cache_key:
            raise ValueError("cannot cache a record without a cache_key")
        self.load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(record.to_json() + "\n")
        self._records[record.cache_key] = record

    def store_all(self, records: list[EvaluationRecord]) -> None:
        for record in records:
            self.store(record)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def all_records(self) -> list[EvaluationRecord]:
        return list(self.load().values())

    def describe(self) -> str:
        return f"{self.path} ({len(self)} cached cells)"
