"""Command-line entry point: ``python -m repro.dse <run|report|trace|stats|list-scenarios|list-fabrics|import-workload|export-topology>``.

Examples::

    python -m repro.dse list-scenarios
    python -m repro.dse list-fabrics
    python -m repro.dse run --suite smoke
    python -m repro.dse run --suite file:examples/graphs/pipeline8.net
    python -m repro.dse run --suite random --parallel --axis library=default,extended
    python -m repro.dse run --suite fabrics --topology mesh,torus,ring \\
        --routing-policy xy,dateline,up_down
    python -m repro.dse search --suite embedded --margin 0.1
    python -m repro.dse search --suite embedded \\
        --rung screen:budget_fraction=0.16,simulation_cap=1,engine=batch \\
        --rung full
    python -m repro.dse report
    python -m repro.dse report --suite smoke --csv sweep.csv
    python -m repro.dse run --suite smoke --trace trace.jsonl
    python -m repro.dse trace trace.jsonl
    python -m repro.dse stats trace.jsonl --format prometheus
    python -m repro.dse import-workload app.net --out app.dot
    python -m repro.dse export-topology --family torus --cores 16 --out torus.dot

``--suite`` accepts registered suite names and ``file:PATH`` — the path
is imported through :mod:`repro.io` (Pajek/DOT/edge-list by extension)
and swept as a one-scenario suite.

``run`` executes a suite's grid against the on-disk caches (re-runs only
evaluate new cells, and cells differing only in simulator axes share one
decomposition through the stage-artifact store); ``search`` races the
same grid up a fidelity ladder instead of sweeping it exhaustively
(``docs/search.md``); ``report`` prints
per-scenario Pareto tables with mesh-normalized columns from the cached
results, surfacing the deadlock-gate provenance (``deadlock_free`` /
``vc_channels_needed``) and flagging budget-truncated cells;
``list-fabrics`` prints the topology-family and routing-policy registries
with their compatibility/deadlock matrix.  A worked end-to-end example
lives in ``docs/dse.md``; the fabric axes are documented in
``docs/topologies.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.dse.analysis import (
    normalize_to_mesh,
    pareto_report,
    stage_reuse_summary,
    truncated_cells,
)
from repro.dse.cache import ResultCache, StageArtifactStore
from repro.dse.runner import run_sweep
from repro.dse.scenarios import build_suite, describe_suites, resolve_suite, scenario_rows
from repro.exceptions import ConfigurationError, ReproError
from repro.obs import (
    NULL_SESSION,
    ObsSession,
    get_exporter,
    read_event_log,
    render_trace_summary,
    use_session,
    write_event_log,
)

DEFAULT_RESULTS = Path("dse_results") / "results.jsonl"
#: stage artifacts default to a sibling directory of the results file
DEFAULT_ARTIFACTS_NAME = "stage_artifacts"


def _coerce(text: str) -> object:
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text.strip()


def _parse_axes(specs: Sequence[str]) -> dict[str, list[object]]:
    axes: dict[str, list[object]] = {}
    for spec in specs:
        if "=" not in spec:
            raise ConfigurationError(
                f"bad --axis {spec!r}: expected name=value[,value...]"
            )
        name, _, values = spec.partition("=")
        axes[name.strip()] = [_coerce(value) for value in values.split(",") if value != ""]
    return axes


def _artifact_store(arguments: argparse.Namespace) -> StageArtifactStore | None:
    if arguments.no_artifacts:
        return None
    directory = arguments.artifacts
    if directory is None:
        directory = Path(arguments.results).parent / DEFAULT_ARTIFACTS_NAME
    return StageArtifactStore(directory)


def _sweep_grid(arguments: argparse.Namespace):
    """Resolve the suite + grid axes shared by ``run`` and ``search``."""
    spec = resolve_suite(arguments.suite)
    scenarios = spec.build()
    axes = dict(spec.default_axes)
    axes.update(_parse_axes(arguments.axis))
    if arguments.topology:
        axes["topology"] = [value for value in arguments.topology.split(",") if value]
    if arguments.routing_policy:
        axes["routing_policy"] = [
            value for value in arguments.routing_policy.split(",") if value
        ]
    if arguments.engine:
        axes["engine"] = [value for value in arguments.engine.split(",") if value]
    return spec, scenarios, axes


def _finish_sweep_output(arguments, cache, artifacts, session) -> None:
    """The cache/trace/next-step epilogue shared by ``run`` and ``search``."""
    print(f"results: {cache.describe()}")
    if artifacts is not None:
        print(f"stage artifacts: {artifacts.describe()}")
    if arguments.trace is not None:
        events = session.events()
        write_event_log(arguments.trace, events)
        print(f"trace: wrote {len(events)} events to {arguments.trace} "
              f"(inspect with: python -m repro.dse trace {arguments.trace})")
    print("next: python -m repro.dse report"
          + (f" --results {arguments.results}" if arguments.results != DEFAULT_RESULTS else ""))


def _cmd_run(arguments: argparse.Namespace) -> int:
    spec, scenarios, axes = _sweep_grid(arguments)
    cache = ResultCache(arguments.results)
    artifacts = _artifact_store(arguments)
    session = ObsSession.enabled() if arguments.trace is not None else NULL_SESSION
    with use_session(session):
        result = run_sweep(
            scenarios,
            base=spec.base_settings,
            axes=axes,
            cache=cache,
            parallel=arguments.parallel,
            max_workers=arguments.workers,
            artifacts=artifacts,
        )
    print(f"suite {spec.name!r}: {len(scenarios)} scenarios x grid {axes}")
    print(result.describe())
    for record in result.failed():
        print(f"  FAILED {record.scenario} [{record.config_label}]: "
              f"{record.status}: {record.error}")
    _finish_sweep_output(arguments, cache, artifacts, session)
    return 0


def _parse_ladder(specs: Sequence[str]):
    """``--rung NAME[:field=value,...]`` specs into a RungSpec ladder.

    ``budget_fraction`` and ``simulation_cap`` address the rung's own
    knobs; every other field is an :class:`EvaluationSettings` override.
    A final full-fidelity rung is appended automatically when the last
    given rung still carries overrides.
    """
    from repro.dse.search import RungSpec, default_ladder

    if not specs:
        return default_ladder()
    rungs = []
    for spec in specs:
        name, _, rest = spec.partition(":")
        name = name.strip()
        overrides: dict[str, object] = {}
        kwargs: dict[str, object] = {}
        for item in rest.split(",") if rest else []:
            if not item:
                continue
            if "=" not in item:
                raise ConfigurationError(
                    f"bad --rung {spec!r}: expected NAME[:field=value,...]"
                )
            field, _, value = item.partition("=")
            field = field.strip()
            coerced = _coerce(value)
            if field in ("budget_fraction", "simulation_cap"):
                kwargs[field] = coerced
            else:
                overrides[field] = coerced
        rungs.append(RungSpec(name, overrides=overrides, **kwargs))  # type: ignore[arg-type]
    if not rungs[-1].full_fidelity:
        rungs.append(RungSpec("full"))
    return tuple(rungs)


def _cmd_search(arguments: argparse.Namespace) -> int:
    from repro.dse.search import SearchConfig, run_search

    spec, scenarios, axes = _sweep_grid(arguments)
    config = SearchConfig(
        ladder=_parse_ladder(arguments.rung),
        margin=arguments.margin,
        seed=arguments.seed,
        max_promotions=arguments.max_promotions,
    )
    cache = ResultCache(arguments.results)
    artifacts = _artifact_store(arguments)
    session = ObsSession.enabled() if arguments.trace is not None else NULL_SESSION
    with use_session(session):
        result = run_search(
            scenarios,
            base=spec.base_settings,
            axes=axes,
            config=config,
            cache=cache,
            parallel=arguments.parallel,
            max_workers=arguments.workers,
            artifacts=artifacts,
        )
    print(f"suite {spec.name!r}: {len(scenarios)} scenarios x grid {axes}")
    print(result.describe())
    front = result.front_records()
    print(f"Pareto front ({len(front)} full-fidelity cell(s)):")
    for record in front:
        print(f"  * {record.scenario} {record.architecture} [{record.config_label}]")
    for record in result.failed():
        print(f"  FAILED {record.scenario} [{record.config_label}] "
              f"at rung {record.search.get('rung', '?')}: "
              f"{record.status}: {record.error}")
    _finish_sweep_output(arguments, cache, artifacts, session)
    return 0


def _cmd_trace(arguments: argparse.Namespace) -> int:
    events = read_event_log(arguments.path)
    print(render_trace_summary(events, top=arguments.top))
    return 0


def _cmd_stats(arguments: argparse.Namespace) -> int:
    events = read_event_log(arguments.path)
    print(get_exporter(arguments.format).render(events))
    return 0


def _cmd_report(arguments: argparse.Namespace) -> int:
    cache = ResultCache(arguments.results)
    records = cache.all_records()
    if arguments.suite:
        wanted = {scenario.name for scenario in build_suite(arguments.suite)}
        records = [record for record in records if record.scenario in wanted]
    if not records:
        print(f"no records in {arguments.results} — run a sweep first "
              "(python -m repro.dse run --suite smoke)")
        return 1
    print(pareto_report(records))
    reuse = stage_reuse_summary(records)
    if reuse:
        parts = []
        for stage in sorted(reuse):
            counts = reuse[stage]
            breakdown = ", ".join(
                f"{counts[provenance]} {provenance}" for provenance in sorted(counts)
            )
            parts.append(f"{stage}: {breakdown}")
        print(f"\nstage provenance across {len(records)} cells — " + "; ".join(parts))
    truncated = truncated_cells(records)
    if truncated:
        print(f"warning: {len(truncated)} cell(s) were budget-truncated; "
              "see the '!' markers above")
    if arguments.csv:
        # imported lazily for the same reason as in repro.dse.analysis
        from repro.experiments.reporting import rows_to_csv

        rows_to_csv(normalize_to_mesh(records), arguments.csv)
        print(f"\nwrote {len(records)} rows to {arguments.csv}")
    return 0


def _cmd_list_fabrics(arguments: argparse.Namespace) -> int:
    from repro.arch.families import family_names, get_family, pad_node_ids
    from repro.experiments.reporting import format_table
    from repro.routing.policies import get_policy, policy_names, supported_policies

    probe_cores = arguments.cores
    family_rows = []
    fabrics = {}
    for name in family_names():
        spec = get_family(name)
        fabric = spec.build(pad_node_ids(spec, range(1, probe_cores + 1)))
        fabrics[name] = fabric
        family_rows.append(
            {
                "family": name,
                "routers": fabric.num_routers,
                "links": fabric.num_physical_links,
                "max_degree": fabric.max_degree(),
                "description": spec.description,
            }
        )
    print(format_table(family_rows, title=f"topology families ({probe_cores} cores)"))

    policy_rows = [
        {
            "policy": name,
            "deadlock_free": get_policy(name).deadlock_free_by_construction,
            "minimal_on": ",".join(get_policy(name).minimal_families) or "-",
            "description": get_policy(name).description,
        }
        for name in policy_names()
    ]
    print()
    print(format_table(policy_rows, title="routing policies"))

    matrix_rows = []
    for family, fabric in fabrics.items():
        row: dict[str, object] = {"family": family}
        supported = set(supported_policies(fabric))
        for policy in policy_names():
            if policy not in supported:
                row[policy] = "-"
            elif get_policy(policy).deadlock_free_by_construction:
                row[policy] = "free"
            else:
                row[policy] = "gate"
        matrix_rows.append(row)
    print()
    print(format_table(
        matrix_rows,
        title="compatibility (free: deadlock-free by construction; "
        "gate: CDG gate decides per workload)",
    ))
    print("\nsweep these axes with: python -m repro.dse run --suite fabrics "
          "--topology NAME,... --routing-policy NAME,...")
    return 0


def _cmd_import_workload(arguments: argparse.Namespace) -> int:
    from repro.core.graph import GraphStatistics
    from repro.io import read_workload, write_workload

    acg = read_workload(arguments.path, fmt=arguments.format, name=arguments.name)
    stats = GraphStatistics.of(acg)
    print(f"workload {acg.name!r}: {stats.num_nodes} nodes, {stats.num_edges} edges, "
          f"total volume {stats.total_volume:g} bits, "
          f"{'connected' if stats.is_connected else f'{stats.num_components} components'}")
    if arguments.out:
        write_workload(acg, arguments.out, fmt=arguments.out_format)
        print(f"wrote {arguments.out}")
    print("sweep it with: python -m repro.dse run "
          f"--suite file:{arguments.path}")
    return 0


def _cmd_export_topology(arguments: argparse.Namespace) -> int:
    from repro.arch.families import get_family, pad_node_ids
    from repro.io import write_topology

    spec = get_family(arguments.family)
    fabric = spec.build(
        pad_node_ids(spec, range(1, arguments.cores + 1)),
        tile_pitch_mm=arguments.tile_pitch,
        flit_width_bits=arguments.flit_width,
    )
    write_topology(fabric, arguments.out, fmt=arguments.format)
    print(f"wrote {arguments.out}: family {arguments.family!r}, "
          f"{fabric.num_routers} routers, {fabric.num_physical_links} links, "
          f"total wire {fabric.total_wire_length_mm():g} mm")
    return 0


def _cmd_list_scenarios(arguments: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table

    if arguments.suite:
        rows = scenario_rows(build_suite(arguments.suite))
        print(format_table(rows, title=f"suite: {arguments.suite}"))
    else:
        print(format_table(describe_suites(), title="registered scenario suites"))
        print("\nuse --suite NAME to list a suite's scenarios")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.dse`` argument parser (all defaults documented)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="batch NoC design-space exploration over scenario suites",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run",
        help="execute a suite's sweep grid (cached)",
        description="Execute a suite's sweep grid against the on-disk caches. "
        "Cells already present in the JSONL result cache are not re-evaluated; "
        "cells differing only in simulator-stage axes share one decomposition "
        "through the stage-artifact store. See docs/dse.md for a worked example.",
    )
    _add_sweep_options(run)
    run.set_defaults(handler=_cmd_run)

    search = commands.add_parser(
        "search",
        help="race the sweep grid up a fidelity ladder (guided search)",
        description="Race a suite's grid up a fidelity ladder instead of "
        "sweeping it exhaustively: every design point is screened at cheap "
        "low rungs (truncated decomposition budgets, short simulation "
        "windows, batch engine) and only points on — or within --margin of — "
        "the incumbent Pareto front are promoted to full fidelity. "
        "Promotions are deterministic (--seed) and every cached record "
        "carries rung/promotion provenance for `report`. See docs/search.md.",
    )
    _add_sweep_options(search)
    search.add_argument("--rung", action="append", default=[],
                        metavar="NAME[:F=V,...]",
                        help="define a ladder rung; repeatable, ordered "
                             "cheap-to-full. Fields: budget_fraction (scales "
                             "max_nodes_expanded), simulation_cap (clamps "
                             "repetitions/aes_blocks), anything else is a "
                             "settings override (e.g. engine=batch, "
                             "decomposition_timeout_seconds=2). A bare final "
                             "full-fidelity rung is appended if missing "
                             "(default: the stock screen/confirm/full ladder)")
    search.add_argument("--margin", type=float, default=0.10,
                        help="dominance slack for promotion: prune a point "
                             "only when a front member beats it by this "
                             "relative factor in every objective; 0 promotes "
                             "exactly the front (default: 0.10)")
    search.add_argument("--seed", type=int, default=0,
                        help="seed for the deterministic promotion tie-break "
                             "(default: 0)")
    search.add_argument("--max-promotions", dest="max_promotions", type=int,
                        default=None, metavar="N",
                        help="cap promotions per scenario per rung; front "
                             "members and margin survivors compete for the "
                             "slots in deterministic rank order (default: "
                             "no cap)")
    search.set_defaults(handler=_cmd_search)

    _add_reporting_commands(commands)
    return parser


def _add_sweep_options(run: argparse.ArgumentParser) -> None:
    """The grid/cache/parallel/trace options shared by run and search."""
    run.add_argument("--suite", default="smoke",
                     help="scenario suite name (see list-scenarios) or file:PATH "
                          "to sweep an imported workload graph (default: smoke)")
    run.add_argument("--results", type=Path, default=DEFAULT_RESULTS,
                     help=f"JSONL result cache file (default: {DEFAULT_RESULTS})")
    run.add_argument("--artifacts", type=Path, default=None, metavar="DIR",
                     help="stage-artifact store directory; shared decompositions "
                          "persist here across runs (default: a "
                          f"'{DEFAULT_ARTIFACTS_NAME}' directory next to --results)")
    run.add_argument("--no-artifacts", action="store_true",
                     help="disable the on-disk stage-artifact store; stage reuse "
                          "stays in-memory within this run (default: off)")
    run.add_argument("--parallel", action="store_true",
                     help="fan decomposition-sharing groups out over a process "
                          "pool (default: serial)")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool size with --parallel (default: cpu count)")
    run.add_argument("--axis", action="append", default=[], metavar="NAME=V1,V2",
                     help="override/add a grid axis; repeatable; values are "
                          "coerced to bool/int/float/None when they parse as such "
                          "(default: the suite's grid)")
    run.add_argument("--topology", default=None, metavar="FAM1,FAM2",
                     help="topology families to sweep the baseline fabric over "
                          "(shorthand for --axis topology=...; see list-fabrics; "
                          "default: the suite's grid)")
    run.add_argument("--routing-policy", dest="routing_policy", default=None,
                     metavar="POL1,POL2",
                     help="routing policies to sweep the baseline fabric over "
                          "(shorthand for --axis routing_policy=...; see "
                          "list-fabrics; default: the suite's grid)")
    run.add_argument("--engine", default=None, metavar="ENG1,ENG2",
                     help="simulator engines to sweep (shorthand for --axis "
                          "engine=...; 'event', 'reference' or 'batch' — batch "
                          "cells sharing a fabric+routing signature are simulated "
                          "in one vectorized call; default: the suite's grid)")
    run.add_argument("--trace", type=Path, default=None, metavar="FILE",
                     help="record an observability event log (spans + metrics, "
                          "JSONL) of this sweep to FILE; inspect it with the "
                          "'trace' and 'stats' subcommands (default: tracing off)")


def _add_reporting_commands(commands) -> None:
    """The report/trace/stats/listing/interchange subcommands."""
    report = commands.add_parser(
        "report",
        help="Pareto/baseline report from cached results",
        description="Print per-scenario Pareto tables with mesh-normalized "
        "columns from the cached results. Budget-truncated decomposition cells "
        "are marked '!' and called out: their figures are machine-speed-"
        "dependent (see docs/dse.md).",
    )
    report.add_argument("--results", type=Path, default=DEFAULT_RESULTS,
                        help=f"JSONL result cache file (default: {DEFAULT_RESULTS})")
    report.add_argument("--suite", default=None,
                        help="restrict the report to one suite's scenarios "
                             "(default: all scenarios in the results file)")
    report.add_argument("--csv", type=Path, default=None, metavar="FILE",
                        help="also export the report rows as CSV (default: no export)")
    report.set_defaults(handler=_cmd_report)

    trace = commands.add_parser(
        "trace",
        help="summarize an observability event log",
        description="Render a human-readable summary of an event log recorded "
        "with run --trace: the hottest spans (by total wall clock), the DSE "
        "stage breakdown (decompose/synthesize/route/simulate/score shares), "
        "and the hottest routers/channels from the simulator probes. See "
        "docs/observability.md.",
    )
    trace.add_argument("path", type=Path, help="event log file (from run --trace)")
    trace.add_argument("--top", type=int, default=10,
                       help="number of span rows to show (default: 10)")
    trace.set_defaults(handler=_cmd_trace)

    stats = commands.add_parser(
        "stats",
        help="export an event log's metrics in a registered format",
        description="Render an event log recorded with run --trace through a "
        "registered metrics exporter. Built-ins: 'summary' (tables), "
        "'prometheus' (text exposition format), 'jsonl' (the raw events); "
        "plugins may register more via the repro.plugins entry-point group. "
        "See docs/observability.md.",
    )
    stats.add_argument("path", type=Path, help="event log file (from run --trace)")
    stats.add_argument("--format", default="summary",
                       help="exporter name (default: summary)")
    stats.set_defaults(handler=_cmd_stats)

    listing = commands.add_parser(
        "list-scenarios",
        help="list suites or a suite's scenarios",
        description="Without --suite, list every registered suite with its "
        "scenario and grid-cell counts; with --suite, list that suite's "
        "scenarios (nodes, edges, traffic mode).",
    )
    listing.add_argument("--suite", default=None,
                         help="suite whose scenarios to list (default: list suites)")
    listing.set_defaults(handler=_cmd_list_scenarios)

    fabrics = commands.add_parser(
        "list-fabrics",
        help="list topology families, routing policies and their matrix",
        description="Print the registered topology families (with router/link "
        "counts at a probe core count), the registered routing policies, and "
        "the family x policy compatibility matrix: 'free' cells are "
        "deadlock-free by construction, 'gate' cells rely on the per-workload "
        "CDG deadlock gate, '-' cells are unsupported (an explicit routing "
        "failure when swept). See docs/topologies.md.",
    )
    fabrics.add_argument("--cores", type=int, default=16,
                         help="probe core count used for the size columns "
                              "(default: 16)")
    fabrics.set_defaults(handler=_cmd_list_fabrics)

    importer = commands.add_parser(
        "import-workload",
        help="read a workload graph file and summarize/convert it",
        description="Read an application graph through the repro.io format "
        "registry (Pajek .net, Graphviz DOT, weighted edge list — detected "
        "from the extension unless --format pins it), print its statistics, "
        "and optionally convert it with --out. Sweep the file directly with "
        "run --suite file:PATH. See docs/interchange.md.",
    )
    importer.add_argument("path", type=Path, help="workload graph file to read")
    importer.add_argument("--format", default=None,
                          help="input format name (default: by file extension)")
    importer.add_argument("--name", default=None,
                          help="workload name override (default: the file stem)")
    importer.add_argument("--out", type=Path, default=None, metavar="FILE",
                          help="also write the graph to FILE (default: no export)")
    importer.add_argument("--out-format", dest="out_format", default=None,
                          help="output format name for --out "
                               "(default: by file extension)")
    importer.set_defaults(handler=_cmd_import_workload)

    exporter = commands.add_parser(
        "export-topology",
        help="instantiate a fabric family and write it to a graph file",
        description="Build a topology family at a given core count (node ids "
        "1..N padded per the family's rule) and write it through the repro.io "
        "format registry. The exported file re-imports with an identical "
        "structural signature. See docs/interchange.md.",
    )
    exporter.add_argument("--family", required=True,
                          help="topology family name (see list-fabrics)")
    exporter.add_argument("--cores", type=int, default=16,
                          help="application core count (default: 16)")
    exporter.add_argument("--tile-pitch", dest="tile_pitch", type=float, default=2.0,
                          help="tile pitch in mm (default: 2.0)")
    exporter.add_argument("--flit-width", dest="flit_width", type=int, default=32,
                          help="flit width in bits (default: 32)")
    exporter.add_argument("--out", type=Path, required=True, metavar="FILE",
                          help="output file; extension picks the format unless "
                               "--format is given")
    exporter.add_argument("--format", default=None,
                          help="output format name (default: by file extension)")
    exporter.set_defaults(handler=_cmd_export_topology)


def main(argv: Sequence[str] | None = None) -> int:
    """Parse ``argv`` (default: ``sys.argv[1:]``) and run the subcommand."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # the downstream consumer (head, grep -q, ...) closed the pipe;
        # silence the interpreter-shutdown flush and exit cleanly
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
