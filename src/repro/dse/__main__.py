"""Command-line entry point: ``python -m repro.dse <run|report|list-scenarios>``.

Examples::

    python -m repro.dse list-scenarios
    python -m repro.dse list-scenarios --suite embedded
    python -m repro.dse run --suite smoke
    python -m repro.dse run --suite random --parallel --axis library=default,extended
    python -m repro.dse report
    python -m repro.dse report --suite smoke --csv sweep.csv

``run`` executes a suite's grid against the on-disk cache (re-runs only
evaluate new cells); ``report`` prints per-scenario Pareto tables with
mesh-normalized columns from the cached results.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.dse.analysis import pareto_report, normalize_to_mesh
from repro.dse.cache import ResultCache
from repro.dse.runner import run_sweep
from repro.dse.scenarios import build_suite, describe_suites, get_suite, scenario_rows
from repro.exceptions import ConfigurationError, ReproError

DEFAULT_RESULTS = Path("dse_results") / "results.jsonl"


def _coerce(text: str) -> object:
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text.strip()


def _parse_axes(specs: Sequence[str]) -> dict[str, list[object]]:
    axes: dict[str, list[object]] = {}
    for spec in specs:
        if "=" not in spec:
            raise ConfigurationError(
                f"bad --axis {spec!r}: expected name=value[,value...]"
            )
        name, _, values = spec.partition("=")
        axes[name.strip()] = [_coerce(value) for value in values.split(",") if value != ""]
    return axes


def _cmd_run(arguments: argparse.Namespace) -> int:
    spec = get_suite(arguments.suite)
    scenarios = spec.build()
    axes = dict(spec.default_axes)
    axes.update(_parse_axes(arguments.axis))
    cache = ResultCache(arguments.results)
    result = run_sweep(
        scenarios,
        base=spec.base_settings,
        axes=axes,
        cache=cache,
        parallel=arguments.parallel,
        max_workers=arguments.workers,
    )
    print(f"suite {spec.name!r}: {len(scenarios)} scenarios x grid {axes}")
    print(result.describe())
    for record in result.failed():
        print(f"  FAILED {record.scenario} [{record.config_label}]: "
              f"{record.status}: {record.error}")
    print(f"results: {cache.describe()}")
    print("next: python -m repro.dse report"
          + (f" --results {arguments.results}" if arguments.results != DEFAULT_RESULTS else ""))
    return 0


def _cmd_report(arguments: argparse.Namespace) -> int:
    cache = ResultCache(arguments.results)
    records = cache.all_records()
    if arguments.suite:
        wanted = {scenario.name for scenario in build_suite(arguments.suite)}
        records = [record for record in records if record.scenario in wanted]
    if not records:
        print(f"no records in {arguments.results} — run a sweep first "
              "(python -m repro.dse run --suite smoke)")
        return 1
    print(pareto_report(records))
    if arguments.csv:
        # imported lazily for the same reason as in repro.dse.analysis
        from repro.experiments.reporting import rows_to_csv

        rows_to_csv(normalize_to_mesh(records), arguments.csv)
        print(f"\nwrote {len(records)} rows to {arguments.csv}")
    return 0


def _cmd_list_scenarios(arguments: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table

    if arguments.suite:
        rows = scenario_rows(build_suite(arguments.suite))
        print(format_table(rows, title=f"suite: {arguments.suite}"))
    else:
        print(format_table(describe_suites(), title="registered scenario suites"))
        print("\nuse --suite NAME to list a suite's scenarios")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="batch NoC design-space exploration over scenario suites",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="execute a suite's sweep grid (cached)")
    run.add_argument("--suite", default="smoke", help="scenario suite name (default: smoke)")
    run.add_argument("--results", type=Path, default=DEFAULT_RESULTS,
                     help=f"JSONL result cache (default: {DEFAULT_RESULTS})")
    run.add_argument("--parallel", action="store_true",
                     help="fan cells out over a process pool")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool size (default: cpu count)")
    run.add_argument("--axis", action="append", default=[], metavar="NAME=V1,V2",
                     help="override/add a grid axis (repeatable)")
    run.set_defaults(handler=_cmd_run)

    report = commands.add_parser("report", help="Pareto/baseline report from cached results")
    report.add_argument("--results", type=Path, default=DEFAULT_RESULTS)
    report.add_argument("--suite", default=None,
                        help="restrict the report to one suite's scenarios")
    report.add_argument("--csv", type=Path, default=None,
                        help="also export the report rows as CSV")
    report.set_defaults(handler=_cmd_report)

    listing = commands.add_parser("list-scenarios", help="list suites or a suite's scenarios")
    listing.add_argument("--suite", default=None)
    listing.set_defaults(handler=_cmd_list_scenarios)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # the downstream consumer (head, grep -q, ...) closed the pipe;
        # silence the interpreter-shutdown flush and exit cleanly
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
