"""The stable, lazily-imported facade over the whole library.

``repro.api`` is the one import an application or plugin needs: every
load-bearing symbol of the synthesis flow — core decomposition and
synthesis, fabric families, routing policies, interchange IO, the DSE
pipeline registries and the plugin kernel — is reachable here by name,
but nothing heavy is imported until the name is actually touched
(PEP 562 module ``__getattr__``).  In particular ``import repro.api``
must not pull in :mod:`repro.noc`, :mod:`repro.dse` or hypothesis-sized
test dependencies; ``tests/test_api_facade.py`` asserts that budget in a
subprocess.

Symbols that moved during the plugin-fabric refactor keep working here
as deprecation shims (:data:`_DEPRECATED`): accessing them warns once
with the new location and then behaves identically.

Quickstart::

    from repro import api

    acg = api.read_workload("app.net")
    result = api.decompose(acg, api.default_library())
    arch = api.synthesize_architecture(acg, result)
"""

from __future__ import annotations

import warnings
from importlib import import_module

#: public name -> defining module; resolution is deferred until access.
_EXPORTS: dict[str, str] = {
    # core: graphs, library, decomposition, synthesis
    "ApplicationGraph": "repro.core",
    "DiGraph": "repro.core",
    "CommunicationLibrary": "repro.core",
    "CommunicationPrimitive": "repro.core",
    "PrimitiveKind": "repro.core",
    "minimal_library": "repro.core",
    "default_library": "repro.core",
    "extended_library": "repro.core",
    "aes_library": "repro.core",
    "DecompositionConfig": "repro.core",
    "DecompositionResult": "repro.core",
    "decompose": "repro.core",
    "BOUND_NAMES": "repro.core",
    "ResidualBound": "repro.core",
    "build_lower_bound": "repro.core",
    "DesignConstraints": "repro.core",
    "SynthesisOptions": "repro.core",
    "SynthesizedArchitecture": "repro.core",
    "synthesize_architecture": "repro.core",
    # exceptions
    "ReproError": "repro.exceptions",
    "ConfigurationError": "repro.exceptions",
    "WorkloadError": "repro.exceptions",
    "PluginError": "repro.exceptions",
    "UnknownPluginError": "repro.exceptions",
    # plugin kernel
    "Registry": "repro.plugins",
    "providing": "repro.plugins",
    "BUILTIN_PROVIDER": "repro.plugins",
    "ENTRY_POINT_GROUP": "repro.plugins",
    "PluginFailure": "repro.plugins",
    "discover": "repro.plugins",
    "discovered_plugins": "repro.plugins",
    "plugin_failures": "repro.plugins",
    # fabric families
    "Topology": "repro.arch.topology",
    "Channel": "repro.arch.topology",
    "FAMILIES": "repro.arch.families",
    "FamilySpec": "repro.arch.families",
    "register_family": "repro.arch.families",
    "family_names": "repro.arch.families",
    "get_family": "repro.arch.families",
    "build_fabric": "repro.arch.families",
    "pad_node_ids": "repro.arch.families",
    "infrastructure_router": "repro.arch.families",
    # routing policies
    "POLICIES": "repro.routing.policies",
    "PolicySpec": "repro.routing.policies",
    "register_policy": "repro.routing.policies",
    "policy_names": "repro.routing.policies",
    "get_policy": "repro.routing.policies",
    "build_policy_table": "repro.routing.policies",
    "supported_policies": "repro.routing.policies",
    # graph interchange
    "FORMATS": "repro.io",
    "GraphFormat": "repro.io",
    "register_format": "repro.io",
    "format_names": "repro.io",
    "get_format": "repro.io",
    "detect_format": "repro.io",
    "read_workload": "repro.io",
    "write_workload": "repro.io",
    "read_topology": "repro.io",
    "write_topology": "repro.io",
    # workload generators (light: no simulator import)
    "erdos_renyi_acg": "repro.workloads.pajek",
    "planted_primitive_acg": "repro.workloads.pajek",
    "pajek_benchmark_suite": "repro.workloads.pajek",
    # DSE pipeline + registries (imported only on access — these pull in
    # the simulator, so they must stay out of the module import itself)
    "evaluate": "repro.dse.pipeline",
    "EvaluationSettings": "repro.dse.pipeline",
    "Scenario": "repro.dse.pipeline",
    "ArchitectureMetrics": "repro.dse.pipeline",
    "LIBRARIES": "repro.dse.pipeline",
    "STRATEGIES": "repro.dse.pipeline",
    "TRAFFIC_MODES": "repro.dse.pipeline",
    "SCORES": "repro.dse.pipeline",
    "TrafficModeSpec": "repro.dse.pipeline",
    "get_library": "repro.dse.pipeline",
    "register_library": "repro.dse.pipeline",
    "get_traffic_mode": "repro.dse.pipeline",
    "register_traffic_mode": "repro.dse.pipeline",
    "register_score": "repro.dse.pipeline",
    # DSE scenarios + sweeps
    "SUITES": "repro.dse.scenarios",
    "SuiteSpec": "repro.dse.scenarios",
    "register_suite": "repro.dse.scenarios",
    "suite_names": "repro.dse.scenarios",
    "get_suite": "repro.dse.scenarios",
    "resolve_suite": "repro.dse.scenarios",
    "build_suite": "repro.dse.scenarios",
    "file_scenario": "repro.dse.scenarios",
    "file_suite": "repro.dse.scenarios",
    "run_sweep": "repro.dse.runner",
    "plan_sweep": "repro.dse.runner",
    "run_cells": "repro.dse.runner",
    "ResultCache": "repro.dse.cache",
    "pareto_report": "repro.dse.analysis",
    "pareto_front": "repro.dse.analysis",
    # guided search (multi-fidelity successive halving over the pipeline)
    "run_search": "repro.dse.search",
    "SearchConfig": "repro.dse.search",
    "SearchResult": "repro.dse.search",
    "RungSpec": "repro.dse.search",
    "default_ladder": "repro.dse.search",
    "margin_dominated": "repro.dse.search",
    # observability (stdlib-only: safe to resolve without the simulator)
    "Tracer": "repro.obs",
    "NullTracer": "repro.obs",
    "NULL_TRACER": "repro.obs",
    "Span": "repro.obs",
    "get_tracer": "repro.obs",
    "annotate": "repro.obs",
    "ObsSession": "repro.obs",
    "NULL_SESSION": "repro.obs",
    "use_session": "repro.obs",
    "get_session": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "SimulatorProbe": "repro.obs",
    "EXPORTERS": "repro.obs",
    "ExporterSpec": "repro.obs",
    "register_exporter": "repro.obs",
    "get_exporter": "repro.obs",
    "exporter_names": "repro.obs",
    "write_event_log": "repro.obs",
    "read_event_log": "repro.obs",
    "render_trace_summary": "repro.obs",
}

#: moved/renamed symbols kept alive with a warning: name -> (module,
#: attribute there, replacement to mention).
_DEPRECATED: dict[str, tuple[str, str, str]] = {
    "read_pajek": (
        "repro.io",
        "read_workload",
        "repro.api.read_workload(path, fmt='pajek')",
    ),
    "write_pajek": (
        "repro.io",
        "write_workload",
        "repro.api.write_workload(acg, path, fmt='pajek')",
    ),
    "get_scenario_suite": (
        "repro.dse.scenarios",
        "get_suite",
        "repro.api.get_suite(name)",
    ),
}

__all__ = sorted(_EXPORTS) + sorted(_DEPRECATED)


def __getattr__(name: str) -> object:
    """Resolve a facade name on first access (PEP 562 lazy import)."""
    if name in _EXPORTS:
        value = getattr(import_module(_EXPORTS[name]), name)
        globals()[name] = value  # cache: subsequent access skips __getattr__
        return value
    if name in _DEPRECATED:
        module, attribute, replacement = _DEPRECATED[name]
        warnings.warn(
            f"repro.api.{name} is deprecated; use {replacement}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(import_module(module), attribute)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__() -> list[str]:
    """Advertise the full facade surface to introspection."""
    return sorted(set(globals()) | set(__all__))
