"""Traffic generation for the NoC simulator.

Three kinds of traffic are needed by the experiments:

* **ACG traffic** — the application's communication volumes turned into
  packets (used to exercise a synthesized architecture with exactly the
  traffic its decomposition was derived from);
* **uniform random traffic** — the classical synthetic pattern, used by the
  load/latency sweeps that characterise an architecture's saturation point;
* **permutation-style patterns** (transpose, bit-complement) — stress
  patterns used by the extended benchmarks.

Dependency-aware traffic (the distributed AES rounds) is produced by
:mod:`repro.aes.distributed` as explicit phases and fed to
:meth:`repro.noc.simulator.NoCSimulator.run_phases`.
"""

from __future__ import annotations

import math
import random
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.core.graph import ApplicationGraph
from repro.exceptions import WorkloadError
from repro.noc.packet import Message

NodeId = Hashable


def split_volume_into_messages(
    source: NodeId, destination: NodeId, volume_bits: float, packet_size_bits: int, tag: str = ""
) -> list[Message]:
    """Split a communication volume into packet-sized messages."""
    if packet_size_bits <= 0:
        raise WorkloadError("packet size must be positive")
    if volume_bits <= 0:
        return []
    count = max(1, math.ceil(volume_bits / packet_size_bits))
    remaining = int(round(volume_bits))
    messages: list[Message] = []
    for _ in range(count):
        size = min(packet_size_bits, remaining) if remaining > 0 else packet_size_bits
        size = max(size, 1)
        messages.append(Message(source=source, destination=destination, size_bits=size, tag=tag))
        remaining -= size
    return messages


def acg_messages(acg: ApplicationGraph, packet_size_bits: int = 32, tag: str = "acg") -> list[Message]:
    """One batch of messages carrying every ACG edge's volume once."""
    messages: list[Message] = []
    for source, target in acg.edges():
        messages.extend(
            split_volume_into_messages(
                source, target, acg.volume(source, target), packet_size_bits, tag=tag
            )
        )
    return messages


def uniform_random_messages(
    nodes: Sequence[NodeId],
    num_messages: int,
    size_bits: int = 64,
    seed: int = 0,
) -> list[Message]:
    """Uniform random source/destination pairs (no self-traffic)."""
    if len(nodes) < 2:
        raise WorkloadError("uniform random traffic needs at least two nodes")
    if num_messages < 0:
        raise WorkloadError("message count must be non-negative")
    rng = random.Random(seed)
    messages: list[Message] = []
    for _ in range(num_messages):
        source, destination = rng.sample(list(nodes), 2)
        messages.append(
            Message(source=source, destination=destination, size_bits=size_bits, tag="uniform")
        )
    return messages


def transpose_messages(nodes: Sequence[NodeId], size_bits: int = 64) -> list[Message]:
    """Matrix-transpose pattern: node ``i`` talks to node ``(i*k) mod (n-1)``-style partner.

    For a square arrangement of ``n = k*k`` nodes, node at (row, col) sends to
    the node at (col, row); nodes on the diagonal stay silent.
    """
    count = len(nodes)
    side = int(round(math.sqrt(count)))
    if side * side != count:
        raise WorkloadError("transpose traffic needs a square number of nodes")
    messages: list[Message] = []
    for index, node in enumerate(nodes):
        row, column = divmod(index, side)
        partner_index = column * side + row
        if partner_index == index:
            continue
        messages.append(
            Message(
                source=node,
                destination=nodes[partner_index],
                size_bits=size_bits,
                tag="transpose",
            )
        )
    return messages


def bit_complement_messages(nodes: Sequence[NodeId], size_bits: int = 64) -> list[Message]:
    """Bit-complement pattern: node ``i`` sends to node ``n-1-i``."""
    count = len(nodes)
    if count < 2:
        raise WorkloadError("bit-complement traffic needs at least two nodes")
    messages: list[Message] = []
    for index, node in enumerate(nodes):
        partner = count - 1 - index
        if partner == index:
            continue
        messages.append(
            Message(
                source=node,
                destination=nodes[partner],
                size_bits=size_bits,
                tag="bit_complement",
            )
        )
    return messages


@dataclass(frozen=True)
class InjectionSchedule:
    """Messages with explicit injection cycles (open-loop load sweeps)."""

    entries: tuple[tuple[int, Message], ...]

    @classmethod
    def periodic(
        cls, messages: Sequence[Message], period_cycles: int, seed: int = 0, jitter: int = 0
    ) -> "InjectionSchedule":
        """Spread messages over time, one batch every ``period_cycles``.

        ``jitter`` adds a uniform random offset in ``[0, jitter]`` cycles to
        each injection so that synchronized bursts do not artificially
        serialize on the same channel.
        """
        if period_cycles < 1:
            raise WorkloadError("injection period must be at least one cycle")
        rng = random.Random(seed)
        entries: list[tuple[int, Message]] = []
        for index, message in enumerate(messages):
            offset = rng.randint(0, jitter) if jitter > 0 else 0
            entries.append((index * period_cycles + offset, message))
        return cls(entries=tuple(entries))

    def schedule_onto(self, simulator) -> None:
        """Schedule every entry at its injection cycle on a simulator.

        Open-loop schedules with long inter-injection gaps are where the
        event-driven engine's idle-cycle skipping pays off most; this helper
        keeps the call sites one-liners.
        """
        for cycle, message in self.entries:
            simulator.schedule_message(message, cycle=cycle)

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
