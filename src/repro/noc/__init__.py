"""Cycle-based NoC simulation substrate (routers, packets, traffic, stats)."""

from repro.noc.network import Network
from repro.noc.packet import Message, Packet
from repro.noc.router import LOCAL_PORT, InputBuffer, Router
from repro.noc.simulator import (
    ENGINE_EVENT,
    ENGINE_REFERENCE,
    ENGINES,
    NoCSimulator,
    SimulatorConfig,
)
from repro.noc.stats import SimulationStatistics, throughput_mbps_from_cycles
from repro.noc.traffic import (
    InjectionSchedule,
    acg_messages,
    bit_complement_messages,
    split_volume_into_messages,
    transpose_messages,
    uniform_random_messages,
)

__all__ = [
    "Message",
    "Packet",
    "Router",
    "InputBuffer",
    "LOCAL_PORT",
    "Network",
    "NoCSimulator",
    "SimulatorConfig",
    "ENGINE_EVENT",
    "ENGINE_REFERENCE",
    "ENGINES",
    "SimulationStatistics",
    "throughput_mbps_from_cycles",
    "acg_messages",
    "uniform_random_messages",
    "transpose_messages",
    "bit_complement_messages",
    "split_volume_into_messages",
    "InjectionSchedule",
]
