"""Latency / throughput statistics collected by the NoC simulator.

The paper's prototype comparison uses two figures of merit: the chip
throughput (``128 bits per block * f_clk / cycles-per-block`` in Mbps) and
the average packet latency in cycles.  :class:`SimulationStatistics` gathers
the raw per-packet data and derives those figures, plus the hop and channel
utilisation breakdowns used by the reports.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.noc.packet import Packet

NodeId = Hashable


@dataclass
class SimulationStatistics:
    """Aggregated results of one simulation run."""

    delivered_packets: list[Packet] = field(default_factory=list)
    total_cycles: int = 0
    injected_count: int = 0
    channel_busy_cycles: dict[tuple[NodeId, NodeId], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_injection(self) -> None:
        self.injected_count += 1

    def record_delivery(self, packet: Packet) -> None:
        if not packet.is_delivered:
            raise SimulationError("cannot record an undelivered packet as delivered")
        self.delivered_packets.append(packet)

    def record_channel_busy(self, channel: tuple[NodeId, NodeId], cycles: int) -> None:
        self.channel_busy_cycles[channel] = self.channel_busy_cycles.get(channel, 0) + cycles

    # ------------------------------------------------------------------
    # figures of merit
    # ------------------------------------------------------------------
    @property
    def delivered_count(self) -> int:
        return len(self.delivered_packets)

    def delivery_cycles(self) -> dict[int, int | None]:
        """Per-packet delivery cycle keyed by packet id.

        The engine-equivalence contract is defined over this mapping (plus
        :meth:`summary`): the event-driven and reference engines must agree
        on every packet's delivery cycle, not just on the aggregates.
        """
        return {packet.packet_id: packet.delivery_cycle for packet in self.delivered_packets}

    @property
    def all_delivered(self) -> bool:
        return self.delivered_count == self.injected_count

    def average_latency_cycles(self) -> float:
        if not self.delivered_packets:
            raise SimulationError("no packets were delivered; latency is undefined")
        return sum(packet.latency for packet in self.delivered_packets) / self.delivered_count

    def max_latency_cycles(self) -> int:
        if not self.delivered_packets:
            raise SimulationError("no packets were delivered; latency is undefined")
        return max(packet.latency for packet in self.delivered_packets)

    def average_hops(self) -> float:
        if not self.delivered_packets:
            raise SimulationError("no packets were delivered; hop count is undefined")
        return sum(packet.hops for packet in self.delivered_packets) / self.delivered_count

    def total_bits_delivered(self) -> int:
        return sum(packet.size_bits for packet in self.delivered_packets)

    def throughput_bits_per_cycle(self) -> float:
        if self.total_cycles <= 0:
            raise SimulationError("throughput needs a positive cycle count")
        return self.total_bits_delivered() / self.total_cycles

    def throughput_mbps(self, frequency_mhz: float) -> float:
        """Delivered payload throughput in Mbps at the given clock frequency."""
        return self.throughput_bits_per_cycle() * frequency_mhz

    def channel_utilization(self) -> dict[tuple[NodeId, NodeId], float]:
        """Busy fraction of every channel over the simulated interval."""
        if self.total_cycles <= 0:
            return {}
        return {
            channel: busy / self.total_cycles
            for channel, busy in self.channel_busy_cycles.items()
        }

    def max_channel_utilization(self) -> float:
        utilization = self.channel_utilization()
        return max(utilization.values()) if utilization else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "injected": float(self.injected_count),
            "delivered": float(self.delivered_count),
            "total_cycles": float(self.total_cycles),
            "average_latency_cycles": self.average_latency_cycles(),
            "max_latency_cycles": float(self.max_latency_cycles()),
            "average_hops": self.average_hops(),
            "throughput_bits_per_cycle": self.throughput_bits_per_cycle(),
            "max_channel_utilization": self.max_channel_utilization(),
        }


def throughput_mbps_from_cycles(
    bits_per_block: int, cycles_per_block: float, frequency_mhz: float
) -> float:
    """The paper's throughput formula: ``bits/block * f_clk / cycles/block``.

    With 128-bit blocks at 100 MHz, 271 cycles/block gives 47.2 Mbps and
    199 cycles/block gives 64.3 Mbps, matching Section 5.2.
    """
    if cycles_per_block <= 0:
        raise SimulationError("cycles per block must be positive")
    return bits_per_block * frequency_mhz / cycles_per_block
