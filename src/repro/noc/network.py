"""The network fabric: routers wired according to a topology.

:class:`Network` owns the :class:`~repro.noc.router.Router` instances, the
channel occupancy state and the in-flight packets; the cycle loop itself
lives in :mod:`repro.noc.simulator`.  Routing is pluggable: any callable
``route(current, destination) -> next_hop`` works, so the same fabric runs
the mesh baseline (XY routing) and the synthesized customized topologies
(table routing from the decomposition's schedules).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass

from repro.arch.topology import Topology
from repro.exceptions import SimulationError
from repro.noc.packet import Packet
from repro.noc.router import LOCAL_PORT, Router

NodeId = Hashable
RoutingFunction = Callable[[NodeId, NodeId], NodeId]


@dataclass
class InFlight:
    """A packet currently traversing a channel."""

    packet: Packet
    upstream: NodeId
    downstream: NodeId
    arrival_cycle: int


class Network:
    """Routers + channels + in-flight packets for one architecture."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingFunction,
        buffer_capacity_packets: int = 4,
        pipeline_delay_cycles: int = 1,
    ) -> None:
        self.topology = topology
        self.routing = routing
        self.pipeline_delay_cycles = pipeline_delay_cycles
        self.routers: dict[NodeId, Router] = {
            node: Router(
                node,
                buffer_capacity_packets=buffer_capacity_packets,
                pipeline_delay_cycles=pipeline_delay_cycles,
            )
            for node in topology.routers()
        }
        for channel in topology.channels():
            self.routers[channel.target].add_input_port(channel.source)
        self.channel_free_at: dict[tuple[NodeId, NodeId], int] = {
            (channel.source, channel.target): 0 for channel in topology.channels()
        }
        self.in_flight: list[InFlight] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def router(self, node: NodeId) -> Router:
        try:
            return self.routers[node]
        except KeyError as error:
            raise SimulationError(f"no router {node!r} in the network") from error

    def next_hop(self, current: NodeId, destination: NodeId) -> NodeId:
        next_hop = self.routing(current, destination)
        if not self.topology.has_channel(current, next_hop):
            raise SimulationError(
                f"routing function returned {next_hop!r} from {current!r} towards "
                f"{destination!r}, but that channel does not exist"
            )
        return next_hop

    def is_idle(self) -> bool:
        """True when no packet is buffered or in flight anywhere."""
        if self.in_flight:
            return False
        return all(router.occupancy() == 0 for router in self.routers.values())

    def buffered_packets(self) -> int:
        return sum(router.occupancy() for router in self.routers.values())

    def channel_length_mm(self, source: NodeId, target: NodeId) -> float:
        return self.topology.channel(source, target).length_mm

    # ------------------------------------------------------------------
    # state changes used by the simulator
    # ------------------------------------------------------------------
    def inject(self, packet: Packet, node: NodeId) -> None:
        self.router(node).inject(packet)

    def launch(self, packet: Packet, upstream: NodeId, downstream: NodeId, arrival_cycle: int) -> None:
        self.in_flight.append(
            InFlight(
                packet=packet,
                upstream=upstream,
                downstream=downstream,
                arrival_cycle=arrival_cycle,
            )
        )

    def deliver_arrivals(self, cycle: int) -> None:
        """Move in-flight packets whose transfer has completed into the
        downstream input buffers (retrying next cycle when the buffer is full)."""
        still_flying: list[InFlight] = []
        for flight in self.in_flight:
            if flight.arrival_cycle > cycle:
                still_flying.append(flight)
                continue
            downstream = self.router(flight.downstream)
            if downstream.can_accept(flight.upstream):
                downstream.accept(flight.upstream, flight.packet)
            else:
                flight.arrival_cycle = cycle + 1
                still_flying.append(flight)
        self.in_flight = still_flying

    def output_request(self, router_node: NodeId, packet: Packet) -> object:
        """The output a head packet requests at ``router_node``."""
        if packet.destination == router_node:
            return LOCAL_PORT
        return self.next_hop(router_node, packet.destination)
