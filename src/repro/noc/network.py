"""The network fabric: routers wired according to a topology.

:class:`Network` owns the :class:`~repro.noc.router.Router` instances, the
channel occupancy state and the in-flight packets; the cycle loop itself
lives in :mod:`repro.noc.simulator`.  Routing is pluggable: any callable
``route(current, destination) -> next_hop`` works, so the same fabric runs
the mesh baseline (XY routing) and the synthesized customized topologies
(table routing from the decomposition's schedules).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass

from repro.arch.topology import Topology
from repro.exceptions import SimulationError
from repro.noc.packet import Packet
from repro.noc.router import LOCAL_PORT, Router

NodeId = Hashable
RoutingFunction = Callable[[NodeId, NodeId], NodeId]


@dataclass
class InFlight:
    """A packet currently traversing a channel."""

    packet: Packet
    upstream: NodeId
    downstream: NodeId
    arrival_cycle: int


class Network:
    """Routers + channels + in-flight packets for one architecture."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingFunction,
        buffer_capacity_packets: int = 4,
        pipeline_delay_cycles: int = 1,
    ) -> None:
        self.topology = topology
        self._routing = routing
        self._route_cache: dict[tuple[NodeId, NodeId], NodeId] = {}
        self.buffer_capacity_packets = buffer_capacity_packets
        self.pipeline_delay_cycles = pipeline_delay_cycles
        self.routers: dict[NodeId, Router] = {
            node: Router(
                node,
                buffer_capacity_packets=buffer_capacity_packets,
                pipeline_delay_cycles=pipeline_delay_cycles,
            )
            for node in topology.routers()
        }
        for channel in topology.channels():
            self.routers[channel.target].add_input_port(channel.source)
        self.channel_free_at: dict[tuple[NodeId, NodeId], int] = {
            (channel.source, channel.target): 0 for channel in topology.channels()
        }
        self.in_flight: list[InFlight] = []
        self._next_arrival: int | None = None
        """Incrementally maintained min arrival cycle over ``in_flight``
        (updated on launch and on every delivery pass), so the event engine
        never scans the in-flight list to find its next event."""

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def router(self, node: NodeId) -> Router:
        try:
            return self.routers[node]
        except KeyError as error:
            raise SimulationError(f"no router {node!r} in the network") from error

    @property
    def routing(self) -> RoutingFunction:
        return self._routing

    @routing.setter
    def routing(self, routing: RoutingFunction) -> None:
        """Swap the routing function, dropping every memoized decision."""
        self._routing = routing
        self._route_cache.clear()

    def sync_topology(self) -> None:
        """Re-wire the fabric after the topology gained routers or channels.

        Router instances, downstream input ports and channel occupancy state
        are all materialized at construction, and :meth:`next_hop` memoizes
        routing decisions validated against the *then-current* channel set —
        so a channel (or router) added to the topology afterwards is
        invisible: packets routed over it would be refused at the missing
        input port, and a memoized decision that predates the mutation would
        keep winning even when the new channel makes it stale.  Call this
        after any post-construction topology mutation; it wires the new
        elements in and drops every memoized routing decision.  When the
        network is owned by a :class:`~repro.noc.simulator.NoCSimulator`,
        call the simulator's ``sync_topology()`` instead — it delegates
        here and also refreshes the engine's own per-router bookkeeping,
        which a new *router* needs.  (A frozen
        :meth:`~repro.routing.table.RoutingTable.frozen_next_hop` snapshot
        is a deliberate point-in-time copy: re-freeze the table and assign
        :attr:`routing` to pick up new table entries.)
        """
        for node in self.topology.routers():
            if node not in self.routers:
                self.routers[node] = Router(
                    node,
                    buffer_capacity_packets=self.buffer_capacity_packets,
                    pipeline_delay_cycles=self.pipeline_delay_cycles,
                )
        for channel in self.topology.channels():
            key = (channel.source, channel.target)
            self.routers[channel.target].add_input_port(channel.source)
            if key not in self.channel_free_at:
                self.channel_free_at[key] = 0
        self._route_cache.clear()

    def next_hop(self, current: NodeId, destination: NodeId) -> NodeId:
        """The (memoized) routing decision for a packet at ``current``.

        Routing functions must be deterministic and stateless in
        ``(current, destination)`` — every routing adapter in the library is
        — so each decision is resolved and channel-validated once and then
        served from a flat per-pair table, instead of re-invoking the
        routing closure for every nomination of every cycle.
        """
        key = (current, destination)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        next_hop = self._routing(current, destination)
        if not self.topology.has_channel(current, next_hop):
            raise SimulationError(
                f"routing function returned {next_hop!r} from {current!r} towards "
                f"{destination!r}, but that channel does not exist"
            )
        self._route_cache[key] = next_hop
        return next_hop

    def is_idle(self) -> bool:
        """True when no packet is buffered or in flight anywhere."""
        if self.in_flight:
            return False
        return all(router.occupancy() == 0 for router in self.routers.values())

    def buffered_packets(self) -> int:
        return sum(router.occupancy() for router in self.routers.values())

    def next_arrival_cycle(self) -> int | None:
        """Earliest cycle at which an in-flight packet can arrive, if any."""
        return self._next_arrival

    def stuck_packets(self) -> list[tuple[Packet, NodeId]]:
        """Every undelivered packet with the router it is at (or flying to).

        Used by the drain-budget error so routing-loop and deadlock triage
        can name the culprits (id, position, destination, hops so far)
        without a debugger.  Sorted by packet id for stable messages.
        """
        stuck: list[tuple[Packet, NodeId]] = []
        for node, router in self.routers.items():
            for port in router.ports():
                for packet in router.buffer(port).queue:
                    stuck.append((packet, node))
        for flight in self.in_flight:
            stuck.append((flight.packet, flight.downstream))
        stuck.sort(key=lambda item: item[0].packet_id)
        return stuck

    def channel_length_mm(self, source: NodeId, target: NodeId) -> float:
        return self.topology.channel(source, target).length_mm

    # ------------------------------------------------------------------
    # state changes used by the simulator
    # ------------------------------------------------------------------
    def inject(self, packet: Packet, node: NodeId) -> None:
        self.router(node).inject(packet)

    def launch(self, packet: Packet, upstream: NodeId, downstream: NodeId, arrival_cycle: int) -> None:
        self.in_flight.append(
            InFlight(
                packet=packet,
                upstream=upstream,
                downstream=downstream,
                arrival_cycle=arrival_cycle,
            )
        )
        if self._next_arrival is None or arrival_cycle < self._next_arrival:
            self._next_arrival = arrival_cycle

    def deliver_arrivals(self, cycle: int) -> list[NodeId]:
        """Move in-flight packets whose transfer has completed into the
        downstream input buffers (retrying next cycle when the buffer is
        full).  Returns the routers that received a packet this cycle, which
        is what the event-driven engine uses to (re-)activate them."""
        if self._next_arrival is not None and self._next_arrival > cycle:
            return []
        still_flying: list[InFlight] = []
        receivers: list[NodeId] = []
        next_arrival: int | None = None
        for flight in self.in_flight:
            if flight.arrival_cycle > cycle:
                still_flying.append(flight)
            else:
                downstream = self.router(flight.downstream)
                if downstream.can_accept(flight.upstream):
                    downstream.accept(flight.upstream, flight.packet)
                    receivers.append(flight.downstream)
                    continue
                flight.arrival_cycle = cycle + 1
                still_flying.append(flight)
            if next_arrival is None or flight.arrival_cycle < next_arrival:
                next_arrival = flight.arrival_cycle
        self.in_flight = still_flying
        self._next_arrival = next_arrival
        return receivers

    def output_request(self, router_node: NodeId, packet: Packet) -> object:
        """The output a head packet requests at ``router_node``."""
        destination = packet.message.destination
        if destination == router_node:
            return LOCAL_PORT
        hop = self._route_cache.get((router_node, destination))
        if hop is not None:
            return hop
        return self.next_hop(router_node, destination)
