"""Batched numpy NoC engine: many sweep cells advance per array operation.

The third simulator engine (``SimulatorConfig.engine="batch"``) lays the
router/channel state of a whole *batch* of simulations out as flat numpy
arrays over ``(cell, port)`` and ``(cell, channel)`` and vectorizes the
per-cycle scan — occupancy, route lookup, round-robin arbitration,
channel/backpressure feasibility — across every cell at once.  All cells
share one topology and one routing function (that is what makes the
array layout rectangular); everything else — buffer capacity, pipeline
delay, flit width, technology, traffic, even the op program — may differ
per cell.  Per-cell completion masks stop finished cells from
contributing work, so a batch is exactly as expensive as its slowest
member, amortized.

Bit-exactness with the scalar engines is by construction, not by
sampling:

* cells are fully independent, and every per-cell comparison (arbitration
  pointer, channel release, injection due-ness) uses that cell's own
  cycle counter, so batching can never couple two simulations;
* within one executed cycle the vectorized phases replay the reference
  engine's order exactly — injections in ``(cycle, packet_id)`` order,
  in-flight arrivals in launch order with full-buffer retries keeping
  their list position, then per-router arbitration in the global router
  order with winners applied in round-robin scan order.  The one
  intra-cycle coupling (a pop at an earlier-ordered router freeing
  buffer space that a later-ordered router's forward needs) is resolved
  by a conservative fixpoint: round 0 admits every forward whose
  pre-cycle state allows it (counts only shrink during the router phase,
  so those are certainly correct), then blocked forwards are re-admitted
  exactly when the freeing pop happened at a router *earlier* in the
  processing order — the same state the dense loop would have observed;
* energy flushes reuse the scalar :class:`~repro.energy.power
  .EnergyAccount` call sequence verbatim (integer switch/link-bit
  counters, one ``charge_link`` per channel in first-launch order per
  finalize interval), so the floating-point totals are bit-identical.

Cycle advance is per cell and deterministic: a cell with buffered
packets executes its next cycle; an empty cell jumps straight to its
next injection or arrival (executing a cycle in which no router holds a
packet is a strict no-op — the event engine's own skipping argument).
``cycles_stepped`` is therefore a pure function of the cell's own
workload, never of who else shares the batch.

numpy is imported lazily on first use and is a dependency of this batch
path only — the scalar engines, and ``import repro.api``, stay
numpy-free.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.arch.topology import Topology
from repro.energy.power import EnergyAccount
from repro.energy.technology import DEFAULT_TECHNOLOGY, Technology
from repro.exceptions import ReproError, SimulationError
from repro.noc.packet import Message, Packet
from repro.noc.stats import SimulationStatistics
from repro.obs import SimulatorProbe

NodeId = Hashable

#: sentinel cycle meaning "no such event is scheduled"
_NEVER = 2**62

_MODE_IDLE = 0
_MODE_DRAIN = 1
_MODE_RUN = 2

_numpy = None


def require_numpy():
    """Import numpy on first use; a clear error when it is unavailable.

    numpy is deliberately a dependency of the batch engine alone: the
    scalar engines and the ``repro.api`` facade must keep working (and
    importing) without it.
    """
    global _numpy
    if _numpy is None:
        try:
            import numpy
        except ImportError as error:  # pragma: no cover - numpy ships in CI
            raise SimulationError(
                "the 'batch' simulator engine requires numpy, which is not "
                "installed; use the 'event' or 'reference' engine instead"
            ) from error
        _numpy = numpy
    return _numpy


# ----------------------------------------------------------------------
# per-cell op programs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleOp:
    """Schedule messages at the cell's then-current cycle (instantaneous)."""

    messages: tuple[Message, ...]


@dataclass(frozen=True)
class DrainOp:
    """Run until the cell's network drains (``run_until_drained``)."""

    max_cycles: int | None = None


@dataclass(frozen=True)
class RunOp:
    """Run the cell for a fixed number of cycles (``run``)."""

    cycles: int


@dataclass
class _Cell:
    """Python-side (cold) state of one batch cell."""

    config: object  # SimulatorConfig (duck-typed to avoid a circular import)
    technology: Technology
    statistics: SimulationStatistics = field(default_factory=SimulationStatistics)
    energy: EnergyAccount = field(default_factory=EnergyAccount)
    probe: SimulatorProbe | None = None
    pending: list[tuple[int, int, int]] = field(default_factory=list)
    """Heap of ``(injection_cycle, local_packet_id, global_pid)``."""
    flights: list[list[int]] = field(default_factory=list)
    """In-flight packets as mutable ``[arrival_cycle, pid, channel]`` in
    launch order; a full-buffer retry rewrites the arrival in place so the
    flight keeps its list position, exactly like ``Network.in_flight``."""
    link_bits: dict[int, int] = field(default_factory=dict)
    """Per-channel traversal bits since the last energy flush; insertion
    order is first-launch order, which fixes the ``charge_link`` order."""
    ops: deque = field(default_factory=deque)
    next_packet_id: int = 0
    leakage_charged_until: int = 0
    drain_start: int = 0
    drain_budget: int = 0
    run_target: int = 0
    error: Exception | None = None

    @property
    def cap(self) -> int:
        return self.config.buffer_capacity_packets


class BatchSimulator:
    """Drives a batch of cells over one shared ``(topology, routing)``.

    The per-cell surface mirrors :class:`~repro.noc.simulator.NoCSimulator`
    — schedule messages, enqueue drain/run ops, read back statistics,
    energy and engine provenance — while :meth:`execute` advances every
    cell's op program inside one vectorized loop.  A cell whose drain
    budget is exhausted (or whose routing is broken) fails *individually*:
    its :class:`SimulationError`/:class:`~repro.exceptions.RoutingError`
    is captured on the cell and the rest of the batch keeps running.
    """

    def __init__(
        self,
        topology: Topology,
        routing,
        configs: Sequence[object],
        technologies: Sequence[Technology] | None = None,
    ) -> None:
        np = require_numpy()
        self._np = np
        self.topology = topology
        self._routing = routing
        if not configs:
            raise SimulationError("a batch needs at least one cell")
        for config in configs:
            if config.buffer_capacity_packets < 1:
                raise SimulationError("router buffers must hold at least one packet")
            if config.router_pipeline_delay_cycles < 1:
                raise SimulationError("router pipeline delay must be at least one cycle")
        if technologies is None:
            technologies = [DEFAULT_TECHNOLOGY] * len(configs)
        if len(technologies) != len(configs):
            raise SimulationError("one technology per cell is required")

        # -- shared index spaces ----------------------------------------
        self._routers: list[NodeId] = topology.routers()
        self._router_index = {node: index for index, node in enumerate(self._routers)}
        self._num_routers = len(self._routers)
        channels = topology.channels()
        self._chan_key: list[tuple[NodeId, NodeId]] = [
            (channel.source, channel.target) for channel in channels
        ]
        self._chan_index = {key: index for index, key in enumerate(self._chan_key)}
        self._chan_length: list[float] = [channel.length_mm for channel in channels]
        self._num_channels = len(channels)

        # ports per router: the local injection port first, then one port
        # per incoming channel in channel-declaration order — the exact
        # buffer scan order Router builds, which round-robin ranks index
        port_router: list[int] = []
        port_rank: list[int] = []
        self._local_port: list[int] = []
        port_of: dict[tuple[int, int], int] = {}
        upstreams: dict[int, list[int]] = {r: [] for r in range(self._num_routers)}
        for channel in channels:
            target = self._router_index[channel.target]
            source = self._router_index[channel.source]
            if source not in upstreams[target]:
                upstreams[target].append(source)
        for r in range(self._num_routers):
            self._local_port.append(len(port_router))
            port_router.append(r)
            port_rank.append(0)
            for rank, upstream in enumerate(upstreams[r], start=1):
                port_of[(r, upstream)] = len(port_router)
                port_router.append(r)
                port_rank.append(rank)
        self._num_ports = len(port_router)
        self._port_router = np.asarray(port_router, dtype=np.int64)
        self._port_router_py = port_router
        self._port_rank = np.asarray(port_rank, dtype=np.int64)
        nports = [len(upstreams[r]) + 1 for r in range(self._num_routers)]
        self._port_nports = np.asarray(
            [nports[r] for r in port_router], dtype=np.int64
        )
        chan_src = [self._router_index[s] for s, _ in self._chan_key]
        chan_dst = [self._router_index[t] for _, t in self._chan_key]
        self._chan_src = np.asarray(chan_src, dtype=np.int64)
        self._chan_dst = np.asarray(chan_dst, dtype=np.int64)
        self._chan_dst_py = chan_dst
        dst_port = [port_of[(t, s)] for s, t in zip(chan_src, chan_dst)]
        self._chan_dst_port = np.asarray(dst_port, dtype=np.int64)
        self._chan_dst_port_py = dst_port

        # lazily resolved routing: (router, destination) -> channel index.
        # -1 = not yet asked; resolution failures are cached so every cell
        # whose head first requests the broken pair fails with the same
        # error the scalar engines raise at their own first nomination.
        self._route_chan = np.full(
            (self._num_routers, self._num_routers), -1, dtype=np.int64
        )
        self._route_errors: dict[tuple[int, int], Exception] = {}
        self._path_cache: dict[tuple[int, int], list[NodeId]] = {}
        # fused (port, destination) -> output-slot table: a local head's
        # slot is its ejection slot ``num_channels + router`` (filled up
        # front, since a port's router is static), a forwarding head's
        # slot is its resolved channel index.  One 2-D gather then covers
        # route lookup, the local/forward test and slot construction;
        # -1 still flags an unresolved route.
        self._pd_slot = np.full(
            (self._num_ports, self._num_routers), -1, dtype=np.int64
        )
        self._pd_slot[np.arange(self._num_ports), self._port_router] = (
            self._num_channels + self._port_router
        )
        # "a pop at this channel's destination frees a buffer earlier in
        # the dense processing order" predicate, used by the fixpoint
        self._chan_earlier = self._chan_dst < self._chan_src
        # prepared ScheduleOps keyed by (tuple identity, flit width): every
        # cell of a DSE batch replays the same op program, so the validated
        # per-message columns are computed once per op, not once per cell
        self._sched_cache: dict[tuple[int, int], tuple] = {}

        # -- per-cell state ---------------------------------------------
        batch = len(configs)
        self.num_cells = batch
        self._cells = [
            _Cell(config=config, technology=technology, energy=EnergyAccount(technology=technology))
            for config, technology in zip(configs, technologies)
        ]
        # bound once: the delivered-packets list is never replaced, and the
        # delivery hot path should not chase three attributes per packet
        self._deliver_append = [
            cell.statistics.delivered_packets.append for cell in self._cells
        ]
        self._queues: list[list[deque[int]]] = [
            [deque() for _ in range(self._num_ports)] for _ in range(batch)
        ]
        # hot per-cell state lives in plain python lists — it is read and
        # written one event at a time, where list indexing beats numpy
        # scalar indexing severalfold.  Buffer counts and head destinations
        # are flat ``cell * num_ports + port`` lists; the router phase
        # snapshots them into numpy once per executed cycle (one bulk
        # conversion instead of thousands of scalar round trips).  Only
        # state that is exclusively touched vectorized (chan_free, the
        # arbitration scratch) stays in numpy arrays.
        self._cycle: list[int] = [0] * batch
        self._cycles_stepped: list[int] = [0] * batch
        self._mode: list[int] = [_MODE_IDLE] * batch
        self._next_inj: list[int] = [_NEVER] * batch
        self._next_arr: list[int] = [_NEVER] * batch
        self._buf_total: list[int] = [0] * batch
        self._cnt_router: list[list[int]] = [[0] * self._num_routers for _ in range(batch)]
        # per (cell, port), stride 3: [buffer count, head destination,
        # head packet id] — one flat list so the router phase snapshots
        # all of it with a single bulk conversion
        self._port_state: list[int] = [0, -1, -1] * (batch * self._num_ports)
        self._chan_free = np.zeros((batch, max(self._num_channels, 1)), dtype=np.int64)
        self._switch_acc: list[int] = [0] * batch
        self._cap = np.asarray(
            [config.buffer_capacity_packets for config in configs], dtype=np.int64
        )
        self._pipe = np.asarray(
            [config.router_pipeline_delay_cycles for config in configs], dtype=np.int64
        )
        self._alive = np.ones(batch, dtype=bool)
        self._alive_py: list[bool] = [True] * batch
        self._probed: list[bool] = [False] * batch

        # arbitration key packing: (cell, output-slot) group in the high
        # bits, round-robin key in the low bits — one argsort then selects
        # every output's winner (smallest key per group)
        self._key_shift = (self._num_ports * (self._num_ports + 1)).bit_length()
        self._popped = np.zeros((batch, self._num_ports), dtype=bool)

        # the global packet table (shared across cells; mirrors refreshed
        # into numpy whenever scheduling grows the python-side lists)
        self._pk_obj: list[Packet] = []
        self._pk_src: list[int] = []
        self._pk_dest: list[int] = []
        self._pk_size: list[int] = []
        self._pk_flits: list[int] = []
        self._pk_hops: list[int] = []
        self._pk_local: list[int] = []
        self._busy: set[int] = set()

    # ------------------------------------------------------------------
    # per-cell surface
    # ------------------------------------------------------------------
    def cell(self, index: int) -> _Cell:
        return self._cells[index]

    def attach_probe(self, index: int, probe: SimulatorProbe) -> SimulatorProbe:
        """Attach a probe; per-router occupancy bookkeeping starts here.

        Occupancy counters are only ever read by probes, so unprobed cells
        skip them entirely; attaching rebuilds the router totals from the
        live per-port counts, which is exactly the occupancy a scalar
        probe would observe from this event on.
        """
        self._cells[index].probe = probe
        if not self._probed[index]:
            self._probed[index] = True
            base = index * self._num_ports
            state = self._port_state
            cnt_router = self._cnt_router[index]
            for router in range(self._num_routers):
                start = self._local_port[router]
                stop = (
                    self._local_port[router + 1]
                    if router + 1 < self._num_routers
                    else self._num_ports
                )
                cnt_router[router] = sum(
                    state[3 * (base + p)] for p in range(start, stop)
                )
        return probe

    def statistics(self, index: int) -> SimulationStatistics:
        return self._cells[index].statistics

    def energy(self, index: int) -> EnergyAccount:
        return self._cells[index].energy

    def error(self, index: int) -> Exception | None:
        return self._cells[index].error

    def current_cycle(self, index: int) -> int:
        return self._cycle[index]

    def cycles_stepped(self, index: int) -> int:
        return self._cycles_stepped[index]

    def schedule_message(
        self, index: int, message: Message, cycle: int | None = None
    ) -> Packet:
        """Queue one message for injection (the scalar engines' contract)."""
        cell = self._cells[index]
        now = self._cycle[index]
        if cycle is None:
            cycle = now
        if cycle < now:
            raise SimulationError("cannot schedule a message in the past")
        if message.source not in self._router_index:
            raise SimulationError(f"unknown source router {message.source!r}")
        if message.destination not in self._router_index:
            raise SimulationError(f"unknown destination router {message.destination!r}")
        local_id = cell.next_packet_id
        cell.next_packet_id += 1
        packet = Packet.from_message(
            local_id, message, cell.config.flit_width_bits, cycle
        )
        pid = len(self._pk_obj)
        self._pk_obj.append(packet)
        self._pk_src.append(self._router_index[message.source])
        self._pk_dest.append(self._router_index[message.destination])
        self._pk_size.append(message.size_bits)
        self._pk_flits.append(packet.num_flits)
        self._pk_hops.append(0)
        self._pk_local.append(local_id)
        heapq.heappush(cell.pending, (cycle, local_id, pid))
        if cycle < self._next_inj[index]:
            self._next_inj[index] = cycle
        cell.statistics.record_injection()
        return packet

    def schedule_messages(
        self, index: int, messages: Iterable[Message], cycle: int | None = None
    ) -> None:
        for message in messages:
            self.schedule_message(index, message, cycle)

    def enqueue(self, index: int, op: ScheduleOp | DrainOp | RunOp) -> None:
        """Append one op to the cell's program (executed by :meth:`execute`)."""
        cell = self._cells[index]
        if cell.error is not None:
            return  # a failed cell ignores further work, like a raised scalar run
        cell.ops.append(op)
        self._busy.add(index)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, raise_errors: bool = False) -> None:
        """Advance every cell's op program to completion (or failure).

        With ``raise_errors`` the first failed cell's captured exception is
        re-raised after the batch settles — the single-cell facade uses
        this to reproduce the scalar engines' raise-from-``run_*``
        behaviour exactly.
        """
        np = self._np
        busy = self._busy
        settle = self._settle
        alive = self._alive_py
        cyc = self._cycle
        stepped = self._cycles_stepped
        next_inj = self._next_inj
        next_arr = self._next_arr
        while busy:
            execs = [index for index in sorted(busy) if settle(index)]
            if not execs:
                break
            active = np.asarray(execs, dtype=np.int64)
            cyc_active = np.asarray([cyc[index] for index in execs], dtype=np.int64)
            for index in execs:
                now = cyc[index]
                if next_inj[index] <= now:
                    self._inject_due(index)
                if next_arr[index] <= now:
                    self._deliver_arrivals(index)
            self._route_and_forward(active, cyc_active)
            # a cell that failed mid-cycle (routing error) keeps its cycle
            # counters, like the scalar raise before the end-of-step bump
            for index in execs:
                if alive[index]:
                    stepped[index] += 1
                    cyc[index] += 1
        if raise_errors:
            for cell in self._cells:
                if cell.error is not None:
                    raise cell.error

    # -- op/state settlement -------------------------------------------
    def _settle(self, index: int) -> bool:
        """Advance ops/jumps until the cell must execute a cycle.

        Returns True when the cell participates in this iteration (its
        ``cycle`` entry is the cycle to execute), False when it went idle,
        completed its program or failed.
        """
        cell = self._cells[index]
        while True:
            mode = self._mode[index]
            if mode == _MODE_IDLE:
                if not cell.ops:
                    self._busy.discard(index)
                    return False
                self._start_op(index, cell, cell.ops.popleft())
                continue
            if mode == _MODE_DRAIN:
                if self._buf_total[index] == 0:
                    next_inj = self._next_inj[index]
                    next_arr = self._next_arr[index]
                    if next_inj >= _NEVER and next_arr >= _NEVER:
                        self._finish_op(index)
                        continue
                    event = min(next_inj, next_arr)
                else:
                    event = self._cycle[index]
                if event - cell.drain_start > cell.drain_budget:
                    self._cycle[index] = cell.drain_start + cell.drain_budget + 1
                    self._fail(index, self._drain_budget_error(index))
                    return False
                self._cycle[index] = event
                return True
            # _MODE_RUN
            target = cell.run_target
            if self._cycle[index] >= target:
                self._finish_op(index)
                continue
            if self._buf_total[index] == 0:
                event = min(self._next_inj[index], self._next_arr[index], target)
                if event >= target:
                    self._cycle[index] = target
                    self._finish_op(index)
                    continue
                self._cycle[index] = event
            return True

    def _start_op(self, index: int, cell: _Cell, op) -> None:
        if isinstance(op, ScheduleOp):
            self._schedule_bulk(index, cell, op.messages)
            return
        if isinstance(op, DrainOp):
            self._mode[index] = _MODE_DRAIN
            cell.drain_start = self._cycle[index]
            budget = op.max_cycles
            cell.drain_budget = budget if budget is not None else cell.config.max_cycles
            return
        if isinstance(op, RunOp):
            if op.cycles < 0:
                raise SimulationError("cannot run a negative number of cycles")
            self._mode[index] = _MODE_RUN
            cell.run_target = self._cycle[index] + op.cycles
            return
        raise SimulationError(f"unknown batch op {op!r}")  # pragma: no cover

    def _schedule_bulk(self, index: int, cell: _Cell, messages: tuple[Message, ...]) -> None:
        """Schedule a whole ``ScheduleOp`` without per-message call layering.

        Validation, packet construction and bookkeeping are inlined — same
        checks, same error text, same resulting state as calling
        :meth:`schedule_message` once per message (on a raise, the messages
        before the invalid one stay committed, like the scalar loop).
        """
        now = self._cycle[index]
        flit_width = cell.config.flit_width_bits
        pending = cell.pending
        heap_ordered = not pending  # in-order appends then keep a valid heap
        local_id = cell.next_packet_id
        pid = len(self._pk_obj)
        cached = self._sched_cache.get((id(messages), flit_width))
        if cached is not None and cached[0] is messages:
            # the same ScheduleOp re-scheduled (every cell in a DSE batch
            # shares the scenario's op program): validation and flit math
            # are position-independent, so replay the prepared columns with
            # C-level extends and only build the per-cell Packet objects
            _, srcs, dsts, sizes, flitss, sources = cached
            n = len(srcs)
            append_obj = self._pk_obj.append
            for message, num_flits, source in zip(messages, flitss, sources):
                append_obj(Packet(local_id, message, num_flits, now, None, 0, [source]))
                local_id += 1
            self._pk_src.extend(srcs)
            self._pk_dest.extend(dsts)
            self._pk_size.extend(sizes)
            self._pk_flits.extend(flitss)
            self._pk_hops.extend([0] * n)
            first = cell.next_packet_id
            self._pk_local.extend(range(first, first + n))
            pending.extend(zip([now] * n, range(first, first + n), range(pid, pid + n)))
            cell.next_packet_id = local_id
            if not heap_ordered:
                heapq.heapify(pending)
            if now < self._next_inj[index]:
                self._next_inj[index] = now
            cell.statistics.injected_count += n
            return
        rindex = self._router_index
        append_obj = self._pk_obj.append
        append_src = self._pk_src.append
        append_dest = self._pk_dest.append
        append_size = self._pk_size.append
        append_flits = self._pk_flits.append
        append_hops = self._pk_hops.append
        append_local = self._pk_local.append
        append_pending = pending.append
        ceil = math.ceil
        srcs: list[int] = []
        dsts: list[int] = []
        sizes: list[int] = []
        flitss: list[int] = []
        sources: list[NodeId] = []
        count = 0
        complete = False
        try:
            for message in messages:
                source = message.source
                src = rindex.get(source)
                if src is None:
                    raise SimulationError(f"unknown source router {source!r}")
                dst = rindex.get(message.destination)
                if dst is None:
                    raise SimulationError(
                        f"unknown destination router {message.destination!r}"
                    )
                if flit_width <= 0:
                    raise SimulationError("flit width must be positive")
                size = message.size_bits
                num_flits = ceil(size / flit_width)
                if num_flits < 1:
                    num_flits = 1
                # positional dataclass call — same object from_message builds
                append_obj(Packet(local_id, message, num_flits, now, None, 0, [source]))
                append_src(src)
                append_dest(dst)
                append_size(size)
                append_flits(num_flits)
                append_hops(0)
                append_local(local_id)
                append_pending((now, local_id, pid))
                srcs.append(src)
                dsts.append(dst)
                sizes.append(size)
                flitss.append(num_flits)
                sources.append(source)
                local_id += 1
                pid += 1
                count += 1
            complete = True
        finally:
            if count:
                cell.next_packet_id = local_id
                if not heap_ordered:
                    heapq.heapify(pending)
                if now < self._next_inj[index]:
                    self._next_inj[index] = now
                cell.statistics.injected_count += count
            if complete and count:
                self._sched_cache[(id(messages), flit_width)] = (
                    messages, srcs, dsts, sizes, flitss, sources,
                )

    def _finish_op(self, index: int) -> None:
        """One run/drain op completed: finalize exactly like the scalar runs."""
        cell = self._cells[index]
        now = self._cycle[index]
        cell.statistics.total_cycles = now
        self.flush_energy(index)
        if cell.config.charge_leakage:
            span = now - cell.leakage_charged_until
            if span > 0:
                cell.energy.charge_leakage(self._num_routers, span)
                cell.leakage_charged_until = now
        self._mode[index] = _MODE_IDLE

    def flush_energy(self, index: int) -> None:
        """Fold the cell's batched traversal counters into its account.

        Identical call sequence to the scalar ``_flush_energy_batches``:
        one ``charge_switch`` for the accumulated bits, then one
        ``charge_link`` per channel in first-launch order.
        """
        cell = self._cells[index]
        switch_bits = self._switch_acc[index]
        if switch_bits:
            cell.energy.charge_switch(switch_bits)
            self._switch_acc[index] = 0
        if cell.link_bits:
            for channel, bits in cell.link_bits.items():
                cell.energy.charge_link(bits, self._chan_length[channel])
            cell.link_bits.clear()

    def _fail(self, index: int, error: Exception) -> None:
        cell = self._cells[index]
        if cell.error is None:
            cell.error = error
        cell.ops.clear()
        self._mode[index] = _MODE_IDLE
        self._alive[index] = False
        self._alive_py[index] = False
        self._busy.discard(index)

    def _drain_budget_error(self, index: int) -> SimulationError:
        """The scalar engines' drain-failure error, byte for byte."""
        from repro.noc.simulator import _STUCK_PACKETS_NAMED

        cell = self._cells[index]
        stuck: list[tuple[int, NodeId]] = []
        for port in range(self._num_ports):
            node = self._routers[int(self._port_router[port])]
            for pid in self._queues[index][port]:
                stuck.append((pid, node))
        for flight in cell.flights:
            stuck.append((flight[1], self._routers[self._chan_dst_py[flight[2]]]))
        stuck.sort(key=lambda item: self._pk_local[item[0]])
        named = ", ".join(
            f"#{self._pk_local[pid]} at {where!r} -> "
            f"{self._routers[self._pk_dest[pid]]!r} ({self._pk_hops[pid]} hops)"
            for pid, where in stuck[:_STUCK_PACKETS_NAMED]
        )
        if len(stuck) > _STUCK_PACKETS_NAMED:
            named += f", and {len(stuck) - _STUCK_PACKETS_NAMED} more"
        return SimulationError(
            f"network did not drain within {cell.drain_budget} cycles "
            f"({len(stuck)} packets stuck: {named})"
        )

    # -- one executed cycle --------------------------------------------
    def _inject_due(self, index: int) -> None:
        """Move due pending packets into their source routers' local ports."""
        cell = self._cells[index]
        pending = cell.pending
        now = self._cycle[index]
        probe = cell.probe
        queues = self._queues[index]
        base3 = 3 * index * self._num_ports
        state = self._port_state
        cnt_router = self._cnt_router[index]
        pk_src = self._pk_src
        pk_dest = self._pk_dest
        local_port = self._local_port
        # sorting the heap in place yields the exact heappop order (and a
        # sorted list is still a valid heap for later pushes); the common
        # case — a whole ScheduleOp due at once — then drains with one
        # sort of an already-sorted list instead of per-packet heappops
        pending.sort()
        take = 0
        for item in pending:
            if item[0] > now:
                break
            take += 1
            pid = item[2]
            router = pk_src[pid]
            port = local_port[router]
            queue = queues[port]
            s = base3 + 3 * port
            if not queue:
                state[s + 1] = pk_dest[pid]
                state[s + 2] = pid
            queue.append(pid)
            state[s] += 1
            if probe is not None:
                cnt_router[router] += 1
                probe.record_enqueue(self._routers[router], cnt_router[router])
        if take:
            del pending[:take]
            self._buf_total[index] += take
        self._next_inj[index] = pending[0][0] if pending else _NEVER

    def _deliver_arrivals(self, index: int) -> None:
        """The in-order arrival pass with full-buffer retries.

        Mirrors ``Network.deliver_arrivals``: flights are visited in launch
        order; a due flight whose downstream buffer is full retries next
        cycle without losing its position.
        """
        cell = self._cells[index]
        now = self._cycle[index]
        cap = cell.cap
        probe = cell.probe
        queues = self._queues[index]
        base3 = 3 * index * self._num_ports
        state = self._port_state
        cnt_router = self._cnt_router[index]
        pk_dest = self._pk_dest
        chan_dst = self._chan_dst_py
        chan_dst_port = self._chan_dst_port_py
        still: list[list[int]] = []
        still_append = still.append
        pushed = 0
        next_arrival = _NEVER
        for flight in cell.flights:
            if flight[0] <= now:
                channel = flight[2]
                port = chan_dst_port[channel]
                s = base3 + 3 * port
                if state[s] < cap:
                    pid = flight[1]
                    queue = queues[port]
                    if not queue:
                        state[s + 1] = pk_dest[pid]
                        state[s + 2] = pid
                    queue.append(pid)
                    state[s] += 1
                    if probe is not None:
                        router = chan_dst[channel]
                        cnt_router[router] += 1
                        probe.record_enqueue(self._routers[router], cnt_router[router])
                    pushed += 1
                    continue
                flight[0] = now + 1
            still_append(flight)
            if flight[0] < next_arrival:
                next_arrival = flight[0]
        cell.flights = still
        self._buf_total[index] += pushed
        self._next_arr[index] = next_arrival

    def _resolve_route(self, router: int, destination: int) -> None:
        """Resolve one (router, destination) next hop, validating the channel.

        Raises the same errors, with the same messages, as the scalar
        path (`Network.next_hop`): the routing function's own
        :class:`~repro.exceptions.RoutingError` for missing entries, or a
        :class:`SimulationError` when the returned hop has no channel.
        """
        node = self._routers[router]
        target = self._routers[destination]
        hop = self._routing(node, target)
        channel = self._chan_index.get((node, hop))
        if channel is None:
            raise SimulationError(
                f"routing function returned {hop!r} from {node!r} towards "
                f"{target!r}, but that channel does not exist"
            )
        self._route_chan[router, destination] = channel
        start = self._local_port[router]
        stop = (
            self._local_port[router + 1]
            if router + 1 < self._num_routers
            else self._num_ports
        )
        self._pd_slot[start:stop, destination] = channel

    def _route_and_forward(self, active, cyc_active) -> None:
        """The vectorized router phase: arbitration + feasibility + effects."""
        np = self._np
        num_ports = self._num_ports
        state_list = self._port_state
        # one bulk snapshot of the python-side port state (count, head
        # destination, head packet id) per executed cycle; feasibility
        # deliberately reads this pre-cycle snapshot (pops during the
        # phase are modelled by the order-gated fixpoint)
        state = np.asarray(state_list, dtype=np.int64).reshape(
            self.num_cells, num_ports, 3
        )
        cnt_np = state[:, :, 0]
        if active.size == self.num_cells:
            # every cell executes this iteration: cell indices ARE the
            # positions, so skip the active-subset fancy indexing
            occupied_cell, port = (cnt_np > 0).nonzero()
            cells = occupied_cell
        else:
            occupied_cell, port = (cnt_np[active] > 0).nonzero()
            cells = active[occupied_cell]
        if not occupied_cell.size:
            return
        cyc = cyc_active[occupied_cell]
        dest = state[cells, port, 1]
        rank = (self._port_rank[port] - cyc) % self._port_nports[port]
        slot = self._pd_slot[port, dest]
        # ejection slots are pre-filled non-negative, so one reduction
        # decides whether any forwarding head needs route resolution
        if int(slot.min()) < 0:
            rows = (slot < 0).nonzero()[0]
            router = self._port_router[port]
            order = np.lexsort((rank[rows], router[rows], cells[rows]))
            for row in rows[order]:
                pair = (int(router[row]), int(dest[row]))
                cell_index = int(cells[row])
                if not self._alive[cell_index]:
                    continue
                if self._route_chan[pair] >= 0:
                    continue
                error = self._route_errors.get(pair)
                if error is None:
                    try:
                        self._resolve_route(*pair)
                        continue
                    except ReproError as raised:
                        error = raised
                        self._route_errors[pair] = raised
                self._fail(cell_index, error)
            slot = self._pd_slot[port, dest]
            keep = self._alive[cells]
            if not keep.all():
                rows = keep.nonzero()[0]
                cells, port, dest = cells[rows], port[rows], dest[rows]
                rank, slot, cyc = rank[rows], slot[rows], cyc[rows]
                if not cells.size:
                    return

        # round-robin arbitration: per (cell, output) the requesting port
        # with the smallest scan rank wins — "first occupied port in the
        # scan" is exactly `nominate_at`'s winner.  Outputs come slotted
        # by the fused table — channel index (forwards) or num_channels +
        # router (local ejection); one argsort of (cell, slot) | key picks
        # every winner (keys are unique, so sort order is deterministic).
        key = rank * np.int64(num_ports) + port
        slots_per_cell = np.int64(self._num_channels + self._num_routers)
        sortkey = ((cells * slots_per_cell + slot) << self._key_shift) | key
        order = np.argsort(sortkey)
        group = sortkey[order] >> self._key_shift
        first = np.empty(order.size, dtype=bool)
        first[0] = True
        np.not_equal(group[1:], group[:-1], out=first[1:])
        win = order[first]
        win_cell = cells[win]
        win_port = port[win]
        win_slot = slot[win]
        win_rank = rank[win]
        forward = win_slot < self._num_channels
        safe_chan = np.where(forward, win_slot, 0)
        cycles = cyc[win]
        free = forward & (self._chan_free[win_cell, safe_chan] <= cycles)
        down_port = self._chan_dst_port[safe_chan]
        moved = ~forward | (free & (cnt_np[win_cell, down_port] < self._cap[win_cell]))

        # order-gated fixpoint: a pop at a router that the dense loop
        # processes *earlier* frees one buffer slot the blocked forward is
        # allowed to see.  Counts shrink by at most one per (cell, port)
        # per cycle, so the recheck is a plain subtraction.
        if (free & ~moved).any():
            popped = self._popped
            popped[win_cell[moved], win_port[moved]] = True
            earlier = self._chan_earlier[safe_chan]
            while True:
                blocked = free & ~moved
                if not blocked.any():
                    break
                effective = cnt_np[win_cell, down_port] - (
                    popped[win_cell, down_port] & earlier
                )
                newly = blocked & (effective < self._cap[win_cell])
                if not newly.any():
                    break
                moved |= newly
                popped[win_cell[newly], win_port[newly]] = True
            popped[win_cell[moved], win_port[moved]] = False

        rows = moved.nonzero()[0]
        if not rows.size:
            return
        # apply effects in the dense loop's order: routers in global order,
        # winners in round-robin scan order within each router
        rows = rows[np.lexsort((win_rank[rows], self._port_router[win_port[rows]], win_cell[rows]))]
        eff_cell = win_cell[rows]
        eff_port = win_port[rows]
        eff_slot = win_slot[rows]
        cycles_eff = cycles[rows]
        cell_of = eff_cell.tolist()
        port_of = eff_port.tolist()
        # a local winner's slot is its ejection slot, but chan_of is only
        # ever read on forward rows, where slot == channel
        chan_of = eff_slot.tolist()
        eff_local = (~forward)[rows].tolist()
        cycle_of = cycles_eff.tolist()
        pk_flits = self._pk_flits
        # head pids come from the phase-start snapshot: nothing pushes
        # between the snapshot and these pops, so heads are unchanged
        pid_of = state[eff_cell, eff_port, 2].tolist()
        fwd_rows = [i for i, is_local in enumerate(eff_local) if not is_local]
        if fwd_rows:
            fwd_idx = np.asarray(fwd_rows, dtype=np.int64)
            fwd_cell = eff_cell[fwd_idx]
            fwd_chan = eff_slot[fwd_idx]
            # num_flits >= 1 by construction, so serialization == num_flits
            serialization = np.asarray(
                [pk_flits[pid_of[i]] for i in fwd_rows], dtype=np.int64
            )
            launch_cycle = cycles_eff[fwd_idx]
            self._chan_free[fwd_cell, fwd_chan] = launch_cycle + serialization
            arrivals = (launch_cycle + serialization + self._pipe[fwd_cell]).tolist()
            serial_of = serialization.tolist()
        cells_objs = self._cells
        queues_all = self._queues
        switch_acc = self._switch_acc
        buf_total = self._buf_total
        cnt_router_all = self._cnt_router
        port_router = self._port_router_py
        pk_size = self._pk_size
        pk_dest = self._pk_dest
        pk_obj = self._pk_obj
        pk_src = self._pk_src
        pk_hops = self._pk_hops
        next_arr = self._next_arr
        routers = self._routers
        chan_keys = self._chan_key
        delivered_path = self._delivered_path
        deliver_append = self._deliver_append
        probed = self._probed
        forward_at = 0
        for index, port_i, pid, is_local, cycle_i, channel in zip(
            cell_of, port_of, pid_of, eff_local, cycle_of, chan_of
        ):
            s = 3 * (index * num_ports + port_i)
            cell = cells_objs[index]
            switch_acc[index] += pk_size[pid]
            buf_total[index] -= 1
            state_list[s] -= 1
            if probed[index]:
                cnt_router_all[index][port_router[port_i]] -= 1
            queue = queues_all[index][port_i]
            queue.popleft()
            if queue:
                new_head = queue[0]
                state_list[s + 1] = pk_dest[new_head]
                state_list[s + 2] = new_head
            else:
                state_list[s + 1] = -1
                state_list[s + 2] = -1
            if is_local:
                packet = pk_obj[pid]
                packet.delivery_cycle = cycle_i
                path = delivered_path(pk_src[pid], pk_dest[pid])
                packet.path = list(path)
                packet.hops = len(path) - 1
                deliver_append[index](packet)
                if cell.probe is not None:
                    cell.probe.record_delivery(routers[pk_dest[pid]], packet.latency)
            else:
                arrival = arrivals[forward_at]
                serial = serial_of[forward_at]
                forward_at += 1
                pk_hops[pid] += 1
                cell.flights.append([arrival, pid, channel])
                if arrival < next_arr[index]:
                    next_arr[index] = arrival
                size = pk_size[pid]
                cell.link_bits[channel] = cell.link_bits.get(channel, 0) + size
                busy = cell.statistics.channel_busy_cycles
                chan_key = chan_keys[channel]
                busy[chan_key] = busy.get(chan_key, 0) + serial

    def _delivered_path(self, source: int, destination: int) -> list[NodeId]:
        """The unique deterministic route a delivered packet traversed.

        Routing functions are deterministic in ``(node, destination)``, so
        a delivered packet's hop-by-hop path is exactly the route chain
        from its source — rebuilt here once per (source, destination) pair
        instead of being recorded per hop in the hot loop.
        """
        key = (source, destination)
        path = self._path_cache.get(key)
        if path is None:
            path = [self._routers[source]]
            current = source
            while current != destination:
                channel = int(self._route_chan[current, destination])
                # delivered packets only ever traversed resolved routes
                current = int(self._chan_dst[channel])
                path.append(self._routers[current])
            self._path_cache[key] = path
        return path
