"""Messages, packets and flits for the cycle-based NoC simulator."""

from __future__ import annotations

import math
from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.exceptions import SimulationError

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class Message:
    """An application-level transfer request (one logical message)."""

    source: NodeId
    destination: NodeId
    size_bits: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise SimulationError("a message must carry at least one bit")
        if self.source == self.destination:
            raise SimulationError("a message cannot be sent to its own source")


@dataclass(slots=True)
class Packet:
    """A message instantiated in the network with timing bookkeeping.

    The simulator is packet-switched: the whole packet is forwarded hop by
    hop, occupying each traversed channel for its serialization time
    (``num_flits`` cycles at one flit per cycle).
    """

    packet_id: int
    message: Message
    num_flits: int
    injection_cycle: int
    delivery_cycle: int | None = None
    hops: int = 0
    path: list[NodeId] = field(default_factory=list)

    @classmethod
    def from_message(
        cls, packet_id: int, message: Message, flit_width_bits: int, injection_cycle: int
    ) -> "Packet":
        if flit_width_bits <= 0:
            raise SimulationError("flit width must be positive")
        num_flits = max(1, math.ceil(message.size_bits / flit_width_bits))
        return cls(
            packet_id=packet_id,
            message=message,
            num_flits=num_flits,
            injection_cycle=injection_cycle,
            path=[message.source],
        )

    @property
    def source(self) -> NodeId:
        return self.message.source

    @property
    def destination(self) -> NodeId:
        return self.message.destination

    @property
    def size_bits(self) -> int:
        return self.message.size_bits

    @property
    def is_delivered(self) -> bool:
        return self.delivery_cycle is not None

    @property
    def latency(self) -> int:
        """Cycles from injection to delivery (only valid once delivered)."""
        if self.delivery_cycle is None:
            raise SimulationError(f"packet {self.packet_id} has not been delivered yet")
        return self.delivery_cycle - self.injection_cycle

    def record_hop(self, node: NodeId) -> None:
        self.hops += 1
        self.path.append(node)

    def __repr__(self) -> str:
        status = f"delivered@{self.delivery_cycle}" if self.is_delivered else "in-flight"
        return (
            f"<Packet #{self.packet_id} {self.source!r}->{self.destination!r} "
            f"{self.size_bits}b {self.num_flits}flits {status}>"
        )
