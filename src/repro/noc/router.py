"""Input-buffered router model with round-robin output arbitration.

Every router has one FIFO input buffer per input port (one port per incoming
channel plus a local injection port).  Each cycle the simulator asks every
router, for every output channel, to nominate the packet that should use it;
the router answers with a round-robin scan over its input ports so that no
port starves.  Backpressure is modelled by bounded buffer capacities: a
packet only advances when the downstream input buffer has room.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.noc.packet import Packet

NodeId = Hashable
LOCAL_PORT = "__local__"


@dataclass
class InputBuffer:
    """Bounded FIFO of packets waiting at one input port."""

    capacity_packets: int
    queue: deque[Packet] = field(default_factory=deque)

    def has_space(self) -> bool:
        return len(self.queue) < self.capacity_packets

    def push(self, packet: Packet) -> None:
        if not self.has_space():
            raise SimulationError("input buffer overflow (backpressure violated)")
        self.queue.append(packet)

    def head(self) -> Packet | None:
        return self.queue[0] if self.queue else None

    def pop(self) -> Packet:
        if not self.queue:
            raise SimulationError("pop from an empty input buffer")
        return self.queue.popleft()

    def __len__(self) -> int:
        return len(self.queue)


class Router:
    """One network router: input buffers + round-robin arbitration state."""

    def __init__(
        self,
        node_id: NodeId,
        buffer_capacity_packets: int = 4,
        pipeline_delay_cycles: int = 1,
    ) -> None:
        if buffer_capacity_packets < 1:
            raise SimulationError("router buffers must hold at least one packet")
        if pipeline_delay_cycles < 1:
            raise SimulationError("router pipeline delay must be at least one cycle")
        self.node_id = node_id
        self.buffer_capacity_packets = buffer_capacity_packets
        self.pipeline_delay_cycles = pipeline_delay_cycles
        self._buffers: dict[object, InputBuffer] = {
            LOCAL_PORT: InputBuffer(capacity_packets=10**9)  # injection queue is unbounded
        }
        self._scan_order: tuple[tuple[object, InputBuffer], ...] = tuple(
            self._buffers.items()
        )
        self._round_robin_pointer = 0

    # ------------------------------------------------------------------
    # ports and buffers
    # ------------------------------------------------------------------
    def add_input_port(self, upstream: NodeId) -> None:
        if upstream not in self._buffers:
            self._buffers[upstream] = InputBuffer(self.buffer_capacity_packets)
            self._scan_order = tuple(self._buffers.items())

    def buffer(self, port: object) -> InputBuffer:
        try:
            return self._buffers[port]
        except KeyError as error:
            raise SimulationError(
                f"router {self.node_id!r} has no input port from {port!r}"
            ) from error

    def ports(self) -> list[object]:
        return list(self._buffers)

    def inject(self, packet: Packet) -> None:
        """Place a locally generated packet into the injection queue."""
        self._buffers[LOCAL_PORT].push(packet)

    def accept(self, upstream: NodeId, packet: Packet) -> None:
        """Receive a packet arriving over the channel from ``upstream``."""
        self.buffer(upstream).push(packet)

    def can_accept(self, upstream: NodeId) -> bool:
        return self.buffer(upstream).has_space()

    def occupancy(self) -> int:
        """Total packets currently buffered (all ports)."""
        return sum(len(buffer.queue) for _, buffer in self._scan_order)

    def occupied_heads(self) -> list[tuple[object, Packet]]:
        """``(port, head packet)`` for every occupied port, in port order."""
        return [(port, buffer.queue[0]) for port, buffer in self._scan_order if buffer.queue]

    # ------------------------------------------------------------------
    # arbitration
    # ------------------------------------------------------------------
    def nominate_at(self, pointer: int, wants_output) -> dict[object, object]:
        """Pick, per output, the input port whose head packet wins this cycle.

        ``wants_output(packet)`` maps a head packet to the output it requests
        (the next-hop router id, or ``LOCAL_PORT`` for delivery).  Returns a
        mapping ``{output: input_port}`` with at most one winner per output,
        chosen by a round-robin scan starting at ``pointer`` (mod the number
        of ports).  The scan itself is stateless: the simulator derives the
        pointer from the current cycle, which keeps arbitration fair without
        requiring the router to be visited on cycles where it has no work.
        """
        pairs = self._scan_order
        count = len(pairs)
        if not count:  # pragma: no cover - the local port always exists
            return {}
        winners: dict[object, object] = {}
        start = pointer % count
        # scan start, start+1, ..., wrapping around: index i - count is the
        # same element for i < count (negative indexing) and for i >= count
        for i in range(start - count, start):
            port, buffer = pairs[i]
            queue = buffer.queue
            if not queue:
                continue
            output = wants_output(queue[0])
            if output not in winners:
                winners[output] = port
        return winners

    def nominate(self, wants_output) -> dict[object, object]:
        """:meth:`nominate_at` driven by an internal rotating pointer.

        Kept for callers that arbitrate a router in isolation; the simulator
        engines use :meth:`nominate_at` with a cycle-derived pointer (for a
        simulation stepped contiguously from cycle 0 the two are identical,
        since the dense loop nominates exactly once per router per cycle).
        """
        winners = self.nominate_at(self._round_robin_pointer, wants_output)
        if self._buffers:
            self._round_robin_pointer = (self._round_robin_pointer + 1) % len(self._buffers)
        return winners

    def __repr__(self) -> str:
        return (
            f"<Router {self.node_id!r} ports={len(self._buffers)} "
            f"buffered={self.occupancy()}>"
        )
