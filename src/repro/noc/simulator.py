"""Cycle-based NoC simulator.

This is the measurement substrate that replaces the paper's Virtex-2 FPGA
prototype: the same architecture-agnostic fabric simulates both the 4x4 mesh
baseline (XY routing) and the synthesized customized topology (table routing
derived from the primitives' schedules), so the throughput / latency / energy
comparison of Section 5.2 is apples-to-apples.

Model summary (packet-switched, one-flit-per-cycle links):

* routers are input-buffered with per-port FIFOs and round-robin output
  arbitration (:mod:`repro.noc.router`);
* forwarding a packet over a channel keeps that channel busy for the
  packet's serialization time (``num_flits`` cycles) and delivers it into
  the downstream buffer after serialization plus the router pipeline delay;
* bounded buffers create backpressure (full buffers delay the transfer);
* every router traversal / link traversal is charged to an
  :class:`~repro.energy.power.EnergyAccount` so the same run yields the
  energy and average-power figures.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Hashable, Iterable, Sequence
from dataclasses import dataclass

from repro.arch.topology import Topology
from repro.energy.power import EnergyAccount
from repro.energy.technology import DEFAULT_TECHNOLOGY, Technology
from repro.exceptions import SimulationError
from repro.noc.network import Network
from repro.noc.packet import Message, Packet
from repro.noc.router import LOCAL_PORT
from repro.noc.stats import SimulationStatistics

NodeId = Hashable
RoutingFunction = Callable[[NodeId, NodeId], NodeId]


@dataclass
class SimulatorConfig:
    """Knobs of the simulation model."""

    flit_width_bits: int = 32
    buffer_capacity_packets: int = 4
    router_pipeline_delay_cycles: int = 1
    max_cycles: int = 1_000_000
    charge_leakage: bool = True


class NoCSimulator:
    """Drives a :class:`~repro.noc.network.Network` cycle by cycle."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingFunction,
        config: SimulatorConfig | None = None,
        technology: Technology = DEFAULT_TECHNOLOGY,
    ) -> None:
        self.config = config or SimulatorConfig()
        self.topology = topology
        self.technology = technology
        self.network = Network(
            topology,
            routing,
            buffer_capacity_packets=self.config.buffer_capacity_packets,
            pipeline_delay_cycles=self.config.router_pipeline_delay_cycles,
        )
        self.energy = EnergyAccount(technology=technology)
        self.statistics = SimulationStatistics()
        self.current_cycle = 0
        self._next_packet_id = 0
        self._pending: list[tuple[int, int, Packet]] = []  # (cycle, seq, packet) heap

    # ------------------------------------------------------------------
    # traffic scheduling
    # ------------------------------------------------------------------
    def schedule_message(self, message: Message, cycle: int | None = None) -> Packet:
        """Queue a message for injection at ``cycle`` (default: now)."""
        if cycle is None:
            cycle = self.current_cycle
        if cycle < self.current_cycle:
            raise SimulationError("cannot schedule a message in the past")
        if not self.topology.has_router(message.source):
            raise SimulationError(f"unknown source router {message.source!r}")
        if not self.topology.has_router(message.destination):
            raise SimulationError(f"unknown destination router {message.destination!r}")
        packet = Packet.from_message(
            self._next_packet_id, message, self.config.flit_width_bits, cycle
        )
        self._next_packet_id += 1
        heapq.heappush(self._pending, (cycle, packet.packet_id, packet))
        self.statistics.record_injection()
        return packet

    def schedule_messages(self, messages: Iterable[Message], cycle: int | None = None) -> None:
        for message in messages:
            self.schedule_message(message, cycle)

    # ------------------------------------------------------------------
    # cycle loop
    # ------------------------------------------------------------------
    def _inject_due_packets(self) -> None:
        while self._pending and self._pending[0][0] <= self.current_cycle:
            _, _, packet = heapq.heappop(self._pending)
            self.network.inject(packet, packet.source)

    def _serialization_cycles(self, packet: Packet) -> int:
        return max(1, packet.num_flits)

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        self._inject_due_packets()
        self.network.deliver_arrivals(self.current_cycle)

        for node, router in self.network.routers.items():
            winners = router.nominate(lambda packet, _node=node: self.network.output_request(_node, packet))
            for output, input_port in winners.items():
                buffer = router.buffer(input_port)
                head = buffer.head()
                if head is None:  # pragma: no cover - defensive
                    continue
                if output == LOCAL_PORT:
                    packet = buffer.pop()
                    packet.delivery_cycle = self.current_cycle
                    # final router traversal (ejection) — the (n_hops)-th
                    # switch of Equation 1.
                    self.energy.charge_switch(packet.size_bits)
                    self.statistics.record_delivery(packet)
                    continue
                channel = (node, output)
                if self.network.channel_free_at.get(channel, 0) > self.current_cycle:
                    continue
                if not self.network.router(output).can_accept(node):
                    continue
                packet = buffer.pop()
                serialization = self._serialization_cycles(packet)
                self.network.channel_free_at[channel] = self.current_cycle + serialization
                arrival = (
                    self.current_cycle
                    + serialization
                    + self.config.router_pipeline_delay_cycles
                )
                packet.record_hop(output)
                self.network.launch(packet, node, output, arrival)
                length = self.network.channel_length_mm(node, output)
                self.energy.charge_switch(packet.size_bits)
                self.energy.charge_link(packet.size_bits, length)
                self.statistics.record_channel_busy(channel, serialization)

        self.current_cycle += 1

    def run(self, cycles: int) -> None:
        """Run for a fixed number of cycles."""
        for _ in range(cycles):
            self.step()
        self._finalize()

    def run_until_drained(self, max_cycles: int | None = None) -> int:
        """Run until all scheduled traffic has been delivered.

        Returns the cycle count at which the network drained.  Raises
        :class:`SimulationError` if the budget is exhausted first (which
        would indicate a routing loop or a deadlock).
        """
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        start = self.current_cycle
        while self._pending or not self.network.is_idle():
            if self.current_cycle - start > budget:
                raise SimulationError(
                    f"network did not drain within {budget} cycles "
                    f"({self.network.buffered_packets()} packets still buffered)"
                )
            self.step()
        self._finalize()
        return self.current_cycle

    def _finalize(self) -> None:
        self.statistics.total_cycles = self.current_cycle
        if self.config.charge_leakage:
            # leakage is charged once per finalize over the cycles simulated
            # since the previous finalize
            charged = getattr(self, "_leakage_charged_until", 0)
            span = self.current_cycle - charged
            if span > 0:
                self.energy.charge_leakage(self.topology.num_routers, span)
                self._leakage_charged_until = self.current_cycle

    # ------------------------------------------------------------------
    # phased execution (dependency-aware workloads such as distributed AES)
    # ------------------------------------------------------------------
    def run_phases(
        self,
        phases: Sequence[Sequence[Message]],
        max_cycles_per_phase: int | None = None,
        computation_cycles_per_phase: int = 0,
    ) -> list[int]:
        """Run a sequence of communication phases back to back.

        All messages of a phase are injected simultaneously, and the next
        phase starts only when the network has drained — which models the
        data dependencies between computation rounds (e.g. AES rounds: a node
        cannot start the next round before it received its operands).
        ``computation_cycles_per_phase`` idles the network after every phase
        to account for the local computation (e.g. SubBytes / MixColumns
        arithmetic) that separates communication phases; leakage keeps being
        charged during those cycles.

        Returns the list of per-phase durations in cycles (including the
        computation allowance).
        """
        if computation_cycles_per_phase < 0:
            raise SimulationError("computation cycles per phase must be non-negative")
        durations: list[int] = []
        for phase in phases:
            phase_start = self.current_cycle
            self.schedule_messages(phase, cycle=self.current_cycle)
            self.run_until_drained(max_cycles=max_cycles_per_phase)
            if computation_cycles_per_phase:
                self.run(computation_cycles_per_phase)
            durations.append(self.current_cycle - phase_start)
        return durations

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def average_power_mw(self) -> float:
        return self.energy.average_power_mw(max(self.statistics.total_cycles, 1))

    def report(self) -> dict[str, float]:
        """Combined performance + energy summary of the run so far."""
        report = dict(self.statistics.summary())
        report.update(self.energy.summary())
        report["average_power_mw"] = self.average_power_mw()
        report["total_energy_uj"] = self.energy.total_energy_uj
        return report
