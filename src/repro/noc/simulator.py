"""Cycle-accurate NoC simulator with three interchangeable engines.

This is the measurement substrate that replaces the paper's Virtex-2 FPGA
prototype: the same architecture-agnostic fabric simulates both the 4x4 mesh
baseline (XY routing) and the synthesized customized topology (table routing
derived from the primitives' schedules), so the throughput / latency / energy
comparison of Section 5.2 is apples-to-apples.

Model summary (packet-switched, one-flit-per-cycle links):

* routers are input-buffered with per-port FIFOs and round-robin output
  arbitration (:mod:`repro.noc.router`);
* forwarding a packet over a channel keeps that channel busy for the
  packet's serialization time (``num_flits`` cycles) and delivers it into
  the downstream buffer after serialization plus the router pipeline delay;
* bounded buffers create backpressure (full buffers delay the transfer);
* every router traversal / link traversal is accumulated into batched
  switch/bit·mm counters and flushed into an
  :class:`~repro.energy.power.EnergyAccount` at finalize, so the same run
  yields the energy and average-power figures.

Three engines drive the model (``SimulatorConfig.engine``):

* ``"event"`` (default) — event-driven: only routers that might move a
  packet are visited, and the clock jumps straight to the next cycle where
  anything can progress (next injection, next arrival, next channel-release
  expiry, next scheduled router wake-up).  See ``docs/simulator.md`` for the
  activation conditions and the equivalence argument.
* ``"reference"`` — the dense cycle-stepped loop that visits every router
  every cycle.  It is kept forever as the executable specification the
  other engines are tested against: all engines produce bit-identical
  :meth:`NoCSimulator.report` output and per-packet delivery cycles.
* ``"batch"`` — vectorized numpy engine (:mod:`repro.noc.batch`): router
  and channel state laid out as flat arrays so a whole batch of sweep
  cells advances per array operation.  Through :class:`NoCSimulator` it
  runs as a batch of one; the DSE runner groups compatible sweep cells
  into real multi-cell batches.  numpy is a dependency of this engine
  only — the scalar engines stay stdlib-only.

The equivalence rests on two observations: (i) round-robin arbitration in
the dense loop advances its pointer exactly once per router per cycle, so
the pointer is the cycle number modulo the port count and can be derived
rather than stored — idle cycles advance it for free; and (ii) a cycle in
which no injection is due, no arrival completes and no router holds a
movable packet changes nothing, so skipping it is exact.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Hashable, Iterable, Sequence
from dataclasses import dataclass

from repro.arch.topology import Topology
from repro.energy.power import EnergyAccount
from repro.energy.technology import DEFAULT_TECHNOLOGY, Technology
from repro.exceptions import ReproError, SimulationError
from repro.noc.network import Network
from repro.noc.packet import Message, Packet
from repro.noc.router import LOCAL_PORT, Router
from repro.noc.stats import SimulationStatistics
from repro.obs import SimulatorProbe, get_tracer

NodeId = Hashable
RoutingFunction = Callable[[NodeId, NodeId], NodeId]

#: event-driven engine: active-router scheduling + idle-cycle skipping
ENGINE_EVENT = "event"
#: dense cycle-stepped engine: the executable specification
ENGINE_REFERENCE = "reference"
#: vectorized numpy engine: flat (cell, port/channel) arrays, batchable
ENGINE_BATCH = "batch"

ENGINES = (ENGINE_EVENT, ENGINE_REFERENCE, ENGINE_BATCH)

#: how many stuck packets the drain-budget error names individually
_STUCK_PACKETS_NAMED = 8


@dataclass
class SimulatorConfig:
    """Knobs of the simulation model."""

    flit_width_bits: int = 32
    buffer_capacity_packets: int = 4
    router_pipeline_delay_cycles: int = 1
    max_cycles: int = 1_000_000
    charge_leakage: bool = True
    engine: str = ENGINE_EVENT
    """``"event"`` (skip dead time), ``"reference"`` (dense cycle loop) or
    ``"batch"`` (vectorized numpy arrays, batchable across sweep cells)."""

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise SimulationError(
                f"unknown simulator engine {self.engine!r} (use one of {ENGINES})"
            )


class NoCSimulator:
    """Drives a :class:`~repro.noc.network.Network` to completion.

    The public surface (scheduling, :meth:`run`, :meth:`run_until_drained`,
    :meth:`run_phases`, :meth:`report`) is engine-agnostic; the configured
    engine only decides *which* cycles are executed, never what happens
    within one.
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingFunction,
        config: SimulatorConfig | None = None,
        technology: Technology = DEFAULT_TECHNOLOGY,
        probe: SimulatorProbe | None = None,
    ) -> None:
        self.config = config or SimulatorConfig()
        self.probe = probe
        """Optional :class:`~repro.obs.probes.SimulatorProbe`: when attached,
        per-router occupancy/latency histograms are recorded at the shared
        buffer-mutation points and ``probe_*`` figures join :meth:`report`.
        The probe never changes any existing report figure or delivery cycle
        — both engines produce bit-identical output with it attached."""
        self.topology = topology
        self.technology = technology
        self.network = Network(
            topology,
            routing,
            buffer_capacity_packets=self.config.buffer_capacity_packets,
            pipeline_delay_cycles=self.config.router_pipeline_delay_cycles,
        )
        self.energy = EnergyAccount(technology=technology)
        self.statistics = SimulationStatistics()
        self.current_cycle = 0
        self.cycles_stepped = 0
        """Cycles actually executed (== ``current_cycle`` for the reference
        engine; the event engine's skipped-cycle savings show up here)."""
        self._next_packet_id = 0
        self._pending: list[tuple[int, int, Packet]] = []  # (cycle, seq, packet) heap
        self._leakage_charged_until = 0
        # batched energy accounting: per-run switch-traversal bits and
        # per-channel bit counters, flushed into the EnergyAccount once per
        # finalize instead of two method calls per packet per hop
        self._switch_bits = 0
        self._link_bits: dict[tuple[NodeId, NodeId], int] = {}
        # event engine bookkeeping: a stable processing order (the reference
        # loop's router iteration order) and a heap of scheduled wake-ups
        self._router_order = {node: index for index, node in enumerate(self.network.routers)}
        self._wake_heap: list[tuple[int, int, NodeId]] = []  # (cycle, order, node)
        self._scheduled_wake: dict[NodeId, int] = {}
        """Earliest scheduled wake per router; pushing a later duplicate is
        pointless because processing at the earlier cycle re-evaluates
        everything and re-arms as needed."""
        # O(1) load tracking, maintained at the three buffer mutation points
        # (injection, arrival, pop) so neither engine ever scans every
        # router's buffers to find work or to decide drainage
        self._buffered_by_node: dict[NodeId, int] = dict.fromkeys(self.network.routers, 0)
        self._buffered_total = 0
        # one nomination closure per router, built once instead of per visit
        self._wants_output: dict[NodeId, Callable[[Packet], object]] = {
            node: (lambda packet, _node=node: self.network.output_request(_node, packet))
            for node in self.network.routers
        }
        self._batch = None
        if self.config.engine == ENGINE_BATCH:
            from repro.noc.batch import BatchSimulator

            self._batch = BatchSimulator(
                topology, routing, [self.config], technologies=[technology]
            )
            # the single batch cell owns the live counters; re-binding its
            # result objects keeps statistics/energy the public surface
            self.statistics = self._batch.statistics(0)
            self.energy = self._batch.energy(0)
            if probe is not None:
                self._batch.attach_probe(0, probe)

    def sync_topology(self) -> None:
        """Adopt routers/channels added to the topology after construction.

        The simulator mirrors :meth:`Network.sync_topology
        <repro.noc.network.Network.sync_topology>` with its own per-router
        bookkeeping (processing order, load counters, nomination closures),
        so this is the one entry point to call after mutating a simulated
        topology; it delegates the fabric re-wiring to the network first.
        New routers are appended to the processing order — existing
        routers keep their positions, so an in-flight simulation's
        arbitration stays stable.
        """
        if self._batch is not None:
            raise SimulationError(
                "the batch engine freezes the fabric layout at construction; "
                "sync_topology() is only available on the 'event' and "
                "'reference' engines"
            )
        self.network.sync_topology()
        for node in self.network.routers:
            if node in self._router_order:
                continue
            self._router_order[node] = len(self._router_order)
            self._buffered_by_node[node] = 0
            self._wants_output[node] = (
                lambda packet, _node=node: self.network.output_request(_node, packet)
            )

    def attach_probe(self, probe: SimulatorProbe) -> SimulatorProbe:
        """Attach an observability probe (idempotent; returns the probe)."""
        self.probe = probe
        if self._batch is not None:
            self._batch.attach_probe(0, probe)
        return probe

    # ------------------------------------------------------------------
    # traffic scheduling
    # ------------------------------------------------------------------
    def schedule_message(self, message: Message, cycle: int | None = None) -> Packet:
        """Queue a message for injection at ``cycle`` (default: now)."""
        if self._batch is not None:
            # the batch core repeats the validations below verbatim and
            # records the injection on the shared statistics object
            return self._batch.schedule_message(0, message, cycle)
        if cycle is None:
            cycle = self.current_cycle
        if cycle < self.current_cycle:
            raise SimulationError("cannot schedule a message in the past")
        if not self.topology.has_router(message.source):
            raise SimulationError(f"unknown source router {message.source!r}")
        if not self.topology.has_router(message.destination):
            raise SimulationError(f"unknown destination router {message.destination!r}")
        packet = Packet.from_message(
            self._next_packet_id, message, self.config.flit_width_bits, cycle
        )
        self._next_packet_id += 1
        heapq.heappush(self._pending, (cycle, packet.packet_id, packet))
        self.statistics.record_injection()
        return packet

    def schedule_messages(self, messages: Iterable[Message], cycle: int | None = None) -> None:
        for message in messages:
            self.schedule_message(message, cycle)

    # ------------------------------------------------------------------
    # the per-cycle model, shared verbatim by both engines
    # ------------------------------------------------------------------
    def _inject_due_packets(self) -> list[NodeId]:
        injected: list[NodeId] = []
        probe = self.probe
        while self._pending and self._pending[0][0] <= self.current_cycle:
            _, _, packet = heapq.heappop(self._pending)
            source = packet.source
            self.network.inject(packet, source)
            self._buffered_by_node[source] += 1
            self._buffered_total += 1
            if probe is not None:
                probe.record_enqueue(source, self._buffered_by_node[source])
            injected.append(source)
        return injected

    def _serialization_cycles(self, packet: Packet) -> int:
        return max(1, packet.num_flits)

    def _process_router(
        self,
        node: NodeId,
        router: Router,
        wake_upstream: Callable[[NodeId], None] | None = None,
    ) -> None:
        """One router's arbitration + forwarding for the current cycle.

        ``wake_upstream(port)`` — supplied by the event engine only — is
        called whenever a packet is popped out of a bounded input buffer,
        because that is the moment a backpressured upstream router becomes
        able to progress again.
        """
        cycle = self.current_cycle
        winners = router.nominate_at(cycle, self._wants_output[node])
        for output, input_port in winners.items():
            buffer = router.buffer(input_port)
            head = buffer.head()
            if head is None:  # pragma: no cover - defensive
                continue
            if output == LOCAL_PORT:
                packet = buffer.pop()
                self._buffered_by_node[node] -= 1
                self._buffered_total -= 1
                packet.delivery_cycle = cycle
                # final router traversal (ejection) — the (n_hops)-th
                # switch of Equation 1.
                self._switch_bits += packet.size_bits
                self.statistics.record_delivery(packet)
                if self.probe is not None:
                    self.probe.record_delivery(node, packet.latency)
                if wake_upstream is not None and input_port != LOCAL_PORT:
                    wake_upstream(input_port)
                continue
            channel = (node, output)
            if self.network.channel_free_at.get(channel, 0) > cycle:
                continue
            if not self.network.router(output).can_accept(node):
                continue
            packet = buffer.pop()
            self._buffered_by_node[node] -= 1
            self._buffered_total -= 1
            serialization = self._serialization_cycles(packet)
            self.network.channel_free_at[channel] = cycle + serialization
            arrival = cycle + serialization + self.config.router_pipeline_delay_cycles
            packet.record_hop(output)
            self.network.launch(packet, node, output, arrival)
            self._switch_bits += packet.size_bits
            self._link_bits[channel] = self._link_bits.get(channel, 0) + packet.size_bits
            self.statistics.record_channel_busy(channel, serialization)
            if wake_upstream is not None and input_port != LOCAL_PORT:
                wake_upstream(input_port)

    def _note_arrivals(self, receivers: list[NodeId]) -> None:
        probe = self.probe
        for node in receivers:
            self._buffered_by_node[node] += 1
            if probe is not None:
                probe.record_enqueue(node, self._buffered_by_node[node])
        self._buffered_total += len(receivers)

    def step(self) -> None:
        """Advance the simulation by one dense cycle (reference semantics).

        Traversal energy is accumulated in batched counters; callers driving
        the simulator through ``step()`` directly see it in the
        :class:`EnergyAccount` after the next :meth:`report` or ``run*()``
        call, which flush the batches.
        """
        if self._batch is not None:
            raise SimulationError(
                "the batch engine executes whole runs; step() is only "
                "available on the 'event' and 'reference' engines"
            )
        self._inject_due_packets()
        self._note_arrivals(self.network.deliver_arrivals(self.current_cycle))
        for node, router in self.network.routers.items():
            self._process_router(node, router)
        self.cycles_stepped += 1
        self.current_cycle += 1

    # ------------------------------------------------------------------
    # event-driven engine
    # ------------------------------------------------------------------
    def _wake(self, node: NodeId, cycle: int) -> None:
        scheduled = self._scheduled_wake.get(node)
        if scheduled is not None and scheduled <= cycle:
            return
        self._scheduled_wake[node] = cycle
        heapq.heappush(self._wake_heap, (cycle, self._router_order[node], node))

    def _arm_occupied_routers(self) -> None:
        """Schedule every router currently holding packets for processing.

        Called on entry to every event-driven run so that mixing manual
        :meth:`step` calls (or successive runs) with the event engine can
        never leave a loaded router asleep.
        """
        if not self._buffered_total:
            return
        cycle = self.current_cycle
        for node, count in self._buffered_by_node.items():
            if count:
                self._wake(node, cycle)

    def _next_event_cycle(self) -> int | None:
        """The next cycle at which anything can possibly progress."""
        candidate: int | None = self._pending[0][0] if self._pending else None
        arrival = self.network.next_arrival_cycle()
        if arrival is not None and (candidate is None or arrival < candidate):
            candidate = arrival
        if self._wake_heap and (candidate is None or self._wake_heap[0][0] < candidate):
            candidate = self._wake_heap[0][0]
        if candidate is None:
            return None
        return max(candidate, self.current_cycle)

    def _schedule_router_wake(self, node: NodeId, router: Router, cycle: int) -> None:
        """Re-arm a still-loaded router at the next cycle it could progress.

        Per occupied port the head packet either (a) ejects locally — always
        possible, wake next cycle; (b) waits for a busy output channel —
        wake when the channel frees; (c) has a free channel and downstream
        space but lost this cycle's arbitration — wake next cycle; or
        (d) is backpressured by a full downstream buffer — no timed wake:
        the pop-side ``wake_upstream`` callback fires the moment space
        appears.  Routing errors surface during nomination, exactly where
        the reference engine raises them, so the probe defers to the next
        processed cycle rather than raising here.
        """
        wake: int | None = None
        for _port, head in router.occupied_heads():
            if head.destination == node:
                candidate: int | None = cycle + 1
            else:
                try:
                    next_hop = self.network.next_hop(node, head.destination)
                except ReproError:
                    candidate = cycle + 1
                else:
                    free_at = self.network.channel_free_at.get((node, next_hop), 0)
                    if free_at > cycle:
                        candidate = free_at
                    elif self.network.router(next_hop).can_accept(node):
                        candidate = cycle + 1
                    else:
                        candidate = None  # backpressured: woken by the pop side
            if candidate is not None and (wake is None or candidate < wake):
                wake = candidate
        if wake is not None:
            self._wake(node, wake)

    def _process_active_cycle(self, cycle: int) -> None:
        """Execute one cycle, visiting only the routers that might progress.

        Active routers are processed in the reference loop's router order;
        a router woken mid-cycle by an upstream-space release joins this
        cycle's worklist when its turn has not passed yet (exactly the
        routers the dense loop would still visit) and is deferred to the
        next cycle otherwise.
        """
        self.current_cycle = cycle
        worklist: list[tuple[int, NodeId]] = []
        queued: set[NodeId] = set()

        def activate(node: NodeId) -> None:
            if node not in queued:
                queued.add(node)
                heapq.heappush(worklist, (self._router_order[node], node))

        for node in self._inject_due_packets():
            activate(node)
        receivers = self.network.deliver_arrivals(cycle)
        self._note_arrivals(receivers)
        for node in receivers:
            activate(node)
        scheduled = self._scheduled_wake
        while self._wake_heap and self._wake_heap[0][0] <= cycle:
            wake_cycle, _, node = heapq.heappop(self._wake_heap)
            if scheduled.get(node) == wake_cycle:
                del scheduled[node]
            activate(node)

        processing_order = -1
        loaded = self._buffered_by_node

        def wake_upstream(upstream: NodeId) -> None:
            if not loaded[upstream]:
                return  # an empty router is re-armed by injection/arrival
            if self._router_order[upstream] > processing_order:
                activate(upstream)
            else:
                self._wake(upstream, cycle + 1)

        while worklist:
            processing_order, node = heapq.heappop(worklist)
            if not loaded[node]:
                continue  # speculative wake of an emptied router: a no-op
            self._process_router(node, self.network.routers[node], wake_upstream=wake_upstream)
            if loaded[node]:
                self._schedule_router_wake(node, self.network.routers[node], cycle)
        self.cycles_stepped += 1
        self.current_cycle = cycle + 1

    def _run_event(self, cycles: int) -> None:
        """Event-driven :meth:`run`: execute only the active cycles of the
        window, then jump the clock to the end (idle tails are analytic —
        leakage over the skipped span is charged in one call at finalize)."""
        target = self.current_cycle + cycles
        self._arm_occupied_routers()
        while True:
            next_cycle = self._next_event_cycle()
            if next_cycle is None or next_cycle >= target:
                break
            self._process_active_cycle(next_cycle)
        self.current_cycle = target

    def _drained(self) -> bool:
        """No pending injection, no buffered packet, nothing in flight."""
        return not (self._pending or self._buffered_total or self.network.in_flight)

    def _run_event_until_drained(self, start: int, budget: int) -> None:
        self._arm_occupied_routers()
        while not self._drained():
            next_cycle = self._next_event_cycle()
            if next_cycle is None or next_cycle - start > budget:
                # the reference engine crawls through the dead cycles and
                # raises once the budget is crossed; land on the same cycle
                self.current_cycle = start + budget + 1
                raise self._drain_budget_error(budget)
            self._process_active_cycle(next_cycle)

    # ------------------------------------------------------------------
    # runs
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        """Run for a fixed number of cycles."""
        tracer = get_tracer()
        with tracer.span("noc.run") as span:
            if self._batch is not None:
                from repro.noc.batch import RunOp

                self._batch.enqueue(0, RunOp(cycles))
                self._execute_batch()  # the batch core finalizes per op
            elif self.config.engine == ENGINE_EVENT:
                self._run_event(cycles)
                self._finalize()
            else:
                for _ in range(cycles):
                    self.step()
                self._finalize()
            if tracer.enabled:
                span.annotate(
                    engine=self.config.engine,
                    cycles=cycles,
                    cycles_stepped=self.cycles_stepped,
                )

    def run_until_drained(self, max_cycles: int | None = None) -> int:
        """Run until all scheduled traffic has been delivered.

        Returns the cycle count at which the network drained.  Raises
        :class:`SimulationError` naming the stuck packets if the budget is
        exhausted first (which would indicate a routing loop or deadlock).
        """
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        start = self.current_cycle
        tracer = get_tracer()
        with tracer.span("noc.run_until_drained") as span:
            if self._batch is not None:
                from repro.noc.batch import DrainOp

                self._batch.enqueue(0, DrainOp(max_cycles))
                self._execute_batch()  # the batch core finalizes per op
            elif self.config.engine == ENGINE_EVENT:
                self._run_event_until_drained(start, budget)
                self._finalize()
            else:
                while not self._drained():
                    if self.current_cycle - start > budget:
                        raise self._drain_budget_error(budget)
                    self.step()
                self._finalize()
            if tracer.enabled:
                span.annotate(
                    engine=self.config.engine,
                    cycles_drained=self.current_cycle - start,
                    cycles_stepped=self.cycles_stepped,
                )
        return self.current_cycle

    def _execute_batch(self) -> None:
        """Drive the single-cell batch core, mirroring its counters back.

        The core captures per-cell failures; re-raising here reproduces the
        scalar engines' raise-from-``run*()`` behaviour (including the
        post-failure cycle counters, which the ``finally`` keeps in sync).
        """
        try:
            self._batch.execute(raise_errors=True)
        finally:
            self.current_cycle = self._batch.current_cycle(0)
            self.cycles_stepped = self._batch.cycles_stepped(0)

    def _drain_budget_error(self, budget: int) -> SimulationError:
        """The drain-failure error, naming the packets that are stuck."""
        stuck = self.network.stuck_packets()
        named = ", ".join(
            f"#{packet.packet_id} at {where!r} -> {packet.destination!r} "
            f"({packet.hops} hops)"
            for packet, where in stuck[:_STUCK_PACKETS_NAMED]
        )
        if len(stuck) > _STUCK_PACKETS_NAMED:
            named += f", and {len(stuck) - _STUCK_PACKETS_NAMED} more"
        return SimulationError(
            f"network did not drain within {budget} cycles "
            f"({len(stuck)} packets stuck: {named})"
        )

    def _flush_energy_batches(self) -> None:
        """Fold the batched traversal counters into the energy account.

        Bits are accumulated as exact integers, and channels flush in
        first-launch order, so the flushed totals are independent of which
        engine produced them.
        """
        if self._switch_bits:
            self.energy.charge_switch(self._switch_bits)
            self._switch_bits = 0
        if self._link_bits:
            for channel, bits in self._link_bits.items():
                self.energy.charge_link(bits, self.network.channel_length_mm(*channel))
            self._link_bits.clear()

    def _finalize(self) -> None:
        self.statistics.total_cycles = self.current_cycle
        self._flush_energy_batches()
        if self.config.charge_leakage:
            # leakage is charged once per finalize over the cycles simulated
            # since the previous finalize — including any skipped idle span
            span = self.current_cycle - self._leakage_charged_until
            if span > 0:
                self.energy.charge_leakage(self.topology.num_routers, span)
                self._leakage_charged_until = self.current_cycle

    # ------------------------------------------------------------------
    # phased execution (dependency-aware workloads such as distributed AES)
    # ------------------------------------------------------------------
    def run_phases(
        self,
        phases: Sequence[Sequence[Message]],
        max_cycles_per_phase: int | None = None,
        computation_cycles_per_phase: int = 0,
    ) -> list[int]:
        """Run a sequence of communication phases back to back.

        All messages of a phase are injected simultaneously, and the next
        phase starts only when the network has drained — which models the
        data dependencies between computation rounds (e.g. AES rounds: a node
        cannot start the next round before it received its operands).
        ``computation_cycles_per_phase`` idles the network after every phase
        to account for the local computation (e.g. SubBytes / MixColumns
        arithmetic) that separates communication phases; leakage keeps being
        charged during those cycles.  With the event engine the idle
        allowance is analytic — the clock jumps over it — while the
        reference engine steps through it cycle by cycle; both charge the
        identical leakage because finalize charges by elapsed span.

        Returns the list of per-phase durations in cycles (including the
        computation allowance).
        """
        if computation_cycles_per_phase < 0:
            raise SimulationError("computation cycles per phase must be non-negative")
        durations: list[int] = []
        for phase in phases:
            phase_start = self.current_cycle
            self.schedule_messages(phase, cycle=self.current_cycle)
            self.run_until_drained(max_cycles=max_cycles_per_phase)
            if computation_cycles_per_phase:
                self.run(computation_cycles_per_phase)
            durations.append(self.current_cycle - phase_start)
        return durations

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def average_power_mw(self) -> float:
        return self.energy.average_power_mw(max(self.statistics.total_cycles, 1))

    def engine_info(self) -> dict[str, object]:
        """Engine provenance: which engine ran and how much dead time it
        skipped.  Deliberately not part of :meth:`report`, whose output is
        engine-independent by contract."""
        return {
            "engine": self.config.engine,
            "cycles_total": self.current_cycle,
            "cycles_stepped": self.cycles_stepped,
            "cycles_skipped": self.current_cycle - self.cycles_stepped,
        }

    def report(self) -> dict[str, float]:
        """Combined performance + energy summary of the run so far.

        With a probe attached, deterministic ``probe_*`` figures are
        appended; the pre-existing keys are byte-for-byte unaffected, so
        probed and unprobed runs agree on everything but the extra keys.
        """
        # catch up the batched traversal counters so manual step() loops
        # (or runs that raised before finalize) still read complete figures
        if self._batch is not None:
            self._batch.flush_energy(0)
        self._flush_energy_batches()
        report = dict(self.statistics.summary())
        report.update(self.energy.summary())
        report["average_power_mw"] = self.average_power_mw()
        report["total_energy_uj"] = self.energy.total_energy_uj
        if self.probe is not None:
            report.update(self.probe.report_figures(self.statistics))
        return report
