"""Unit tests for geometry, core specs and the floorplanner."""

from __future__ import annotations

import pytest

from repro.core.graph import ApplicationGraph
from repro.exceptions import FloorplanError
from repro.floorplan.core_spec import CoreSpec, heterogeneous_cores, total_area, uniform_cores
from repro.floorplan.geometry import Rectangle, bounding_box, manhattan
from repro.floorplan.placement import (
    Floorplan,
    annealed_floorplan,
    floorplan_from_positions,
    grid_floorplan,
)


class TestGeometry:
    def test_rectangle_properties(self):
        rect = Rectangle(1.0, 2.0, 3.0, 4.0)
        assert rect.x_max == 4.0 and rect.y_max == 6.0
        assert rect.area == 12.0
        assert rect.center == (2.5, 4.0)
        assert rect.contains_point(2.0, 3.0)
        assert not rect.contains_point(10.0, 10.0)

    def test_rectangle_validation(self):
        with pytest.raises(FloorplanError):
            Rectangle(0, 0, 0, 1)

    def test_overlap_detection(self):
        first = Rectangle(0, 0, 2, 2)
        assert first.overlaps(Rectangle(1, 1, 2, 2))
        assert not first.overlaps(Rectangle(2, 0, 2, 2))  # touching edges
        assert not first.overlaps(Rectangle(5, 5, 1, 1))

    def test_translate_and_bounding_box(self):
        rect = Rectangle(0, 0, 1, 1).translated(2, 3)
        assert rect.x == 2 and rect.y == 3
        box = bounding_box([Rectangle(0, 0, 1, 1), Rectangle(3, 4, 1, 1)])
        assert box.width == 4 and box.height == 5
        with pytest.raises(FloorplanError):
            bounding_box([])

    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7


class TestCoreSpec:
    def test_uniform_and_heterogeneous(self):
        cores = uniform_cores([1, 2, 3], size_mm=2.0)
        assert len(cores) == 3
        assert cores[0].area_mm2 == 4.0
        hetero = heterogeneous_cores({"cpu": (4.0, 2.0), "dsp": (1.0, 1.0)})
        assert total_area(hetero) == pytest.approx(9.0)
        assert hetero[0].aspect_ratio == pytest.approx(2.0)

    def test_invalid_core_dimensions(self):
        with pytest.raises(FloorplanError):
            CoreSpec(core_id=1, width_mm=0.0)


class TestFloorplan:
    def test_add_rejects_overlaps_and_duplicates(self):
        floorplan = Floorplan()
        floorplan.add(1, Rectangle(0, 0, 2, 2))
        with pytest.raises(FloorplanError):
            floorplan.add(1, Rectangle(5, 5, 1, 1))
        with pytest.raises(FloorplanError):
            floorplan.add(2, Rectangle(1, 1, 2, 2))

    def test_center_distance_and_missing_core(self):
        floorplan = Floorplan()
        floorplan.add(1, Rectangle(0, 0, 2, 2))
        floorplan.add(2, Rectangle(2, 0, 2, 2))
        assert floorplan.center(1) == (1.0, 1.0)
        assert floorplan.distance(1, 2) == pytest.approx(2.0)
        with pytest.raises(FloorplanError):
            floorplan.center(99)

    def test_die_area_and_utilization(self):
        floorplan = Floorplan()
        floorplan.add(1, Rectangle(0, 0, 2, 2))
        floorplan.add(2, Rectangle(2, 0, 2, 2))
        assert floorplan.die_area_mm2() == pytest.approx(8.0)
        assert floorplan.utilization() == pytest.approx(1.0)

    def test_wirelength_and_apply_to(self):
        acg = ApplicationGraph.from_traffic({(1, 2): 10.0})
        floorplan = Floorplan()
        floorplan.add(1, Rectangle(0, 0, 2, 2))
        floorplan.add(2, Rectangle(4, 0, 2, 2))
        assert floorplan.wirelength(acg) == pytest.approx(10.0 * 4.0)
        floorplan.apply_to(acg)
        assert acg.link_length(1, 2) == pytest.approx(4.0)


class TestGridFloorplan:
    def test_identical_cores_form_square_grid(self):
        cores = uniform_cores(list(range(1, 17)), size_mm=2.0)
        floorplan = grid_floorplan(cores)
        assert floorplan.num_cores == 16
        assert floorplan.die_area_mm2() == pytest.approx(64.0)
        assert floorplan.utilization() == pytest.approx(1.0)
        # 4x4 arrangement: first row at y-center 1.0
        assert floorplan.center(1) == (1.0, 1.0)
        assert floorplan.center(16) == (7.0, 7.0)

    def test_heterogeneous_cores_do_not_overlap(self):
        cores = heterogeneous_cores({1: (3, 2), 2: (1, 1), 3: (2, 4), 4: (2, 2), 5: (1, 3)})
        floorplan = grid_floorplan(cores, columns=2)
        rectangles = list(floorplan.placements.values())
        for i, first in enumerate(rectangles):
            for second in rectangles[i + 1 :]:
                assert not first.overlaps(second)

    def test_explicit_columns_and_spacing(self):
        cores = uniform_cores([1, 2, 3, 4], size_mm=1.0)
        floorplan = grid_floorplan(cores, columns=2, spacing_mm=1.0)
        assert floorplan.center(3)[1] == pytest.approx(2.5)

    def test_empty_and_invalid(self):
        with pytest.raises(FloorplanError):
            grid_floorplan([])
        with pytest.raises(FloorplanError):
            grid_floorplan(uniform_cores([1]), columns=0)

    def test_floorplan_from_positions(self):
        floorplan = floorplan_from_positions({1: (1.0, 1.0), 2: (5.0, 1.0)}, core_size_mm=2.0)
        assert floorplan.center(1) == (1.0, 1.0)
        assert floorplan.distance(1, 2) == pytest.approx(4.0)


class TestAnnealedFloorplan:
    def _chain_acg(self) -> ApplicationGraph:
        return ApplicationGraph.from_traffic(
            {(1, 2): 1000.0, (2, 3): 1000.0, (3, 4): 1000.0, (1, 4): 10.0}
        )

    def test_annealing_does_not_worsen_wirelength(self):
        acg = self._chain_acg()
        cores = uniform_cores([1, 2, 3, 4], size_mm=2.0)
        baseline = grid_floorplan(cores)
        annealed = annealed_floorplan(cores, acg, iterations=500, seed=1)
        assert annealed.wirelength(acg) <= baseline.wirelength(acg) + 1e-9
        assert annealed.die_area_mm2() == pytest.approx(baseline.die_area_mm2())

    def test_annealing_requires_identical_cores(self):
        acg = self._chain_acg()
        cores = heterogeneous_cores({1: (1, 1), 2: (2, 2), 3: (1, 1), 4: (1, 1)})
        with pytest.raises(FloorplanError):
            annealed_floorplan(cores, acg)

    def test_annealing_empty_rejected(self):
        with pytest.raises(FloorplanError):
            annealed_floorplan([], ApplicationGraph())
