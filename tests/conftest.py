"""Shared fixtures for the test suite.

Expensive artefacts (the AES decomposition/synthesis, the default library)
are session-scoped so the several hundred tests stay fast.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden report fixtures under tests/fixtures/golden/ "
        "from the current reference engine instead of asserting against them",
    )

from repro.aes.acg import build_aes_acg
from repro.arch.mesh import build_mesh
from repro.core.graph import ApplicationGraph, DiGraph
from repro.core.library import aes_library, default_library
from repro.experiments.aes_experiment import AesSynthesisResult, run_aes_synthesis
from repro.workloads.acg_builder import attach_grid_floorplan


@pytest.fixture(scope="session")
def library():
    """The default communication library (session-scoped, treat as read-only)."""
    return default_library()


@pytest.fixture(scope="session")
def aes_lib():
    """The compact AES library of Section 5.2."""
    return aes_library()


@pytest.fixture(scope="session")
def aes_acg() -> ApplicationGraph:
    """The Figure-6a AES application graph (floorplanned)."""
    return build_aes_acg()


@pytest.fixture(scope="session")
def aes_synthesis() -> AesSynthesisResult:
    """The full AES decomposition + synthesized architecture (Section 5.2)."""
    return run_aes_synthesis()


@pytest.fixture(scope="session")
def mesh_4x4():
    """The 4x4 mesh baseline with 2 mm tile pitch."""
    return build_mesh(4, 4, tile_pitch_mm=2.0)


@pytest.fixture()
def triangle_graph() -> DiGraph:
    """A directed 3-cycle: 1 -> 2 -> 3 -> 1."""
    return DiGraph.from_edges([(1, 2), (2, 3), (3, 1)], name="triangle")


@pytest.fixture()
def k4_acg() -> ApplicationGraph:
    """Complete bidirectional traffic among 4 cores, 32 bits per edge."""
    traffic = {(i, j): 32.0 for i in range(1, 5) for j in range(1, 5) if i != j}
    acg = ApplicationGraph.from_traffic(traffic, name="k4")
    attach_grid_floorplan(acg, core_size_mm=2.0)
    return acg


@pytest.fixture()
def pipeline_acg() -> ApplicationGraph:
    """A simple 5-stage pipeline ACG (chain of point-to-point transfers)."""
    traffic = {(i, i + 1): 100.0 * i for i in range(1, 5)}
    acg = ApplicationGraph.from_traffic(traffic, name="pipeline")
    attach_grid_floorplan(acg, core_size_mm=2.0)
    return acg
