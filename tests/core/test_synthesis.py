"""Unit tests for topology synthesis (gluing + routing + checks)."""

from __future__ import annotations

import pytest

from repro.arch.custom import CustomTopology
from repro.core.cost import LinkCountCostModel
from repro.core.decomposition import DecompositionConfig, decompose
from repro.core.synthesis import (
    SynthesisOptions,
    TopologySynthesizer,
    synthesize_architecture,
)
from repro.exceptions import RoutingError


def quick_config() -> DecompositionConfig:
    return DecompositionConfig(max_matchings_per_primitive=4, total_timeout_seconds=20.0)


@pytest.fixture()
def k4_result(k4_acg, library):
    return decompose(k4_acg, library, cost_model=LinkCountCostModel(), config=quick_config())


class TestBuildTopology:
    def test_k4_topology_is_mgg4(self, k4_acg, k4_result):
        architecture = synthesize_architecture(k4_acg, k4_result)
        topology = architecture.topology
        assert isinstance(topology, CustomTopology)
        assert topology.num_routers == 4
        assert topology.num_physical_links == 4  # the MGG-4 ring
        assert topology.num_channels == 8  # full duplex

    def test_router_positions_copied_from_floorplan(self, k4_acg, k4_result):
        architecture = synthesize_architecture(k4_acg, k4_result)
        for node in k4_acg.nodes():
            assert architecture.topology.has_position(node)
            assert architecture.topology.position(node) == k4_acg.position(node)

    def test_channel_lengths_follow_floorplan(self, k4_acg, k4_result):
        architecture = synthesize_architecture(k4_acg, k4_result)
        for channel in architecture.topology.channels():
            expected = k4_acg.link_length(channel.source, channel.target)
            assert channel.length_mm == pytest.approx(expected)

    def test_provenance_labels(self, k4_acg, k4_result):
        architecture = synthesize_architecture(k4_acg, k4_result)
        summary = architecture.topology.provenance_summary()
        assert any(label.startswith("MGG4#") for label in summary)

    def test_remainder_edges_become_direct_links(self, pipeline_acg, library):
        result = decompose(
            pipeline_acg, library, cost_model=LinkCountCostModel(), config=quick_config()
        )
        architecture = synthesize_architecture(pipeline_acg, result)
        for source, target in result.remainder.edges():
            assert architecture.topology.has_channel(source, target)

    def test_bidirectional_option_doubles_channels(self, k4_acg, k4_result):
        unidirectional = TopologySynthesizer(
            SynthesisOptions(bidirectional_links=False)
        ).build_topology(k4_acg, k4_result)
        bidirectional = TopologySynthesizer(
            SynthesisOptions(bidirectional_links=True)
        ).build_topology(k4_acg, k4_result)
        assert bidirectional.num_channels >= unidirectional.num_channels
        # MGG-4 already contains both directions, so physical links are equal
        assert bidirectional.num_physical_links == unidirectional.num_physical_links


class TestRoutingTableGeneration:
    def test_every_acg_edge_is_routable(self, k4_acg, k4_result):
        architecture = synthesize_architecture(k4_acg, k4_result)
        for source, target in k4_acg.edges():
            route = architecture.routing_table.route(source, target)
            assert route[0] == source and route[-1] == target

    def test_routes_follow_primitive_schedules(self, k4_acg, k4_result):
        """Two-hop gossip routes must go through the intermediate node the
        MGG-4 schedule prescribes, not an arbitrary neighbour."""
        architecture = synthesize_architecture(k4_acg, k4_result)
        matching = k4_result.matchings[0]
        for edge, expected_route in matching.routes_in_cores().items():
            assert tuple(architecture.routing_table.route(*edge)) == expected_route

    def test_fill_all_pairs_option(self, k4_acg, k4_result):
        architecture = synthesize_architecture(
            k4_acg, k4_result, options=SynthesisOptions(fill_all_pairs_routing=True)
        )
        for source in k4_acg.nodes():
            for target in k4_acg.nodes():
                if source != target:
                    assert architecture.routing_table.has_route(source, target)

    def test_unrelated_pairs_not_routed_by_default(self, pipeline_acg, library):
        result = decompose(
            pipeline_acg, library, cost_model=LinkCountCostModel(), config=quick_config()
        )
        architecture = synthesize_architecture(pipeline_acg, result)
        with pytest.raises(RoutingError):
            architecture.routing_table.route(5, 1)  # reverse of the pipeline


class TestArchitectureChecks:
    def test_constraint_and_deadlock_reports_present(self, k4_acg, k4_result):
        architecture = synthesize_architecture(k4_acg, k4_result)
        assert architecture.constraint_report is not None
        assert architecture.deadlock_report is not None
        assert architecture.is_feasible

    def test_checks_can_be_disabled(self, k4_acg, k4_result):
        options = SynthesisOptions(check_constraints=False, check_deadlock=False)
        architecture = synthesize_architecture(k4_acg, k4_result, options=options)
        assert architecture.constraint_report is None
        assert architecture.deadlock_report is None
        assert architecture.is_feasible  # unchecked counts as holding

    def test_describe_mentions_primitives_and_links(self, k4_acg, k4_result):
        architecture = synthesize_architecture(k4_acg, k4_result)
        text = architecture.describe()
        assert "MGG4" in text
        assert "physical links" in text


class TestAesSynthesisStructure:
    def test_aes_topology_contains_column_rings(self, aes_synthesis):
        """Every AES state column must be connected by the MGG-4 ring links."""
        topology = aes_synthesis.architecture.topology
        for column_start in (1, 2, 3, 4):
            column = [column_start, column_start + 4, column_start + 8, column_start + 12]
            internal_links = {
                frozenset((s, t))
                for s, t in ((a, b) for a in column for b in column if a != b)
                if topology.has_channel(s, t)
            }
            assert len(internal_links) == 4  # the MGG-4 ring

    def test_aes_topology_router_count(self, aes_synthesis):
        assert aes_synthesis.architecture.topology.num_routers == 16

    def test_aes_architecture_feasible(self, aes_synthesis):
        assert aes_synthesis.architecture.is_feasible
