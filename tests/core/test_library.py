"""Unit tests for the communication library."""

from __future__ import annotations

import pytest

from repro.core.library import (
    CommunicationLibrary,
    aes_library,
    default_library,
    extended_library,
    minimal_library,
)
from repro.core.primitives import PrimitiveKind, make_gossip_primitive, make_path_primitive
from repro.exceptions import LibraryError


class TestLibraryConstruction:
    def test_add_assigns_sequential_ids(self):
        library = CommunicationLibrary()
        first = library.add(make_gossip_primitive(4))
        second = library.add(make_path_primitive(3))
        assert first.primitive_id == 1
        assert second.primitive_id == 2
        assert first.primitive.primitive_id == 1

    def test_duplicate_name_rejected(self):
        library = CommunicationLibrary()
        library.add(make_gossip_primitive(4))
        with pytest.raises(LibraryError):
            library.add(make_gossip_primitive(4))

    def test_extend(self):
        library = CommunicationLibrary()
        library.extend([make_gossip_primitive(4), make_path_primitive(3)])
        assert len(library) == 2

    def test_lookup_by_name_and_id(self):
        library = default_library()
        assert library.by_name("MGG4").name == "MGG4"
        assert library.by_id(1).name == "MGG4"
        with pytest.raises(LibraryError):
            library.by_name("does-not-exist")
        with pytest.raises(LibraryError):
            library.by_id(999)

    def test_contains_and_iteration(self):
        library = default_library()
        assert "MGG4" in library
        assert "XYZ" not in library
        names = [entry.name for entry in library]
        assert names[0] == "MGG4"

    def test_by_kind(self):
        library = default_library()
        gossip = library.by_kind(PrimitiveKind.GOSSIP)
        assert {primitive.name for primitive in gossip} >= {"MGG4"}
        assert all(primitive.kind is PrimitiveKind.GOSSIP for primitive in gossip)


class TestDefaultLibraries:
    def test_default_library_matches_paper_ids(self):
        """Section 5 listings use ID 1 for MGG4, 2 for G1to4, 3 for G1to3."""
        library = default_library()
        assert library.by_id(1).name == "MGG4"
        assert library.by_id(2).name == "G1to4"
        assert library.by_id(3).name == "G1to3"

    def test_default_library_all_primitives_valid(self):
        for entry in default_library():
            entry.primitive.validate()

    def test_aes_library_is_compact(self):
        library = aes_library()
        names = {entry.name for entry in library}
        assert {"MGG4", "G1to4", "G1to3", "L4", "P3"} == names

    def test_extended_library_has_larger_primitives(self):
        library = extended_library()
        names = {entry.name for entry in library}
        assert "MGG8" in names
        assert any(name.startswith("M1to") for name in names)

    def test_minimal_library(self):
        library = minimal_library()
        assert len(library) == 3
        assert library.max_diameter() >= 1


class TestSearchOrdering:
    def test_sorted_for_search_is_densest_first(self):
        library = default_library()
        ordered = library.sorted_for_search()
        edge_counts = [entry.primitive.num_requirement_edges for entry in ordered]
        assert edge_counts == sorted(edge_counts, reverse=True)
        assert ordered[0].name == "MGG4"

    def test_applicable_to_filters_by_size(self):
        library = default_library()
        small = library.applicable_to(num_nodes=3, num_edges=3)
        assert all(entry.primitive.size <= 3 for entry in small)
        assert all(entry.primitive.num_requirement_edges <= 3 for entry in small)
        everything = library.applicable_to(num_nodes=100, num_edges=1000)
        assert len(everything) == len(library)

    def test_max_diameter_bounds_hops(self):
        """Section 4.3: the max hop count in any decomposition is bounded by the
        largest diameter in the library."""
        library = default_library()
        assert library.max_diameter() >= 2  # MGG4 has diameter 2
        for entry in library:
            assert entry.primitive.diameter() <= library.max_diameter()

    def test_describe_lists_every_primitive(self):
        library = default_library()
        text = library.describe()
        for entry in library:
            assert entry.name in text
