"""Unit tests for the cost models (Equations 1, 3 and 5)."""

from __future__ import annotations

import pytest

from repro.core.cost import (
    EnergyCostModel,
    LinkCountCostModel,
    UnitCostModel,
    default_cost_model,
)
from repro.core.graph import ApplicationGraph, DiGraph
from repro.core.matching import Matching, RemainderGraph
from repro.core.primitives import make_gossip_primitive, make_loop_primitive
from repro.energy.technology import FPGA_VIRTEX2


@pytest.fixture()
def k4_matching(k4_acg):
    return Matching.from_dict(make_gossip_primitive(4), {1: 1, 2: 2, 3: 3, 4: 4})


class TestUnitCostModel:
    def test_route_cost_is_volume_times_hops(self, k4_acg):
        model = UnitCostModel()
        assert model.route_cost(k4_acg, (1, 2), (1, 2)) == pytest.approx(32.0)
        assert model.route_cost(k4_acg, (1, 2), (1, 3, 2)) == pytest.approx(64.0)

    def test_route_cost_without_volumes(self, k4_acg):
        model = UnitCostModel(use_volumes=False)
        assert model.route_cost(k4_acg, (1, 2), (1, 3, 2)) == pytest.approx(2.0)

    def test_matching_cost_sums_covered_routes(self, k4_acg, k4_matching):
        model = UnitCostModel()
        # MGG-4: 8 direct edges (1 hop) + 4 two-hop edges, 32 bits each
        expected = 32.0 * (8 * 1 + 4 * 2)
        assert model.matching_cost(k4_matching, k4_acg) == pytest.approx(expected)

    def test_remainder_cost_and_penalty(self, k4_acg):
        remainder = RemainderGraph(DiGraph.from_edges([(1, 2)]))
        assert UnitCostModel().remainder_cost(remainder, k4_acg) == pytest.approx(32.0)
        assert UnitCostModel(remainder_penalty=2.0).remainder_cost(
            remainder, k4_acg
        ) == pytest.approx(64.0)

    def test_decomposition_cost_is_equation3_sum(self, k4_acg, k4_matching):
        model = UnitCostModel()
        remainder = RemainderGraph(DiGraph())
        total = model.decomposition_cost([k4_matching], remainder, k4_acg)
        assert total == pytest.approx(model.matching_cost(k4_matching, k4_acg))

    def test_lower_bound_is_admissible(self, k4_acg, k4_matching):
        model = UnitCostModel()
        bound = model.lower_bound(k4_acg.structural_copy(), k4_acg)
        actual = model.matching_cost(k4_matching, k4_acg)
        assert bound <= actual


class TestLinkCountCostModel:
    def test_matching_cost_counts_physical_links(self, k4_acg, k4_matching):
        model = LinkCountCostModel()
        assert model.matching_cost(k4_matching, k4_acg) == pytest.approx(4.0)

    def test_loop_matching_cost(self, k4_acg):
        loop = Matching.from_dict(make_loop_primitive(4), {1: 1, 2: 2, 3: 3, 4: 4})
        assert LinkCountCostModel().matching_cost(loop, k4_acg) == pytest.approx(4.0)

    def test_remainder_cost_is_edge_count(self, k4_acg):
        remainder = RemainderGraph(DiGraph.from_edges([(1, 2), (2, 3)]))
        assert LinkCountCostModel().remainder_cost(remainder, k4_acg) == pytest.approx(2.0)

    def test_lower_bound_discriminates_bidirectional_edges(self, k4_acg):
        model = LinkCountCostModel()
        bidirectional = DiGraph.from_edges([(1, 2), (2, 1)])
        one_way = DiGraph.from_edges([(1, 2), (2, 3)])
        assert model.lower_bound(bidirectional, k4_acg) == pytest.approx(2 / 3)
        assert model.lower_bound(one_way, k4_acg) == pytest.approx(2.0)

    def test_lower_bound_admissible_for_gossip_cover(self, k4_acg, k4_matching):
        model = LinkCountCostModel()
        bound = model.lower_bound(k4_acg.structural_copy(), k4_acg)
        assert bound <= model.matching_cost(k4_matching, k4_acg)


class TestEnergyCostModel:
    def test_route_cost_uses_floorplan_distances(self, k4_acg):
        model = EnergyCostModel(technology=FPGA_VIRTEX2)
        direct = model.route_cost(k4_acg, (1, 2), (1, 2))
        two_hop = model.route_cost(k4_acg, (1, 2), (1, 3, 2))
        assert two_hop > direct > 0.0

    def test_energy_grows_with_distance(self):
        acg = ApplicationGraph.from_traffic({(1, 2): 64.0, (1, 3): 64.0})
        acg.set_position(1, 0, 0)
        acg.set_position(2, 2, 0)
        acg.set_position(3, 8, 0)
        model = EnergyCostModel()
        near = model.route_cost(acg, (1, 2), (1, 2))
        far = model.route_cost(acg, (1, 3), (1, 3))
        assert far > near

    def test_fallback_length_used_without_positions(self):
        acg = ApplicationGraph.from_traffic({(1, 2): 64.0})
        model = EnergyCostModel(fallback_link_length_mm=3.0)
        assert model.route_cost(acg, (1, 2), (1, 2)) > 0.0

    def test_lower_bound_admissible(self, k4_acg):
        model = EnergyCostModel()
        matching = Matching.from_dict(make_gossip_primitive(4), {1: 1, 2: 2, 3: 3, 4: 4})
        assert model.lower_bound(k4_acg.structural_copy(), k4_acg) <= model.matching_cost(
            matching, k4_acg
        )

    def test_matching_cost_equation5(self, k4_acg):
        """Equation 5: the matching cost equals summing v(e) * E_bit(route) over
        the covered edges, with E_bit evaluated per-link."""
        model = EnergyCostModel(technology=FPGA_VIRTEX2)
        matching = Matching.from_dict(make_gossip_primitive(4), {1: 1, 2: 2, 3: 3, 4: 4})
        manual = sum(
            model.route_cost(k4_acg, edge, route)
            for edge, route in matching.routes_in_cores().items()
        )
        assert model.matching_cost(matching, k4_acg) == pytest.approx(manual)


class TestDefaultCostModel:
    def test_energy_model_chosen_when_floorplanned(self, k4_acg):
        assert isinstance(default_cost_model(k4_acg), EnergyCostModel)

    def test_unit_model_chosen_without_positions(self):
        acg = ApplicationGraph.from_traffic({(1, 2): 1.0})
        assert isinstance(default_cost_model(acg), UnitCostModel)

    def test_unit_model_for_partially_floorplanned(self):
        acg = ApplicationGraph.from_traffic({(1, 2): 1.0, (2, 3): 1.0})
        acg.set_position(1, 0, 0)
        assert isinstance(default_cost_model(acg), UnitCostModel)
