"""Unit tests for design-constraint checking (Section 4.2)."""

from __future__ import annotations

import pytest

from repro.arch.topology import Topology
from repro.core.constraints import (
    ConstraintChecker,
    DesignConstraints,
    channel_bandwidth_loads,
    channel_volume_loads,
)
from repro.core.graph import ApplicationGraph
from repro.exceptions import ConstraintViolationError
from repro.routing.table import RoutingTable


@pytest.fixture()
def line_topology() -> Topology:
    """Three routers in a line: 1 <-> 2 <-> 3."""
    topology = Topology(name="line", flit_width_bits=32)
    topology.add_router(1, 0, 0)
    topology.add_router(2, 2, 0)
    topology.add_router(3, 4, 0)
    topology.add_channel(1, 2, bidirectional=True)
    topology.add_channel(2, 3, bidirectional=True)
    return topology


@pytest.fixture()
def line_table(line_topology) -> RoutingTable:
    table = RoutingTable(line_topology)
    table.install_path([1, 2, 3])
    table.install_path([3, 2, 1])
    table.install_path([1, 2])
    table.install_path([2, 3])
    return table


def line_acg(bandwidth: float) -> ApplicationGraph:
    acg = ApplicationGraph.from_traffic({(1, 3): 100.0, (1, 2): 50.0})
    for source, target in acg.edges():
        acg.edge_attributes(source, target)["bandwidth"] = bandwidth
    return acg


class TestChannelLoads:
    def test_bandwidth_loads_aggregate_along_routes(self, line_table):
        acg = line_acg(bandwidth=4.0)
        loads = channel_bandwidth_loads(acg, line_table)
        # edge (1,3) rides 1->2->3, edge (1,2) rides 1->2
        assert loads[(1, 2)] == pytest.approx(8.0)
        assert loads[(2, 3)] == pytest.approx(4.0)

    def test_volume_loads(self, line_table):
        acg = line_acg(bandwidth=0.0)
        loads = channel_volume_loads(acg, line_table)
        assert loads[(1, 2)] == pytest.approx(150.0)
        assert loads[(2, 3)] == pytest.approx(100.0)


class TestConstraintChecker:
    def test_all_constraints_satisfied(self, line_topology, line_table):
        acg = line_acg(bandwidth=1.0)
        report = ConstraintChecker(DesignConstraints()).check(line_topology, line_table, acg)
        assert report.satisfied
        assert report.violations == []
        assert report.bisection_bandwidth is not None
        report.raise_if_violated()  # no exception
        assert "satisfied" in report.describe()

    def test_link_capacity_violation(self, line_topology, line_table):
        acg = line_acg(bandwidth=40.0)  # 80 > 32 bits/cycle on (1,2)
        report = ConstraintChecker(DesignConstraints()).check(line_topology, line_table, acg)
        assert not report.satisfied
        assert any("overloaded" in violation for violation in report.violations)
        with pytest.raises(ConstraintViolationError):
            report.raise_if_violated()

    def test_explicit_link_capacity_overrides_channel_capacity(self, line_topology, line_table):
        acg = line_acg(bandwidth=10.0)  # 20 on (1,2), above an explicit cap of 16
        constraints = DesignConstraints(link_capacity_bits_per_cycle=16.0)
        report = ConstraintChecker(constraints).check(line_topology, line_table, acg)
        assert not report.satisfied

    def test_bisection_bandwidth_limit(self, line_topology, line_table):
        acg = line_acg(bandwidth=0.1)
        constraints = DesignConstraints(max_bisection_bandwidth=10.0)
        report = ConstraintChecker(constraints).check(line_topology, line_table, acg)
        assert not report.satisfied
        assert any("bisection" in violation for violation in report.violations)

    def test_router_degree_limit(self, line_topology, line_table):
        acg = line_acg(bandwidth=0.1)
        constraints = DesignConstraints(max_router_degree=1)
        report = ConstraintChecker(constraints).check(line_topology, line_table, acg)
        assert not report.satisfied
        assert any("degree" in violation for violation in report.violations)
        assert report.max_router_degree == 2

    def test_unroutable_traffic_reported(self, line_topology):
        table = RoutingTable(line_topology)  # empty table
        acg = line_acg(bandwidth=1.0)
        report = ConstraintChecker(DesignConstraints()).check(line_topology, table, acg)
        assert not report.satisfied
        assert any("unroutable" in violation for violation in report.violations)

    def test_unroutable_traffic_ignored_when_not_required(self, line_topology):
        table = RoutingTable(line_topology)
        acg = line_acg(bandwidth=1.0)
        constraints = DesignConstraints(require_connected_traffic=False)
        report = ConstraintChecker(constraints).check(line_topology, table, acg)
        assert report.satisfied

    def test_violation_error_carries_details(self):
        error = ConstraintViolationError("broken", ["a", "b"])
        assert error.violations == ["a", "b"]


class TestAesArchitectureConstraints(object):
    def test_synthesized_aes_architecture_satisfies_constraints(self, aes_synthesis):
        report = aes_synthesis.architecture.constraint_report
        assert report is not None
        assert report.satisfied, report.violations

    def test_aes_channel_loads_respect_paper_bandwidth_argument(self, aes_synthesis):
        """Section 4.2: an implementation link carries the sum of the bandwidth
        requirements of every requirement edge mapped onto it."""
        acg = aes_synthesis.acg
        table = aes_synthesis.architecture.routing_table
        loads = channel_bandwidth_loads(acg, table)
        max_single = max(acg.bandwidth(s, t) for s, t in acg.edges())
        assert max(loads.values()) >= max_single
