"""Unit tests for the directed-graph substrate (Definitions 1-2 of the paper)."""

from __future__ import annotations

import pytest

from repro.core.graph import ApplicationGraph, CorePosition, DiGraph, GraphStatistics
from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
    NotASubgraphError,
)


class TestDiGraphBasics:
    def test_empty_graph(self):
        graph = DiGraph(name="empty")
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.nodes() == []
        assert graph.edges() == []
        assert graph.is_weakly_connected()  # vacuously

    def test_add_nodes_and_edges(self):
        graph = DiGraph()
        graph.add_node("a")
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_duplicate_node_raises(self):
        graph = DiGraph()
        graph.add_node(1)
        with pytest.raises(DuplicateNodeError):
            graph.add_node(1)
        graph.add_node(1, exist_ok=True)  # no raise

    def test_duplicate_edge_raises(self):
        graph = DiGraph()
        graph.add_edge(1, 2)
        with pytest.raises(DuplicateEdgeError):
            graph.add_edge(1, 2)
        graph.add_edge(1, 2, exist_ok=True)

    def test_self_loop_rejected(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_remove_edge_and_node(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3), (3, 1)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        graph.remove_node(3)
        assert not graph.has_node(3)
        assert graph.num_edges == 0  # (2,3) and (3,1) removed with node 3

    def test_remove_missing_raises(self):
        graph = DiGraph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node(1)
        graph.add_node(1)
        graph.add_node(2)
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 2)

    def test_degrees_and_neighbors(self):
        graph = DiGraph.from_edges([(1, 2), (1, 3), (3, 1)])
        assert graph.out_degree(1) == 2
        assert graph.in_degree(1) == 1
        assert graph.degree(1) == 3
        assert set(graph.successors(1)) == {2, 3}
        assert graph.predecessors(1) == [3]
        assert set(graph.neighbors(1)) == {2, 3}

    def test_degree_of_unknown_node_raises(self):
        graph = DiGraph()
        with pytest.raises(NodeNotFoundError):
            graph.out_degree(42)

    def test_edge_attributes(self):
        graph = DiGraph()
        graph.add_edge(1, 2, weight=5)
        assert graph.edge_attributes(1, 2)["weight"] == 5
        with pytest.raises(EdgeNotFoundError):
            graph.edge_attributes(2, 1)

    def test_contains_len_iter(self):
        graph = DiGraph.from_edges([(1, 2)])
        assert 1 in graph and 2 in graph and 3 not in graph
        assert len(graph) == 2
        assert list(iter(graph)) == [1, 2]

    def test_copy_is_independent(self):
        graph = DiGraph.from_edges([(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert not graph.has_edge(2, 3)
        assert graph == DiGraph.from_edges([(1, 2)])

    def test_equality_is_structural(self):
        first = DiGraph.from_edges([(1, 2), (2, 3)])
        second = DiGraph.from_edges([(2, 3), (1, 2)])
        assert first == second
        assert first != DiGraph.from_edges([(1, 2)])

    def test_graphs_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(DiGraph())


class TestGraphOperations:
    def test_graph_sum_definition1(self):
        first = DiGraph.from_edges([(1, 2)])
        second = DiGraph.from_edges([(2, 3)])
        total = first.graph_sum(second)
        assert set(total.nodes()) == {1, 2, 3}
        assert set(total.edges()) == {(1, 2), (2, 3)}
        # operands untouched
        assert first.num_edges == 1 and second.num_edges == 1

    def test_graph_difference_definition2_keeps_vertices(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3), (3, 1)])
        subgraph = DiGraph.from_edges([(1, 2)])
        remainder = graph.graph_difference(subgraph)
        assert set(remainder.nodes()) == {1, 2, 3}
        assert set(remainder.edges()) == {(2, 3), (3, 1)}

    def test_graph_difference_requires_subgraph(self):
        graph = DiGraph.from_edges([(1, 2)])
        with pytest.raises(NotASubgraphError):
            graph.graph_difference(DiGraph.from_edges([(2, 1)]))

    def test_edge_induced_subgraph(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3), (3, 1)])
        sub = graph.edge_induced_subgraph([(1, 2), (2, 3)])
        assert set(sub.nodes()) == {1, 2, 3}
        assert set(sub.edges()) == {(1, 2), (2, 3)}
        with pytest.raises(EdgeNotFoundError):
            graph.edge_induced_subgraph([(9, 9)])

    def test_node_induced_subgraph(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3), (3, 1), (1, 4)])
        sub = graph.node_induced_subgraph([1, 2, 3])
        assert set(sub.edges()) == {(1, 2), (2, 3), (3, 1)}
        with pytest.raises(NodeNotFoundError):
            graph.node_induced_subgraph([1, 99])

    def test_relabeled(self):
        graph = DiGraph.from_edges([(1, 2)])
        renamed = graph.relabeled({1: "a", 2: "b"})
        assert renamed.has_edge("a", "b")
        with pytest.raises(GraphError):
            graph.relabeled({1: 2})  # merge forbidden

    def test_is_edge_subgraph_of(self):
        big = DiGraph.from_edges([(1, 2), (2, 3)])
        small = DiGraph.from_edges([(1, 2)])
        assert small.is_edge_subgraph_of(big)
        assert not big.is_edge_subgraph_of(small)

    def test_isolated_nodes(self):
        graph = DiGraph.from_edges([(1, 2)], nodes=[3, 4])
        assert set(graph.isolated_nodes()) == {3, 4}
        cleaned = graph.without_isolated_nodes()
        assert set(cleaned.nodes()) == {1, 2}

    def test_weakly_connected_components(self):
        graph = DiGraph.from_edges([(1, 2), (3, 4)])
        components = graph.weakly_connected_components()
        assert sorted(sorted(c) for c in components) == [[1, 2], [3, 4]]
        assert not graph.is_weakly_connected()

    def test_find_cycle_on_cyclic_graph(self, triangle_graph):
        cycle = triangle_graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {1, 2, 3}
        assert not triangle_graph.is_acyclic()

    def test_find_cycle_on_dag(self):
        dag = DiGraph.from_edges([(1, 2), (1, 3), (2, 3)])
        assert dag.find_cycle() is None
        assert dag.is_acyclic()


class TestApplicationGraph:
    def test_from_traffic_mapping(self):
        acg = ApplicationGraph.from_traffic({(1, 2): 100.0, (2, 3): 50.0}, name="t")
        assert acg.volume(1, 2) == 100.0
        assert acg.total_volume() == 150.0

    def test_from_traffic_triples_with_bandwidth_fraction(self):
        acg = ApplicationGraph.from_traffic([(1, 2, 100.0)], bandwidth_fraction=0.1)
        assert acg.bandwidth(1, 2) == pytest.approx(10.0)

    def test_add_communication_accumulates(self):
        acg = ApplicationGraph()
        acg.add_communication(1, 2, volume=10, bandwidth=1)
        acg.add_communication(1, 2, volume=5, bandwidth=2)
        assert acg.volume(1, 2) == 15
        assert acg.bandwidth(1, 2) == 3

    def test_add_communication_rejects_negative(self):
        acg = ApplicationGraph()
        with pytest.raises(GraphError):
            acg.add_communication(1, 2, volume=-1)

    def test_positions_and_link_length(self):
        acg = ApplicationGraph.from_traffic({(1, 2): 1.0})
        acg.set_position(1, 0.0, 0.0)
        acg.set_position(2, 3.0, 4.0)
        assert acg.link_length(1, 2) == pytest.approx(7.0)  # Manhattan
        assert acg.position(1) == CorePosition(0.0, 0.0)
        assert acg.has_position(1) and not acg.has_position(99) is True

    def test_set_position_unknown_node_raises(self):
        acg = ApplicationGraph()
        with pytest.raises(NodeNotFoundError):
            acg.set_position(1, 0, 0)

    def test_apply_floorplan_ignores_unknown_cores(self):
        acg = ApplicationGraph.from_traffic({(1, 2): 1.0})
        acg.apply_floorplan({1: (0, 0), 2: (1, 1), 99: (5, 5)})
        assert acg.has_position(1) and acg.has_position(2)
        assert not acg.has_position(99)

    def test_copy_preserves_positions_and_volumes(self):
        acg = ApplicationGraph.from_traffic({(1, 2): 7.0})
        acg.set_position(1, 1, 1)
        clone = acg.copy()
        assert clone.volume(1, 2) == 7.0
        assert clone.position(1) == acg.position(1)
        clone.add_communication(2, 1, volume=3)
        assert not acg.has_edge(2, 1)

    def test_structural_copy_is_plain_digraph(self):
        acg = ApplicationGraph.from_traffic({(1, 2): 7.0})
        structural = acg.structural_copy()
        assert isinstance(structural, DiGraph)
        assert not isinstance(structural, ApplicationGraph)
        assert structural.has_edge(1, 2)


class TestCorePosition:
    def test_distances(self):
        a = CorePosition(0.0, 0.0)
        b = CorePosition(3.0, 4.0)
        assert a.manhattan_distance(b) == pytest.approx(7.0)
        assert a.euclidean_distance(b) == pytest.approx(5.0)


class TestGraphStatistics:
    def test_statistics_of_acg(self, k4_acg):
        stats = GraphStatistics.of(k4_acg)
        assert stats.num_nodes == 4
        assert stats.num_edges == 12
        assert stats.density == pytest.approx(1.0)
        assert stats.is_connected
        assert stats.total_volume == pytest.approx(12 * 32.0)

    def test_statistics_of_empty_graph(self):
        stats = GraphStatistics.of(DiGraph())
        assert stats.num_nodes == 0
        assert stats.density == 0.0


class TestCachedStructuralCounters:
    """num_edges / degrees are maintained incrementally and must never drift."""

    @staticmethod
    def _assert_counters_consistent(graph: DiGraph) -> None:
        recomputed_edges = sum(len(graph.successors(node)) for node in graph.nodes())
        assert graph.num_edges == recomputed_edges
        for node in graph.nodes():
            assert graph.out_degree(node) == len(graph.successors(node))
            assert graph.in_degree(node) == len(graph.predecessors(node))
            assert graph.degree(node) == len(graph.successors(node)) + len(
                graph.predecessors(node)
            )

    def test_counters_after_interleaved_add_remove(self):
        graph = DiGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 1)
        graph.add_edge(1, 3)
        self._assert_counters_consistent(graph)
        graph.remove_edge(2, 3)
        graph.add_edge(2, 3)
        graph.remove_node(3)  # removes (3, 1), (1, 3) and (2, 3)
        self._assert_counters_consistent(graph)
        assert graph.num_edges == 1
        assert graph.degree(1) == 1

    def test_counters_survive_copy_and_difference(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3), (3, 4), (4, 1)])
        clone = graph.copy()
        self._assert_counters_consistent(clone)
        remainder = graph.graph_difference(graph.edge_induced_subgraph([(1, 2), (2, 3)]))
        self._assert_counters_consistent(remainder)
        assert remainder.num_edges == 2

    def test_degree_queries_raise_for_missing_nodes(self):
        graph = DiGraph.from_edges([(1, 2)])
        with pytest.raises(NodeNotFoundError):
            graph.out_degree(99)
        with pytest.raises(NodeNotFoundError):
            graph.in_degree(99)

    def test_adjacency_map_accessors(self):
        graph = DiGraph.from_edges([(1, 2), (1, 3), (3, 1)])
        assert set(graph.successor_map(1)) == {2, 3}
        assert set(graph.predecessor_map(1)) == {3}
        with pytest.raises(NodeNotFoundError):
            graph.successor_map(99)


class TestEdgeSignature:
    def test_signature_is_insertion_order_independent(self):
        first = DiGraph.from_edges([(1, 2), (2, 3), (3, 1)])
        second = DiGraph.from_edges([(3, 1), (1, 2), (2, 3)])
        assert first.edge_signature() == second.edge_signature()

    def test_signature_changes_and_restores_with_edge_set(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3)])
        original = graph.edge_signature()
        graph.remove_edge(1, 2)
        assert graph.edge_signature() != original
        graph.add_edge(1, 2)
        assert graph.edge_signature() == original

    def test_signature_distinguishes_direction(self):
        forward = DiGraph.from_edges([(1, 2)])
        backward = DiGraph.from_edges([(2, 1)])
        assert forward.edge_signature() != backward.edge_signature()

    def test_signature_on_empty_graph(self):
        graph = DiGraph()
        graph.add_node(1)
        assert graph.edge_signature() == (0, 0)
