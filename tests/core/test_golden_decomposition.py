"""Golden search-shape regression tests for the decomposition bounds.

``tests/fixtures/golden/decomposition_search.json`` pins the *shape* of
the branch-and-bound — nodes expanded, prune provenance, final cost — for
the two published case studies (the Figure-5 example on the default
library and the Figure-6 AES graph on its compact library), under both
the legacy coarse bound and the stacked exact bounds.  A drift in nodes
expanded means the pruning power changed; a drift in cost means the
search *answer* changed — both deserve a deliberate fixture update:

    pytest tests/core/test_golden_decomposition.py --update-golden

The replay config is fully deterministic (no wall-clock or VF2 timeouts,
no leaf caps), so the fixtures reproduce bit-identically on any machine.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.aes.acg import build_aes_acg
from repro.core.cost import LinkCountCostModel
from repro.core.decomposition import DecompositionConfig, decompose
from repro.core.library import aes_library, default_library
from repro.workloads.random_acg import figure5_example_acg

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "fixtures"
    / "golden"
    / "decomposition_search.json"
)

#: the two published case studies the corpus replays
CASES = ("figure5", "aes")

#: both the legacy coarse bound and the stacked exact bounds are pinned
BOUNDS = ("cost_model", "stacked")


def case_inputs(case: str):
    """(acg, library) for one corpus case."""
    if case == "figure5":
        return figure5_example_acg(), default_library()
    return build_aes_acg(), aes_library()


def replay(case: str, lower_bound: str) -> dict[str, object]:
    """One deterministic search; the JSON-shaped fields the corpus pins."""
    acg, library = case_inputs(case)
    config = DecompositionConfig(
        max_matchings_per_primitive=4,
        isomorphism_timeout_seconds=None,
        total_timeout_seconds=None,
        max_leaves=None,
        lower_bound=lower_bound,
    )
    result = decompose(acg, library, LinkCountCostModel(), config)
    statistics = result.statistics
    return json.loads(
        json.dumps(
            {
                "total_cost": result.total_cost,
                "num_matchings": len(result.matchings),
                "remainder_edges": result.remainder.num_edges,
                "nodes_expanded": statistics.nodes_expanded,
                "branches_pruned": statistics.branches_pruned,
                "branches_pruned_by": dict(sorted(statistics.branches_pruned_by.items())),
            },
            sort_keys=True,
        )
    )


def test_update_golden_corpus(request):
    """Regenerate the corpus with ``--update-golden`` (no-op otherwise)."""
    if not request.config.getoption("--update-golden"):
        pytest.skip("corpus update not requested (pass --update-golden)")
    corpus = {
        case: {bound: replay(case, bound) for bound in BOUNDS} for case in CASES
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(corpus, sort_keys=True, indent=2) + "\n")


@pytest.mark.parametrize("lower_bound", BOUNDS)
@pytest.mark.parametrize("case", CASES)
def test_golden_search_shape(case, lower_bound, request):
    """The search reproduces the committed shape bit for bit."""
    if request.config.getoption("--update-golden"):
        pytest.skip("corpus being regenerated in this run")
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; generate the corpus with "
        "pytest tests/core/test_golden_decomposition.py --update-golden"
    )
    corpus = json.loads(GOLDEN_PATH.read_text())
    assert replay(case, lower_bound) == corpus[case][lower_bound]


@pytest.mark.parametrize("case", CASES)
def test_stacked_bound_matches_legacy_answer_with_fewer_nodes(case, request):
    """Across the corpus: same answer, never a larger search tree.

    The exact node counts per bound are pinned by the fixture; this test
    states the cross-bound relation (Figure-5 is small enough that both
    bounds already expand the minimal tree, so the relation is ``<=``).
    """
    if request.config.getoption("--update-golden"):
        pytest.skip("corpus being regenerated in this run")
    corpus = json.loads(GOLDEN_PATH.read_text())
    legacy, stacked = corpus[case]["cost_model"], corpus[case]["stacked"]
    assert stacked["total_cost"] == legacy["total_cost"]
    assert stacked["num_matchings"] == legacy["num_matchings"]
    assert stacked["remainder_edges"] == legacy["remainder_edges"]
    assert stacked["nodes_expanded"] <= legacy["nodes_expanded"]
