"""Unit tests for schedule-derived routing-table generation (Section 4.5)."""

from __future__ import annotations

import pytest

from repro.arch.topology import Topology
from repro.core.cost import LinkCountCostModel
from repro.core.decomposition import DecompositionConfig, decompose
from repro.core.routing_table import build_routing_table, install_flow_weakly, routes_for_traffic
from repro.core.synthesis import TopologySynthesizer
from repro.routing.table import RoutingTable


@pytest.fixture()
def square_topology() -> Topology:
    """Four routers on a bidirectional square 1-2-4-3-1."""
    topology = Topology(name="square")
    for node in (1, 2, 3, 4):
        topology.add_router(node)
    topology.add_channel(1, 2, bidirectional=True)
    topology.add_channel(2, 4, bidirectional=True)
    topology.add_channel(4, 3, bidirectional=True)
    topology.add_channel(3, 1, bidirectional=True)
    return topology


class TestInstallFlowWeakly:
    def test_installs_fresh_route(self, square_topology):
        table = RoutingTable(square_topology)
        actual = install_flow_weakly(table, [1, 2, 4])
        assert actual == [1, 2, 4]
        assert table.next_hop(1, 4) == 2
        assert table.next_hop(2, 4) == 4

    def test_defers_to_existing_entries(self, square_topology):
        table = RoutingTable(square_topology)
        install_flow_weakly(table, [1, 3, 4])   # existing route to 4 goes via 3
        actual = install_flow_weakly(table, [1, 2, 4])  # conflicting plan
        assert actual == [1, 3, 4]              # the earlier entry wins
        assert table.next_hop(1, 4) == 3

    def test_falls_back_to_shortest_path_after_deviation(self, square_topology):
        table = RoutingTable(square_topology)
        # existing entry at router 1 pushes traffic for 4 towards 2 ...
        table.set_next_hop(1, 4, 2)
        # ... while the planned path goes through 3; after deviating to 2 the
        # remainder of the plan is useless and a shortest path is used.
        actual = install_flow_weakly(table, [1, 3, 4])
        assert actual[0] == 1 and actual[-1] == 4
        assert table.route(1, 4)[-1] == 4

    def test_short_paths_are_noops(self, square_topology):
        table = RoutingTable(square_topology)
        assert install_flow_weakly(table, [1]) == [1]
        assert table.num_entries == 0


class TestBuildRoutingTable:
    def _architecture(self, acg, library):
        result = decompose(
            acg,
            library,
            cost_model=LinkCountCostModel(),
            config=DecompositionConfig(max_matchings_per_primitive=4, total_timeout_seconds=20),
        )
        topology = TopologySynthesizer().build_topology(acg, result)
        return result, topology

    def test_table_covers_all_traffic(self, k4_acg, library):
        result, topology = self._architecture(k4_acg, library)
        table = build_routing_table(result, topology)
        table.validate_pairs(k4_acg.edges())

    def test_routes_resolved_for_traffic(self, k4_acg, library):
        result, topology = self._architecture(k4_acg, library)
        table = build_routing_table(result, topology)
        routes = routes_for_traffic(table, k4_acg.edges())
        assert set(routes) == set(k4_acg.edges())
        for (source, target), route in routes.items():
            assert route[0] == source and route[-1] == target
            for hop in zip(route, route[1:]):
                assert topology.has_channel(*hop)

    def test_fill_all_pairs_makes_total_function(self, k4_acg, library):
        result, topology = self._architecture(k4_acg, library)
        table = build_routing_table(result, topology, fill_all_pairs=True)
        for source in topology.routers():
            for destination in topology.routers():
                if source != destination:
                    assert table.has_route(source, destination)

    def test_aes_routing_table_has_no_loops(self, aes_synthesis):
        table = aes_synthesis.architecture.routing_table
        for source, target in aes_synthesis.acg.edges():
            route = table.route(source, target)
            assert len(route) == len(set(route))  # no repeated routers

    def test_aes_gossip_routes_stay_inside_columns(self, aes_synthesis):
        """Traffic between two nodes of an AES state column must not leave
        that column (it rides the column's MGG-4)."""
        table = aes_synthesis.architecture.routing_table
        for column_start in (1, 2, 3, 4):
            column = {column_start, column_start + 4, column_start + 8, column_start + 12}
            for source in column:
                for target in column:
                    if source == target:
                        continue
                    assert set(table.route(source, target)) <= column
