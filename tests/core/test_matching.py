"""Unit tests for matchings (Definition 4) and remainder graphs."""

from __future__ import annotations

import pytest

from repro.core.graph import DiGraph
from repro.core.isomorphism import find_subgraph_isomorphism
from repro.core.matching import Matching, RemainderGraph
from repro.core.primitives import make_gossip_primitive, make_path_primitive
from repro.exceptions import DecompositionError


@pytest.fixture()
def mgg4():
    return make_gossip_primitive(4)


@pytest.fixture()
def k4_matching(mgg4, k4_acg):
    mapping = {1: 1, 2: 2, 3: 3, 4: 4}
    return Matching.from_dict(mgg4, mapping)


class TestMatchingConstruction:
    def test_from_dict_requires_all_primitive_nodes(self, mgg4):
        with pytest.raises(DecompositionError):
            Matching.from_dict(mgg4, {1: 10, 2: 20})

    def test_from_dict_requires_injective_mapping(self, mgg4):
        with pytest.raises(DecompositionError):
            Matching.from_dict(mgg4, {1: 10, 2: 10, 3: 30, 4: 40})

    def test_from_mapping_via_isomorphism(self, mgg4, k4_acg):
        mapping = find_subgraph_isomorphism(mgg4.representation, k4_acg.structural_copy())
        assert mapping is not None
        matching = Matching.from_mapping(mgg4, mapping)
        assert set(matching.cores()) == {1, 2, 3, 4}

    def test_core_of_and_cores(self, k4_matching):
        assert k4_matching.core_of(1) == 1
        assert sorted(k4_matching.cores()) == [1, 2, 3, 4]
        with pytest.raises(DecompositionError):
            k4_matching.core_of(99)


class TestMatchingGeometry:
    def test_covered_edges_are_images_of_requirement_edges(self, k4_matching):
        covered = k4_matching.covered_edges()
        assert len(covered) == 12
        assert (1, 2) in covered and (4, 1) in covered

    def test_implementation_links_and_physical_links(self, k4_matching):
        directed = k4_matching.implementation_links()
        assert len(directed) == 8  # MGG-4: 4 full-duplex links
        assert len(k4_matching.physical_links()) == 4

    def test_route_in_cores_follows_primitive_routing(self, mgg4):
        matching = Matching.from_dict(mgg4, {1: 10, 2: 20, 3: 30, 4: 40})
        assert matching.route_in_cores(10, 40) == (10, 30, 40)
        with pytest.raises(DecompositionError):
            matching.route_in_cores(10, 99)

    def test_routes_in_cores_covers_every_edge(self, k4_matching):
        routes = k4_matching.routes_in_cores()
        assert set(routes) == k4_matching.covered_edges()
        for (source, target), route in routes.items():
            assert route[0] == source and route[-1] == target


class TestMatchingGraphOperations:
    def test_subtract_from_removes_exactly_covered_edges(self, k4_matching, k4_acg):
        residual = k4_matching.subtract_from(k4_acg.structural_copy())
        assert residual.num_edges == 0
        assert residual.num_nodes == 4  # vertices preserved (Definition 2)

    def test_verify_against_detects_missing_edges(self, mgg4):
        matching = Matching.from_dict(mgg4, {1: 1, 2: 2, 3: 3, 4: 4})
        sparse = DiGraph.from_edges([(1, 2)])
        with pytest.raises(DecompositionError):
            matching.verify_against(sparse)

    def test_covered_volume(self, k4_matching, k4_acg):
        assert k4_matching.covered_volume(k4_acg) == pytest.approx(12 * 32.0)


class TestMatchingReporting:
    def test_describe_uses_paper_format(self, mgg4):
        mgg4.primitive_id = 1
        matching = Matching.from_dict(mgg4, {1: 1, 2: 5, 3: 9, 4: 13})
        text = matching.describe()
        assert text.startswith("1: MGG4")
        assert "(1 1)" in text and "(4 13)" in text

    def test_sort_key_orders_matchings_deterministically(self, mgg4):
        path = make_path_primitive(3)
        mgg4.primitive_id = 1
        path.primitive_id = 7
        gossip_match = Matching.from_dict(mgg4, {1: 1, 2: 2, 3: 3, 4: 4})
        path_match = Matching.from_dict(path, {1: 1, 2: 2, 3: 3})
        assert gossip_match.sort_key() < path_match.sort_key()
        assert gossip_match.sort_key() == gossip_match.sort_key()


class TestRemainderGraph:
    def test_empty_remainder(self):
        remainder = RemainderGraph(DiGraph())
        assert remainder.is_empty
        assert remainder.num_edges == 0
        assert "empty" in remainder.describe()

    def test_nonempty_remainder_lists_edges(self):
        remainder = RemainderGraph(DiGraph.from_edges([(9, 11), (11, 9)]))
        assert not remainder.is_empty
        text = remainder.describe()
        assert text.startswith("0: Remaining Graph")
        assert "(9 11)" in text
