"""Unit tests for the VF2 subgraph-isomorphism engine (Definition 3/4)."""

from __future__ import annotations

import pytest

from repro.core.graph import DiGraph
from repro.core.isomorphism import (
    IsomorphismMapping,
    MatcherOptions,
    VF2Matcher,
    are_isomorphic,
    find_all_subgraph_isomorphisms,
    find_subgraph_isomorphism,
    has_subgraph_isomorphic_to,
)


def complete_digraph(n: int) -> DiGraph:
    graph = DiGraph()
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            if i != j:
                graph.add_edge(i, j)
    return graph


def directed_cycle(n: int, offset: int = 0) -> DiGraph:
    graph = DiGraph()
    nodes = [offset + i for i in range(1, n + 1)]
    for a, b in zip(nodes, nodes[1:] + nodes[:1]):
        graph.add_edge(a, b)
    return graph


class TestBasicMatching:
    def test_single_edge_pattern(self):
        pattern = DiGraph.from_edges([("a", "b")])
        target = DiGraph.from_edges([(1, 2), (2, 3)])
        mapping = find_subgraph_isomorphism(pattern, target)
        assert mapping is not None
        as_dict = mapping.as_dict()
        assert target.has_edge(as_dict["a"], as_dict["b"])

    def test_no_match_when_pattern_larger(self):
        pattern = complete_digraph(4)
        target = complete_digraph(3)
        assert find_subgraph_isomorphism(pattern, target) is None

    def test_no_match_when_edges_insufficient(self):
        pattern = DiGraph.from_edges([(1, 2), (2, 3)])
        target = DiGraph.from_edges([(1, 2)], nodes=[3])
        assert not has_subgraph_isomorphic_to(pattern, target)

    def test_directed_edge_orientation_matters(self):
        pattern = DiGraph.from_edges([(1, 2)])
        reversed_target = DiGraph.from_edges([(2, 1)])
        # a single directed edge matches any directed edge (relabeling is free)
        assert has_subgraph_isomorphic_to(pattern, reversed_target)
        # but a 2-cycle pattern needs both directions in the target
        two_cycle = DiGraph.from_edges([(1, 2), (2, 1)])
        assert not has_subgraph_isomorphic_to(two_cycle, reversed_target)

    def test_cycle_in_cycle(self):
        assert has_subgraph_isomorphic_to(directed_cycle(3), directed_cycle(3, offset=10))
        assert not has_subgraph_isomorphic_to(directed_cycle(4), directed_cycle(3))

    def test_cycle_within_complete_graph(self):
        assert has_subgraph_isomorphic_to(directed_cycle(4), complete_digraph(4))

    def test_star_pattern_in_dense_graph(self):
        star = DiGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        target = complete_digraph(4)
        mapping = find_subgraph_isomorphism(star, target)
        assert mapping is not None
        assert len(mapping.target_nodes()) == 4

    def test_empty_pattern_yields_nothing(self):
        matcher = VF2Matcher(DiGraph(), complete_digraph(3))
        assert matcher.find_one() is None


class TestMonomorphismVsInduced:
    def test_monomorphism_allows_extra_target_edges(self):
        pattern = DiGraph.from_edges([(1, 2), (2, 3)])  # a path
        target = complete_digraph(3)  # plenty of extra edges
        assert find_subgraph_isomorphism(pattern, target, induced=False) is not None

    def test_induced_forbids_extra_target_edges(self):
        path = DiGraph.from_edges([(1, 2), (2, 3)])
        target = complete_digraph(3)
        assert find_subgraph_isomorphism(path, target, induced=True) is None

    def test_induced_matches_exact_structure(self):
        pattern = directed_cycle(4)
        target = directed_cycle(4, offset=5)
        assert find_subgraph_isomorphism(pattern, target, induced=True) is not None


class TestEnumeration:
    def test_deduplication_by_edge_set(self):
        # the 4-cycle has 4 automorphisms; with edge-set dedup only 1 result
        matches = find_all_subgraph_isomorphisms(directed_cycle(4), directed_cycle(4))
        assert len(matches) == 1

    def test_enumeration_without_dedup_counts_automorphisms(self):
        matcher = VF2Matcher(
            directed_cycle(4),
            directed_cycle(4),
            MatcherOptions(deduplicate_by_edges=False),
        )
        assert len(matcher.find_all()) == 4

    def test_multiple_distinct_matches(self):
        pattern = DiGraph.from_edges([(1, 2)])
        target = DiGraph.from_edges([(1, 2), (3, 4)])
        matches = find_all_subgraph_isomorphisms(pattern, target)
        covered = {match.covered_edges(pattern) for match in matches}
        assert covered == {frozenset({(1, 2)}), frozenset({(3, 4)})}

    def test_limit_respected(self):
        pattern = DiGraph.from_edges([(1, 2)])
        target = complete_digraph(5)
        matches = find_all_subgraph_isomorphisms(pattern, target, limit=3)
        assert len(matches) == 3

    def test_states_explored_counter(self):
        matcher = VF2Matcher(directed_cycle(3), complete_digraph(4))
        matcher.find_one()
        assert matcher.states_explored > 0


class TestNodeCompatibilityAndTimeout:
    def test_node_compatibility_filter(self):
        pattern = DiGraph.from_edges([(1, 2)])
        target = DiGraph.from_edges([("a", "b"), ("c", "d")])
        options = MatcherOptions(node_compatible=lambda p, t: t in ("c", "d"))
        matcher = VF2Matcher(pattern, target, options)
        mapping = matcher.find_one()
        assert mapping is not None
        assert mapping.target_nodes() == {"c", "d"}

    def test_timeout_returns_gracefully(self):
        pattern = complete_digraph(6)
        target = complete_digraph(12)
        options = MatcherOptions(timeout_seconds=0.0)
        matcher = VF2Matcher(pattern, target, options)
        assert matcher.find_all() == []
        # the truncation is observable, so callers (e.g. the decomposition's
        # matching cache) can tell a complete enumeration from a cut-off one
        assert matcher.timed_out

    def test_complete_enumeration_reports_no_timeout(self):
        pattern = DiGraph.from_edges([(1, 2)])
        target = DiGraph.from_edges([("a", "b"), ("b", "c")])
        matcher = VF2Matcher(pattern, target, MatcherOptions(timeout_seconds=30.0))
        assert len(matcher.find_all()) == 2
        assert not matcher.timed_out


class TestGraphIsomorphism:
    def test_isomorphic_cycles(self):
        assert are_isomorphic(directed_cycle(5), directed_cycle(5, offset=100))

    def test_non_isomorphic_different_sizes(self):
        assert not are_isomorphic(directed_cycle(4), directed_cycle(5))

    def test_non_isomorphic_same_size_different_structure(self):
        cycle = directed_cycle(4)
        path_plus = DiGraph.from_edges([(1, 2), (2, 3), (3, 4), (1, 3)])
        assert not are_isomorphic(cycle, path_plus)

    def test_degree_signature_shortcut(self):
        star_out = DiGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        star_in = DiGraph.from_edges([(1, 0), (2, 0), (3, 0)])
        assert not are_isomorphic(star_out, star_in)


class TestIsomorphismMapping:
    def test_mapping_accessors(self):
        mapping = IsomorphismMapping.from_dict({1: "x", 2: "y"})
        assert mapping.as_dict() == {1: "x", 2: "y"}
        assert mapping.image(1) == "x"
        assert mapping.target_nodes() == {"x", "y"}
        assert len(mapping) == 2
        with pytest.raises(KeyError):
            mapping.image(3)

    def test_covered_edges(self):
        pattern = DiGraph.from_edges([(1, 2)])
        mapping = IsomorphismMapping.from_dict({1: "x", 2: "y"})
        assert mapping.covered_edges(pattern) == frozenset({("x", "y")})
