"""Unit tests for communication schedules and their optimality bounds."""

from __future__ import annotations

import pytest

from repro.core.graph import DiGraph
from repro.core.schedules import (
    CommunicationSchedule,
    Round,
    Transfer,
    binomial_broadcast_schedule,
    broadcast_round_lower_bound,
    gossip_round_lower_bound,
    hypercube_gossip_schedule,
    pair_exchange_schedule,
    ring_schedule,
)
from repro.exceptions import ScheduleError


class TestRound:
    def test_round_of_and_exchanges(self):
        one_way = Round.of((1, 2), (3, 4))
        assert len(one_way) == 2
        exchange = Round.exchanges((1, 2))
        assert len(exchange) == 2
        assert Transfer(1, 2) in exchange.transfers and Transfer(2, 1) in exchange.transfers

    def test_participants(self):
        assert Round.of((1, 2), (3, 4)).participants() == {1, 2, 3, 4}

    def test_telephone_legality(self):
        assert Round.of((1, 2), (3, 4)).is_telephone_legal()
        assert Round.exchanges((1, 2)).is_telephone_legal()  # one pair, both ways
        assert not Round.of((1, 2), (1, 3)).is_telephone_legal()  # node 1 twice

    def test_transfer_reversed(self):
        assert Transfer(1, 2).reversed() == Transfer(2, 1)


class TestScheduleValidation:
    def test_validate_against_graph_rejects_missing_links(self):
        schedule = CommunicationSchedule.from_rounds([Round.of((1, 2))])
        graph = DiGraph.from_edges([(2, 1)])
        with pytest.raises(ScheduleError):
            schedule.validate_against_graph(graph)

    def test_validate_against_graph_rejects_illegal_round(self):
        schedule = CommunicationSchedule.from_rounds([Round.of((1, 2), (1, 3))])
        graph = DiGraph.from_edges([(1, 2), (1, 3)])
        with pytest.raises(ScheduleError):
            schedule.validate_against_graph(graph)

    def test_simulate_knowledge_rejects_foreign_nodes(self):
        schedule = CommunicationSchedule.from_rounds([Round.of((1, 99))])
        with pytest.raises(ScheduleError):
            schedule.simulate_knowledge([1, 2])


class TestLowerBounds:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (4, 2), (5, 3), (8, 3), (16, 4)])
    def test_broadcast_lower_bound(self, n, expected):
        assert broadcast_round_lower_bound(n) == expected

    @pytest.mark.parametrize("n,expected", [(2, 1), (4, 2), (8, 3), (16, 4), (5, 4), (7, 4)])
    def test_gossip_lower_bound(self, n, expected):
        assert gossip_round_lower_bound(n) == expected

    def test_bounds_reject_degenerate_inputs(self):
        with pytest.raises(ScheduleError):
            broadcast_round_lower_bound(0)
        with pytest.raises(ScheduleError):
            gossip_round_lower_bound(1)


class TestGossipSchedules:
    def test_pair_exchange(self):
        schedule = pair_exchange_schedule(1, 2)
        assert schedule.num_rounds == 1
        assert schedule.completes_gossip([1, 2])

    @pytest.mark.parametrize("size", [2, 4, 8, 16])
    def test_hypercube_gossip_meets_lower_bound(self, size):
        nodes = list(range(1, size + 1))
        schedule = hypercube_gossip_schedule(nodes)
        assert schedule.num_rounds == gossip_round_lower_bound(size)
        assert schedule.completes_gossip(nodes)
        for round_ in schedule.rounds:
            assert round_.is_telephone_legal()

    def test_hypercube_gossip_matches_paper_mgg4_rounds(self):
        """Section 4.5: round 1 pairs (1,3),(2,4); round 2 pairs (1,2),(3,4)."""
        schedule = hypercube_gossip_schedule([1, 2, 3, 4])
        first_pairs = {frozenset((t.sender, t.receiver)) for t in schedule.rounds[0]}
        second_pairs = {frozenset((t.sender, t.receiver)) for t in schedule.rounds[1]}
        assert first_pairs == {frozenset((1, 3)), frozenset((2, 4))}
        assert second_pairs == {frozenset((1, 2)), frozenset((3, 4))}

    def test_hypercube_gossip_rejects_non_power_of_two(self):
        with pytest.raises(ScheduleError):
            hypercube_gossip_schedule([1, 2, 3])


class TestBroadcastSchedules:
    @pytest.mark.parametrize("size", [2, 3, 4, 5, 8, 9])
    def test_binomial_broadcast_meets_lower_bound(self, size):
        nodes = list(range(1, size + 1))
        schedule = binomial_broadcast_schedule(nodes)
        assert schedule.num_rounds == broadcast_round_lower_bound(size)
        assert schedule.completes_broadcast(nodes[0], nodes)
        for round_ in schedule.rounds:
            assert round_.is_telephone_legal()

    def test_broadcast_needs_nodes(self):
        with pytest.raises(ScheduleError):
            binomial_broadcast_schedule([])


class TestRingSchedules:
    @pytest.mark.parametrize("size,closed", [(2, False), (3, True), (4, True), (5, True), (6, False)])
    def test_ring_schedule_is_legal_and_on_graph(self, size, closed):
        nodes = list(range(1, size + 1))
        schedule = ring_schedule(nodes, closed=closed)
        graph = DiGraph()
        for a, b in zip(nodes, nodes[1:]):
            graph.add_edge(a, b)
        if closed:
            graph.add_edge(nodes[-1], nodes[0])
        schedule.validate_against_graph(graph)

    def test_closed_ring_completes_broadcast_from_head(self):
        nodes = [1, 2, 3, 4, 5]
        schedule = ring_schedule(nodes, closed=True)
        assert schedule.completes_broadcast(1, nodes)

    def test_open_path_floods_forward(self):
        nodes = [1, 2, 3, 4]
        schedule = ring_schedule(nodes, closed=False)
        knowledge = schedule.simulate_knowledge(nodes)
        assert 1 in knowledge[4]  # head token reached the tail

    def test_ring_needs_two_nodes(self):
        with pytest.raises(ScheduleError):
            ring_schedule([1], closed=False)


class TestScheduleQueries:
    def test_all_transfers_and_participants(self):
        schedule = CommunicationSchedule.from_rounds([Round.of((1, 2)), Round.of((2, 3))])
        assert len(schedule.all_transfers()) == 2
        assert schedule.participants() == {1, 2, 3}
