"""Unit tests for communication primitives and their optimal implementations."""

from __future__ import annotations

import pytest

from repro.core.graph import DiGraph
from repro.core.primitives import (
    CommunicationPrimitive,
    PrimitiveKind,
    derive_internal_routes,
    make_broadcast_primitive,
    make_gossip_primitive,
    make_loop_primitive,
    make_multicast_primitive,
    make_path_primitive,
)
from repro.core.schedules import CommunicationSchedule, Round, broadcast_round_lower_bound
from repro.exceptions import LibraryError


class TestGossipPrimitive:
    def test_mgg4_structure_matches_figure1(self):
        mgg4 = make_gossip_primitive(4)
        assert mgg4.kind is PrimitiveKind.GOSSIP
        assert mgg4.size == 4
        assert mgg4.num_requirement_edges == 12  # complete digraph on 4 nodes
        assert mgg4.num_physical_links == 4  # the 4-cycle MGG-4
        assert mgg4.num_rounds == 2

    def test_mgg4_routes_node1_to_node4_via_node3(self):
        """Section 4.5: 'if vertex 1 needs to send a message to vertex 4, then
        it will forward its message to vertex 3 first'."""
        mgg4 = make_gossip_primitive(4)
        assert mgg4.route_for(1, 4) == (1, 3, 4)

    def test_mgg4_every_requirement_edge_routed(self):
        mgg4 = make_gossip_primitive(4)
        for edge in mgg4.representation.edges():
            route = mgg4.route_for(*edge)
            assert route[0] == edge[0] and route[-1] == edge[1]
            assert len(route) - 1 <= 2  # diameter of MGG-4 is 2

    def test_mgg2(self):
        mgg2 = make_gossip_primitive(2)
        assert mgg2.num_requirement_edges == 2
        assert mgg2.num_physical_links == 1
        assert mgg2.num_rounds == 1

    def test_mgg8_is_hypercube(self):
        mgg8 = make_gossip_primitive(8)
        assert mgg8.num_physical_links == 12  # 3-cube
        assert mgg8.num_rounds == 3
        assert mgg8.diameter() <= 3

    def test_non_power_of_two_rejected(self):
        with pytest.raises(LibraryError):
            make_gossip_primitive(6)
        with pytest.raises(LibraryError):
            make_gossip_primitive(1)


class TestBroadcastPrimitive:
    @pytest.mark.parametrize("receivers", [1, 2, 3, 4, 7])
    def test_broadcast_is_round_optimal_with_minimal_links(self, receivers):
        primitive = make_broadcast_primitive(receivers)
        assert primitive.kind is PrimitiveKind.BROADCAST
        assert primitive.num_requirement_edges == receivers
        assert primitive.num_physical_links == receivers  # tree: n-1 links
        assert primitive.num_rounds == broadcast_round_lower_bound(receivers + 1)

    def test_broadcast_g1to3_matches_paper(self):
        g13 = make_broadcast_primitive(3, name="G1to3")
        assert g13.size == 4
        assert g13.num_rounds == 2  # ceil(log2 4)

    def test_broadcast_needs_a_receiver(self):
        with pytest.raises(LibraryError):
            make_broadcast_primitive(0)


class TestPathAndLoopPrimitives:
    def test_path_primitive(self):
        p4 = make_path_primitive(4)
        assert p4.kind is PrimitiveKind.PATH
        assert p4.num_requirement_edges == 3
        assert p4.route_for(1, 2) == (1, 2)

    def test_loop_primitive(self):
        l5 = make_loop_primitive(5)
        assert l5.kind is PrimitiveKind.LOOP
        assert l5.num_requirement_edges == 5
        assert l5.route_for(5, 1) == (5, 1)

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(LibraryError):
            make_path_primitive(1)
        with pytest.raises(LibraryError):
            make_loop_primitive(2)


class TestMulticastPrimitive:
    def test_multicast(self):
        m = make_multicast_primitive(5)
        assert m.kind is PrimitiveKind.MULTICAST
        assert m.num_requirement_edges == 5
        m.validate()

    def test_multicast_needs_receiver(self):
        with pytest.raises(LibraryError):
            make_multicast_primitive(0)


class TestPrimitiveValidation:
    def test_validate_catches_missing_route(self):
        mgg4 = make_gossip_primitive(4)
        broken = CommunicationPrimitive(
            name="broken",
            kind=PrimitiveKind.GOSSIP,
            representation=mgg4.representation,
            implementation=mgg4.implementation,
            schedule=mgg4.schedule,
            internal_routes={},
        )
        with pytest.raises(LibraryError):
            broken.validate()

    def test_validate_catches_route_over_missing_link(self):
        mgg4 = make_gossip_primitive(4)
        routes = dict(mgg4.internal_routes)
        routes[(1, 4)] = (1, 4)  # there is no direct 1->4 link in MGG-4
        broken = CommunicationPrimitive(
            name="broken",
            kind=PrimitiveKind.GOSSIP,
            representation=mgg4.representation,
            implementation=mgg4.implementation,
            schedule=mgg4.schedule,
            internal_routes=routes,
        )
        with pytest.raises(LibraryError):
            broken.validate()

    def test_validate_catches_node_set_mismatch(self):
        mgg4 = make_gossip_primitive(4)
        smaller = DiGraph.from_edges([(1, 2), (2, 1)])
        broken = CommunicationPrimitive(
            name="broken",
            kind=PrimitiveKind.GOSSIP,
            representation=mgg4.representation,
            implementation=smaller,
            schedule=mgg4.schedule,
            internal_routes=mgg4.internal_routes,
        )
        with pytest.raises(LibraryError):
            broken.validate()

    def test_validate_catches_non_gossiping_schedule(self):
        mgg4 = make_gossip_primitive(4)
        lazy_schedule = CommunicationSchedule.from_rounds([Round.exchanges((1, 2))])
        broken = CommunicationPrimitive(
            name="broken",
            kind=PrimitiveKind.GOSSIP,
            representation=mgg4.representation,
            implementation=mgg4.implementation,
            schedule=lazy_schedule,
            internal_routes=mgg4.internal_routes,
        )
        with pytest.raises(LibraryError):
            broken.validate()


class TestRouteDerivation:
    def test_derive_internal_routes_uses_shortest_paths(self):
        representation = DiGraph.from_edges([(1, 3)])
        implementation = DiGraph.from_edges([(1, 2), (2, 3)])
        routes = derive_internal_routes(representation, implementation)
        assert routes[(1, 3)] == (1, 2, 3)

    def test_derive_internal_routes_unroutable_raises(self):
        representation = DiGraph.from_edges([(1, 3)])
        implementation = DiGraph.from_edges([(3, 1)], nodes=[1, 3])
        with pytest.raises(LibraryError):
            derive_internal_routes(representation, implementation)

    def test_implementation_edge_load(self):
        mgg4 = make_gossip_primitive(4)
        load = mgg4.implementation_edge_load()
        # every physical direction carries at least its own direct requirement
        assert all(count >= 1 for count in load.values())
        # 12 requirement edges, 8 of them direct + 4 two-hop = 16 edge traversals
        assert sum(load.values()) == 16
